//! Engine-scaling microbenchmarks: commit throughput vs thread count.
//!
//! The paper's §5 performance story is that coordination which *could* be
//! avoided shows up as lost scalability under contention. These sweeps
//! measure the two substrate spines directly:
//!
//! * [`commit_scaling`] — storage-engine commit throughput, N threads each
//!   committing single-row update transactions, on **disjoint** keys (no
//!   two threads ever touch the same row) vs one **same** hot key. With a
//!   sharded commit path, disjoint-key throughput should scale with
//!   threads; same-key throughput is bounded by the row's record lock
//!   whatever the engine does.
//! * [`kv_scaling`] — KV store command throughput, N threads each running
//!   `WATCH`-style CAS loops (version read + `EXEC`) on disjoint vs shared
//!   keys. With a striped store, disjoint-key commands never share a lock.
//!
//! Every row reports throughput and abort rate, and renders to the
//! machine-readable `BENCH_fig2.json` / `BENCH_fig3.json` via
//! [`render_json`] / [`bench_json`] (consumed by `tools/bench.sh` and the
//! CI smoke gate).
//!
//! Two ablations ride on the same workload: [`wal_commit_scaling`]
//! (durability policy × simulated fsync cost → `BENCH_wal.json`) and
//! [`occ_scaling`] (the §7 cured `orm::occ` layer vs the hand-rolled
//! lock + two-transaction AHT → `BENCH_occ.json`, gated by
//! `tools/check_scaling.py` against `tools/baselines/occ_pre_cure.json`).

use adhoc_core::locks::{AdHocLock, MemLock};
use adhoc_kv::Store;
use adhoc_orm::occ::run_occ;
use adhoc_orm::{EntityDef, Orm, Registry};
use adhoc_sim::RetryPolicy;
use adhoc_storage::{
    Column, ColumnType, Database, DbConfig, EngineProfile, IsolationLevel, Schema,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which key pattern the worker threads use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyPattern {
    /// Every thread owns a private key range: zero logical conflicts.
    Disjoint,
    /// Every thread hammers one shared hot key: maximal conflicts.
    SameKey,
}

impl KeyPattern {
    /// JSON/label name.
    pub fn label(self) -> &'static str {
        match self {
            KeyPattern::Disjoint => "disjoint",
            KeyPattern::SameKey => "same_key",
        }
    }
}

/// One measured (threads, pattern) cell.
#[derive(Debug, Clone)]
pub struct ScalingCell {
    /// Worker thread count.
    pub threads: usize,
    /// Key pattern.
    pub pattern: KeyPattern,
    /// Committed operations per second.
    pub throughput_ops: f64,
    /// Aborted-attempt fraction (aborts / attempts), 0.0 when nothing
    /// retried.
    pub abort_rate: f64,
}

/// Rows per thread in the disjoint workload (each thread cycles through
/// its own private ids).
const ROWS_PER_THREAD: i64 = 16;

/// Durability mode of one WAL-ablation cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalMode {
    /// No write-ahead log at all.
    Off,
    /// Per-commit fsync (`WalSyncPolicy::OnCommit`): the safe policy,
    /// paid on every commit.
    OnCommit,
    /// Group commit (`WalSyncPolicy::GroupCommit`): still acked ⇒ durable,
    /// but concurrent commits share one leader fsync.
    GroupCommit,
}

impl WalMode {
    /// JSON/label name.
    pub fn label(self) -> &'static str {
        match self {
            WalMode::Off => "off",
            WalMode::OnCommit => "on_commit",
            WalMode::GroupCommit => "group_commit",
        }
    }

    /// Whether a log exists at all.
    pub fn enabled(self) -> bool {
        self != WalMode::Off
    }
}

/// Simulated per-fsync device latency of the nonzero-latency WAL
/// ablation column, in microseconds. Charged to the engine's virtual
/// clock (not wall time), it models the ~50µs a commodity NVMe flush
/// costs — enough to make the per-commit-fsync tax visible and the
/// group-commit amortization win measurable.
pub const FSYNC_LATENCY_US: u64 = 50;

/// Build the bench table and seed every row the sweep will touch.
/// `wal` selects the write-ahead-log policy so the same workload measures
/// durability overhead; `fsync_latency_us` charges that much simulated
/// device latency to every fsync the policy issues.
fn seed_db(threads_max: usize, wal: WalMode, fsync_latency_us: u64) -> Database {
    let cfg = DbConfig::in_memory(EngineProfile::PostgresLike)
        .with_wal_fsync_latency(Duration::from_micros(fsync_latency_us));
    let db = Database::new(match wal {
        WalMode::Off => cfg,
        WalMode::OnCommit => cfg.with_wal(),
        WalMode::GroupCommit => cfg.with_wal_group_commit(),
    });
    db.create_table(
        Schema::new(
            "bench_rows",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("val", ColumnType::Int),
            ],
            "id",
        )
        .expect("schema"),
    )
    .expect("create");
    let rows = (threads_max as i64) * ROWS_PER_THREAD + 1;
    for id in 0..rows {
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.insert("bench_rows", &[("id", id.into()), ("val", 0.into())])
        })
        .expect("seed");
    }
    db
}

/// Measure one (threads, pattern) cell for `window` on a fresh database.
fn measure_commits(threads: usize, pattern: KeyPattern, window: Duration) -> ScalingCell {
    measure_commits_wal(threads, pattern, window, WalMode::Off, 0)
}

/// Warmup slice run before the measured window of each cell: lets thread
/// spawn cost, allocator steady state, and (with batching) the first
/// timestamp-block grants settle before counting starts. The counters are
/// zeroed at the warmup/measure boundary.
fn warmup_of(window: Duration) -> Duration {
    window / 4
}

/// Like [`measure_commits`], with the WAL switchable on and an optional
/// simulated per-fsync device latency.
fn measure_commits_wal(
    threads: usize,
    pattern: KeyPattern,
    window: Duration,
    wal: WalMode,
    fsync_latency_us: u64,
) -> ScalingCell {
    let db = seed_db(threads, wal, fsync_latency_us);
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    let attempts = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for t in 0..threads {
            let db = db.clone();
            let stop = Arc::clone(&stop);
            let committed = Arc::clone(&committed);
            let attempts = Arc::clone(&attempts);
            s.spawn(move || {
                let base = match pattern {
                    KeyPattern::Disjoint => 1 + (t as i64) * ROWS_PER_THREAD,
                    KeyPattern::SameKey => 0,
                };
                let mut i: i64 = 0;
                while !stop.load(Ordering::Relaxed) {
                    let id = match pattern {
                        KeyPattern::Disjoint => base + (i % ROWS_PER_THREAD),
                        KeyPattern::SameKey => 0,
                    };
                    attempts.fetch_add(1, Ordering::Relaxed);
                    let ok = db
                        .run_with_retries(IsolationLevel::ReadCommitted, 64, |txn| {
                            txn.update("bench_rows", id, &[("val", i.into())])
                        })
                        .is_ok();
                    if ok {
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                    i += 1;
                }
            });
        }
        std::thread::sleep(warmup_of(window));
        committed.store(0, Ordering::Relaxed);
        attempts.store(0, Ordering::Relaxed);
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    let stats = db.stats();
    let attempts = attempts.load(Ordering::Relaxed).max(1);
    ScalingCell {
        threads,
        pattern,
        throughput_ops: committed.load(Ordering::Relaxed) as f64 / window.as_secs_f64(),
        // `aborts` counts every rolled-back transaction (retried or not).
        abort_rate: stats.aborts as f64 / (attempts + stats.aborts) as f64,
    }
}

/// Storage-engine commit-throughput sweep over `thread_counts`.
pub fn commit_scaling(thread_counts: &[usize], window: Duration) -> Vec<ScalingCell> {
    let mut out = Vec::new();
    for &threads in thread_counts {
        for pattern in [KeyPattern::Disjoint, KeyPattern::SameKey] {
            out.push(measure_commits(threads, pattern, window));
        }
    }
    out
}

/// Measure one KV cell: CAS loops (version read + watched `EXEC`) per
/// second; an `EXEC` that validates against a moved version counts as an
/// abort.
fn measure_kv(threads: usize, pattern: KeyPattern, window: Duration) -> ScalingCell {
    use adhoc_kv::{SetMode, WriteOp};
    let store = Store::new();
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    let attempts = Arc::new(AtomicU64::new(0));
    let t0 = Duration::ZERO;
    std::thread::scope(|s| {
        for t in 0..threads {
            let store = store.clone();
            let stop = Arc::clone(&stop);
            let committed = Arc::clone(&committed);
            let attempts = Arc::clone(&attempts);
            s.spawn(move || {
                use std::fmt::Write;
                // Precompute the key set and reuse one watched tuple + one
                // buffered op: the steady-state loop then allocates nothing,
                // so the sweep measures the store, not the workload's
                // formatting.
                let keys: Vec<String> = match pattern {
                    KeyPattern::Disjoint => (0..16).map(|k| format!("k:{t}:{k}")).collect(),
                    KeyPattern::SameKey => vec!["hot".to_string()],
                };
                let mut watched = vec![(String::new(), 0u64)];
                let mut ops = vec![WriteOp::Set {
                    key: String::new(),
                    value: String::new(),
                    mode: SetMode::Always,
                    ttl: None,
                }];
                let mut i: u64 = 0;
                while !stop.load(Ordering::Relaxed) {
                    let key = &keys[(i as usize) % keys.len()];
                    attempts.fetch_add(1, Ordering::Relaxed);
                    let ver = store.version(key, t0);
                    watched[0].0.clear();
                    watched[0].0.push_str(key);
                    watched[0].1 = ver;
                    if let WriteOp::Set {
                        key: k, value: v, ..
                    } = &mut ops[0]
                    {
                        k.clear();
                        k.push_str(key);
                        v.clear();
                        let _ = write!(v, "{i}");
                    }
                    let applied = store.exec(&watched, &ops, t0).expect("exec");
                    if applied {
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                    i += 1;
                }
            });
        }
        std::thread::sleep(warmup_of(window));
        committed.store(0, Ordering::Relaxed);
        attempts.store(0, Ordering::Relaxed);
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    let attempts = attempts.load(Ordering::Relaxed).max(1);
    let ok = committed.load(Ordering::Relaxed);
    ScalingCell {
        threads,
        pattern,
        throughput_ops: ok as f64 / window.as_secs_f64(),
        abort_rate: (attempts - ok.min(attempts)) as f64 / attempts as f64,
    }
}

/// KV-store command-throughput sweep over `thread_counts`.
pub fn kv_scaling(thread_counts: &[usize], window: Duration) -> Vec<ScalingCell> {
    let mut out = Vec::new();
    for &threads in thread_counts {
        for pattern in [KeyPattern::Disjoint, KeyPattern::SameKey] {
            out.push(measure_kv(threads, pattern, window));
        }
    }
    out
}

/// One WAL-ablation cell: the commit workload under one durability mode.
#[derive(Debug, Clone)]
pub struct WalCell {
    /// Durability mode of this cell.
    pub mode: WalMode,
    /// Simulated per-fsync device latency charged in this cell (µs).
    pub fsync_latency_us: u64,
    /// The measured cell.
    pub cell: ScalingCell,
}

/// Durability-overhead sweep: the fig-2 commit workload under WAL off,
/// per-commit fsync, and group commit, over `thread_counts`. WAL-off
/// cells double as the regression guard that `wal: None` keeps the
/// sharded commit path free of durability cost; the group-commit column
/// shows how much of the per-commit-fsync tax amortization recovers.
///
/// Two latency columns per logging mode: free fsyncs (latency 0, the
/// historical rows) and a simulated [`FSYNC_LATENCY_US`]-cost device.
/// The costed column is where group commit earns its keep — per-commit
/// fsync pays the device once per transaction, the leader-based group
/// pays once per *batch*.
pub fn wal_commit_scaling(thread_counts: &[usize], window: Duration) -> Vec<WalCell> {
    let mut out = Vec::new();
    for &threads in thread_counts {
        for pattern in [KeyPattern::Disjoint, KeyPattern::SameKey] {
            for mode in [WalMode::Off, WalMode::OnCommit, WalMode::GroupCommit] {
                out.push(WalCell {
                    mode,
                    fsync_latency_us: 0,
                    cell: measure_commits_wal(threads, pattern, window, mode, 0),
                });
            }
            // The costed-device column: only the modes that fsync at all.
            for mode in [WalMode::OnCommit, WalMode::GroupCommit] {
                out.push(WalCell {
                    mode,
                    fsync_latency_us: FSYNC_LATENCY_US,
                    cell: measure_commits_wal(threads, pattern, window, mode, FSYNC_LATENCY_US),
                });
            }
        }
    }
    out
}

/// Render the WAL ablation as `BENCH_wal.json`: same row shape as fig 2
/// plus a `"wal"` flag, a `"policy"` label, and the simulated
/// `"fsync_us"` device cost, so the modes sit side by side in one file.
pub fn render_wal_json(cells: &[WalCell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"storage_commit_wal_overhead\",\n");
    out.push_str("  \"unit\": \"ops_per_sec\",\n");
    out.push_str("  \"rows\": [\n");
    for (i, w) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"pattern\": \"{}\", \"wal\": {}, \"policy\": \"{}\", \"fsync_us\": {}, \"throughput_ops\": {:.1}, \"abort_rate\": {:.6}}}{}\n",
            w.cell.threads,
            w.cell.pattern.label(),
            w.mode.enabled(),
            w.mode.label(),
            w.fsync_latency_us,
            w.cell.throughput_ops,
            w.cell.abort_rate,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render a sweep as the machine-readable JSON the CI/bench tooling
/// consumes: `{"bench": ..., "rows": [{"threads", "pattern",
/// "throughput_ops", "abort_rate"}, ...]}`. `baseline` (if any) is a
/// pre-recorded JSON object spliced in verbatim under `"baseline"` so one
/// file carries before/after.
pub fn render_json(bench: &str, cells: &[ScalingCell], baseline: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{bench}\",\n"));
    out.push_str("  \"unit\": \"ops_per_sec\",\n");
    out.push_str("  \"rows\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"pattern\": \"{}\", \"throughput_ops\": {:.1}, \"abort_rate\": {:.6}}}{}\n",
            c.threads,
            c.pattern.label(),
            c.throughput_ops,
            c.abort_rate,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]");
    if let Some(b) = baseline {
        out.push_str(",\n  \"baseline\": ");
        out.push_str(b.trim());
    }
    out.push_str("\n}\n");
    out
}

/// The standard thread sweep.
pub fn default_threads() -> Vec<usize> {
    vec![1, 2, 4, 8]
}

/// Duty cycle per cell: `BENCH_SCALE=smoke` keeps the whole sweep under a
/// couple of seconds for CI; anything else runs the full window.
pub fn window_from_env() -> Duration {
    match std::env::var("BENCH_SCALE").as_deref() {
        Ok("smoke") => Duration::from_millis(25),
        _ => Duration::from_millis(200),
    }
}

/// Convenience used by `paper-eval bench-json`: run both sweeps and return
/// `(fig2_json, fig3_json)`.
pub fn bench_json(baseline_fig2: Option<&str>, baseline_fig3: Option<&str>) -> (String, String) {
    let threads = default_threads();
    let window = window_from_env();
    let fig2 = commit_scaling(&threads, window);
    let fig3 = kv_scaling(&threads, window);
    (
        render_json("storage_commit_scaling", &fig2, baseline_fig2),
        render_json("kv_command_scaling", &fig3, baseline_fig3),
    )
}

/// Convenience used by `paper-eval bench-json`: run the WAL ablation and
/// return the `BENCH_wal.json` body.
pub fn wal_bench_json() -> String {
    render_wal_json(&wal_commit_scaling(&default_threads(), window_from_env()))
}

// ---------------------------------------------------------------------------
// OCC ablation: the §7 cured layer vs the hand-rolled AHT it replaces.
// ---------------------------------------------------------------------------

/// Implementation of one OCC-ablation cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccStrategy {
    /// The hand-rolled ad hoc transaction the studied applications write:
    /// in-process lock around a read in one database transaction and the
    /// dependent write in a *second* one (the Figure 1a shape).
    AdhocLock,
    /// `orm::occ`: one optimistic transaction — field-granular read
    /// footprint, validate-on-commit, automatic retry.
    CuredOcc,
    /// The PR-9 coordination-avoiding path: the increment is a
    /// commutative delta (`add_delta`), so the transaction carries no
    /// read footprint at all — nothing to validate, nothing to retry,
    /// concurrent bumps merge at install.
    Confluent,
}

impl OccStrategy {
    /// JSON/label name.
    pub fn label(self) -> &'static str {
        match self {
            OccStrategy::AdhocLock => "adhoc",
            OccStrategy::CuredOcc => "cured",
            OccStrategy::Confluent => "confluent",
        }
    }
}

/// One measured OCC-ablation cell.
#[derive(Debug, Clone)]
pub struct OccCell {
    /// Which implementation produced the cell.
    pub strategy: OccStrategy,
    /// The measured cell.
    pub cell: ScalingCell,
}

/// Retry policy of the cured bench loop: effectively unbounded attempts
/// with a backoff tuned for a microbenchmark's microsecond commits.
fn occ_bench_policy() -> RetryPolicy {
    RetryPolicy::exponential(
        1_000_000,
        Duration::from_micros(5),
        Duration::from_micros(200),
    )
}

/// Measure one (threads, pattern, strategy) cell: read-modify-write
/// increments of `val`, disjoint or hot-key, via either implementation.
/// Both sides go through the same ORM so the cell isolates the
/// *coordination* cost, not object-mapping overhead.
fn measure_occ(
    threads: usize,
    pattern: KeyPattern,
    window: Duration,
    strategy: OccStrategy,
) -> ScalingCell {
    let db = seed_db(threads, WalMode::Off, 0);
    let orm = Orm::new(
        db.clone(),
        Registry::new().register(EntityDef::new("bench_rows")),
    );
    let lock = MemLock::new();
    let policy = occ_bench_policy();
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    let attempts = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for t in 0..threads {
            let orm = &orm;
            let lock = lock.clone();
            let policy = &policy;
            let stop = Arc::clone(&stop);
            let committed = Arc::clone(&committed);
            let attempts = Arc::clone(&attempts);
            s.spawn(move || {
                let ids: Vec<i64> = match pattern {
                    KeyPattern::Disjoint => {
                        let base = 1 + (t as i64) * ROWS_PER_THREAD;
                        (base..base + ROWS_PER_THREAD).collect()
                    }
                    KeyPattern::SameKey => vec![0],
                };
                let mut i: usize = 0;
                while !stop.load(Ordering::Relaxed) {
                    let id = ids[i % ids.len()];
                    attempts.fetch_add(1, Ordering::Relaxed);
                    match strategy {
                        OccStrategy::AdhocLock => {
                            // Key formatted per acquisition — the idiom
                            // every studied application writes
                            // (`lock.lock(&format!("account:{id}"))`).
                            let guard = lock.lock(&format!("row:{id}")).expect("lock");
                            let val = orm
                                .find_required("bench_rows", id)
                                .expect("read")
                                .get_int("val")
                                .expect("val");
                            std::thread::yield_now(); // business logic between R and W
                            orm.transaction(|txn| {
                                txn.raw()
                                    .update("bench_rows", id, &[("val", (val + 1).into())])?;
                                Ok(())
                            })
                            .expect("write");
                            guard.unlock().expect("unlock");
                        }
                        OccStrategy::CuredOcc => {
                            run_occ(orm, policy, None, |occ| {
                                let val = occ
                                    .read_fields(orm, "bench_rows", id, &["val"])?
                                    .expect("seeded row")
                                    .get_int("val")?;
                                std::thread::yield_now(); // business logic between R and W
                                occ.stage_update("bench_rows", id, &[("val", (val + 1).into())]);
                                Ok(())
                            })
                            .expect("occ");
                        }
                        OccStrategy::Confluent => {
                            // The increment commits as a delta: no read,
                            // no lock, no validation — so there is no
                            // R-to-W window for business logic to sit in,
                            // and no retry loop around the commit.
                            orm.transaction(|txn| {
                                txn.raw().add_delta("bench_rows", id, "val", 1)?;
                                Ok(())
                            })
                            .expect("delta");
                        }
                    }
                    committed.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        std::thread::sleep(warmup_of(window));
        committed.store(0, Ordering::Relaxed);
        attempts.store(0, Ordering::Relaxed);
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    let stats = db.stats();
    let attempts = attempts.load(Ordering::Relaxed).max(1);
    ScalingCell {
        threads,
        pattern,
        throughput_ops: committed.load(Ordering::Relaxed) as f64 / window.as_secs_f64(),
        // For the cured strategy every OCC validation failure rolled a
        // transaction back; the lock strategy never aborts.
        abort_rate: stats.aborts as f64 / (attempts + stats.aborts) as f64,
    }
}

/// The cured-vs-adhoc throughput ablation over `thread_counts`, both key
/// patterns. The §7 claim under test: on disjoint keys the optimistic
/// layer (no lock round-trips, one transaction instead of two) meets or
/// beats the hand-rolled AHT; under a hot key its retry loop stays within
/// a small factor of the serialized lock queue.
pub fn occ_scaling(thread_counts: &[usize], window: Duration) -> Vec<OccCell> {
    let mut out = Vec::new();
    for &threads in thread_counts {
        for pattern in [KeyPattern::Disjoint, KeyPattern::SameKey] {
            for strategy in [OccStrategy::AdhocLock, OccStrategy::CuredOcc] {
                out.push(OccCell {
                    strategy,
                    cell: measure_occ(threads, pattern, window, strategy),
                });
            }
        }
    }
    out
}

/// Render the OCC ablation as `BENCH_occ.json`: fig-2 row shape plus a
/// `"strategy"` label. `baseline` (if any) is spliced in verbatim under
/// `"baseline"`, like [`render_json`].
pub fn render_occ_json(cells: &[OccCell], baseline: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"occ_vs_adhoc_scaling\",\n");
    out.push_str("  \"unit\": \"ops_per_sec\",\n");
    out.push_str("  \"rows\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"pattern\": \"{}\", \"strategy\": \"{}\", \"throughput_ops\": {:.1}, \"abort_rate\": {:.6}}}{}\n",
            c.cell.threads,
            c.cell.pattern.label(),
            c.strategy.label(),
            c.cell.throughput_ops,
            c.cell.abort_rate,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]");
    if let Some(b) = baseline {
        out.push_str(",\n  \"baseline\": ");
        out.push_str(b.trim());
    }
    out.push_str("\n}\n");
    out
}

/// Convenience used by `paper-eval bench-json`: run the OCC ablation and
/// return the `BENCH_occ.json` body.
pub fn occ_bench_json(baseline: Option<&str>) -> String {
    render_occ_json(
        &occ_scaling(&default_threads(), window_from_env()),
        baseline,
    )
}

// ---------------------------------------------------------------------------
// Confluence ablation: coordination-avoiding deltas vs both coordinated
// implementations of the same hot-counter increment.
// ---------------------------------------------------------------------------

/// The PR-9 hot-key ablation over `thread_counts`, both key patterns,
/// all three strategies. The claim under test: on the single hot counter
/// key the confluent delta path — no lock queue, no OCC retry loop —
/// clears the cured layer by an integer factor with a zero abort rate,
/// while on disjoint keys (where there is no coordination to avoid) it
/// stays at parity.
pub fn confluence_scaling(thread_counts: &[usize], window: Duration) -> Vec<OccCell> {
    let mut out = Vec::new();
    for &threads in thread_counts {
        for pattern in [KeyPattern::Disjoint, KeyPattern::SameKey] {
            for strategy in [
                OccStrategy::AdhocLock,
                OccStrategy::CuredOcc,
                OccStrategy::Confluent,
            ] {
                out.push(OccCell {
                    strategy,
                    cell: measure_occ(threads, pattern, window, strategy),
                });
            }
        }
    }
    out
}

/// Render the confluence ablation as `BENCH_confluence.json`: the
/// `BENCH_occ.json` row shape under its own bench name, gated by
/// `tools/check_scaling.py` against `tools/baselines/confluence.json`.
pub fn render_confluence_json(cells: &[OccCell], baseline: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"confluent_counter_scaling\",\n");
    out.push_str("  \"unit\": \"ops_per_sec\",\n");
    out.push_str("  \"rows\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"pattern\": \"{}\", \"strategy\": \"{}\", \"throughput_ops\": {:.1}, \"abort_rate\": {:.6}}}{}\n",
            c.cell.threads,
            c.cell.pattern.label(),
            c.strategy.label(),
            c.cell.throughput_ops,
            c.cell.abort_rate,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]");
    if let Some(b) = baseline {
        out.push_str(",\n  \"baseline\": ");
        out.push_str(b.trim());
    }
    out.push_str("\n}\n");
    out
}

/// Convenience used by `paper-eval bench-json`: run the confluence
/// ablation and return the `BENCH_confluence.json` body.
pub fn confluence_bench_json(baseline: Option<&str>) -> String {
    render_confluence_json(
        &confluence_scaling(&default_threads(), window_from_env()),
        baseline,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_sweep_smoke() {
        let _serial = crate::SERIAL_MEASUREMENTS.lock();
        let cells = commit_scaling(&[1, 2], Duration::from_millis(20));
        assert_eq!(cells.len(), 4);
        for c in &cells {
            assert!(c.throughput_ops > 0.0, "{c:?}");
            assert!((0.0..=1.0).contains(&c.abort_rate), "{c:?}");
        }
        let kv = kv_scaling(&[2], Duration::from_millis(20));
        assert_eq!(kv.len(), 2);
        let json = render_json("storage_commit_scaling", &cells, Some("{\"note\": 1}"));
        assert!(json.contains("\"threads\": 1"));
        assert!(json.contains("\"baseline\""));
    }

    #[test]
    fn wal_ablation_smoke() {
        let _serial = crate::SERIAL_MEASUREMENTS.lock();
        let cells = wal_commit_scaling(&[2], Duration::from_millis(20));
        // 2 patterns x ({off, on_commit, group_commit} free + {on_commit,
        // group_commit} costed-fsync)
        assert_eq!(cells.len(), 10);
        for w in &cells {
            assert!(w.cell.throughput_ops > 0.0, "{w:?}");
            if w.mode == WalMode::Off {
                assert_eq!(w.fsync_latency_us, 0, "{w:?}");
            }
        }
        assert!(cells.iter().any(|w| w.fsync_latency_us == FSYNC_LATENCY_US));
        let json = render_wal_json(&cells);
        assert!(json.contains("\"wal\": true"));
        assert!(json.contains("\"wal\": false"));
        assert!(json.contains("\"policy\": \"group_commit\""));
        assert!(json.contains(&format!("\"fsync_us\": {FSYNC_LATENCY_US}")));
    }

    #[test]
    fn occ_ablation_smoke() {
        let _serial = crate::SERIAL_MEASUREMENTS.lock();
        let cells = occ_scaling(&[2], Duration::from_millis(20));
        assert_eq!(cells.len(), 4); // 2 patterns x {adhoc, cured}
        for c in &cells {
            assert!(c.cell.throughput_ops > 0.0, "{c:?}");
            assert!((0.0..=1.0).contains(&c.cell.abort_rate), "{c:?}");
        }
        let json = render_occ_json(&cells, Some("{\"note\": 1}"));
        assert!(json.contains("\"strategy\": \"cured\""));
        assert!(json.contains("\"strategy\": \"adhoc\""));
        assert!(json.contains("\"baseline\""));
    }

    #[test]
    fn confluence_ablation_smoke() {
        let _serial = crate::SERIAL_MEASUREMENTS.lock();
        let cells = confluence_scaling(&[2], Duration::from_millis(20));
        assert_eq!(cells.len(), 6); // 2 patterns x {adhoc, cured, confluent}
        for c in &cells {
            assert!(c.cell.throughput_ops > 0.0, "{c:?}");
            assert!((0.0..=1.0).contains(&c.cell.abort_rate), "{c:?}");
            // Commutative deltas never validate, so they never roll back.
            if c.strategy == OccStrategy::Confluent {
                assert_eq!(c.cell.abort_rate, 0.0, "{c:?}");
            }
        }
        let json = render_confluence_json(&cells, None);
        assert!(json.contains("\"bench\": \"confluent_counter_scaling\""));
        assert!(json.contains("\"strategy\": \"confluent\""));
    }
}
