//! Metastability ablation: which resilience mechanisms buy recovery.
//!
//! The same closed-loop world as `tests/resilience_oracle.rs` — eight
//! per-app request streams over one faulted KV client, a 30-tick full
//! inbound partition in the middle of a 200-tick run — swept across
//! three configurations:
//!
//! * `full` — deadlines + retry budget + circuit breaker + per-app
//!   admission doors with read-only degraded mode.
//! * `breaker_only` — the breaker fails outage traffic fast, but clients
//!   still queue unbounded and nothing drops stale work.
//! * `naive` — eager in-place retries, unbounded queueing, no deadlines.
//!
//! Everything runs on a [`VirtualClock`], so the sweep costs milliseconds
//! of wall time, is bit-for-bit reproducible, and the *shape* — full
//! recovers to baseline, naive stays pinned near zero goodput on a
//! healthy backend — is the reproduction target, not absolute numbers.
//! Rendered to `BENCH_resilience.json` by `paper-eval bench-json`.

use adhoc_apps::admission::{Admission, APPS};
use adhoc_core::resilience::{BreakerState, CircuitBreaker, Deadline, RetryBudget, Workload};
use adhoc_kv::{Client, KvError, Store};
use adhoc_sim::{Clock, FaultKind, FaultPlan, FaultRule, LatencyModel, VirtualClock};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0x5157_4d0d_2022_0612;
const TICK: Duration = Duration::from_millis(10);
const TICKS: u64 = 200;
const ARRIVALS: u64 = 4;
const CAPACITY: u64 = 16;
const PATIENCE: u64 = 4;
const STORM_START: u64 = 60;
const STORM_END: u64 = 90;
const NAIVE_ATTEMPTS: u32 = 4;
const DOOR_CAPACITY: usize = 3;

/// Which resilience mechanisms a swept configuration enables.
#[derive(Debug, Clone, Copy)]
pub struct Resilience {
    /// Circuit breaker on the shared KV connection.
    pub breaker: bool,
    /// Per-request deadlines: stale work drops free, errors return to
    /// the caller instead of requeueing.
    pub deadlines: bool,
    /// Per-app admission doors with read-only degraded mode.
    pub admission: bool,
}

impl Resilience {
    /// The three swept points.
    pub fn sweep() -> Vec<(&'static str, Self)> {
        vec![
            (
                "full",
                Self {
                    breaker: true,
                    deadlines: true,
                    admission: true,
                },
            ),
            (
                "breaker_only",
                Self {
                    breaker: true,
                    deadlines: false,
                    admission: false,
                },
            ),
            (
                "naive",
                Self {
                    breaker: false,
                    deadlines: false,
                    admission: false,
                },
            ),
        ]
    }
}

/// One measured configuration of the metastability world.
#[derive(Debug, Clone)]
pub struct ResilienceRow {
    /// Configuration label (`full`, `breaker_only`, `naive`).
    pub config: &'static str,
    /// Goodput per tick over the healthy warm-up window.
    pub baseline: f64,
    /// Goodput per tick while the partition is live.
    pub storm: f64,
    /// Goodput per tick in the window starting 10 ticks post-storm.
    pub recovery: f64,
    /// Goodput per tick over the final 20 ticks.
    pub tail: f64,
    /// Queue depth when the run ended.
    pub end_queue: usize,
    /// Completions delivered after the client had given up.
    pub wasted: u64,
    /// Times the breaker tripped open.
    pub times_opened: u64,
}

struct Req {
    id: u64,
    app: usize,
    born: u64,
    read: bool,
    respawned: bool,
}

fn at_tick(n: u64) -> Duration {
    TICK * u32::try_from(n).expect("tick fits u32")
}

fn avg(window: &[u64]) -> f64 {
    window.iter().sum::<u64>() as f64 / window.len() as f64
}

/// Run the closed-loop world once under `res` and measure it.
pub fn run_config(config: &'static str, res: Resilience) -> ResilienceRow {
    let clock = Arc::new(VirtualClock::new());
    let plan = FaultPlan::new(
        SEED,
        FaultRule::storm(
            &[FaultKind::PartitionInbound],
            1.0,
            at_tick(STORM_START),
            at_tick(STORM_END),
        ),
    );
    let breaker = Arc::new(CircuitBreaker::new(4, 2 * TICK));
    let budget = Arc::new(RetryBudget::new(4));
    let mut base = Client::new(Store::new(), clock.clone(), LatencyModel::zero()).with_faults(plan);
    if res.breaker {
        base = base.with_breaker(Arc::clone(&breaker));
    }
    let admission = Admission::new(DOOR_CAPACITY);

    let mut queue: VecDeque<Req> = VecDeque::new();
    let mut next_id: u64 = 0;
    let mut goodput_by_tick: Vec<u64> = Vec::with_capacity(TICKS as usize);
    let mut wasted: u64 = 0;

    for tick in 0..TICKS {
        let degraded = res.admission
            && res.breaker
            && matches!(breaker.state(clock.now()), BreakerState::Open);
        admission.degrade_writes(degraded);

        for _ in 0..ARRIVALS {
            let id = next_id;
            next_id += 1;
            let app = (id % APPS.len() as u64) as usize;
            let read = id % 4 == 3;
            if res.admission {
                let workload = if read {
                    Workload::Read
                } else {
                    Workload::Write
                };
                // The bench world tracks door occupancy by queue depth
                // below; the door's verdict alone decides admission here.
                if admission.admit(APPS[app], workload).is_err() {
                    continue;
                }
            }
            queue.push_back(Req {
                id,
                app,
                born: tick,
                read,
                respawned: false,
            });
        }
        if res.admission {
            // Doors bound *standing* work: beyond capacity, shed.
            while queue.len() > APPS.len() * DOOR_CAPACITY {
                queue.pop_back();
            }
        }

        let mut used: u64 = 0;
        let mut goodput: u64 = 0;
        for _ in 0..queue.len() {
            if used >= CAPACITY {
                break;
            }
            let Some(mut req) = queue.pop_front() else {
                break;
            };
            let stale = tick - req.born > PATIENCE;
            if stale && !req.respawned {
                req.respawned = true;
                let id = next_id;
                next_id += 1;
                queue.push_back(Req {
                    id,
                    app: req.app,
                    born: tick,
                    read: req.read,
                    respawned: false,
                });
            }
            if res.deadlines && stale {
                continue; // dropped free at the deadline
            }
            let client = if res.deadlines {
                base.clone()
                    .with_deadline(Deadline::at(at_tick(req.born + PATIENCE + 1)))
            } else {
                base.clone()
            };
            if req.read && degraded {
                let _ = base
                    .store()
                    .get(&format!("out:{}:{}", APPS[req.app], req.id), clock.now());
                goodput += 1;
                continue;
            }
            let mut attempts = 0u32;
            let outcome = loop {
                attempts += 1;
                let before = base.round_trips();
                let result = if req.read {
                    client
                        .get(&format!("out:{}:{}", APPS[req.app], req.id))
                        .map(|_| ())
                } else {
                    serve_write(&client, &req)
                };
                used += base.round_trips() - before;
                match result {
                    Ok(()) => break Ok(()),
                    Err(e) => {
                        let fail_fast =
                            matches!(e, KvError::DeadlineExceeded | KvError::CircuitOpen);
                        let retry = if res.deadlines {
                            !fail_fast && budget.try_withdraw()
                        } else {
                            attempts < NAIVE_ATTEMPTS && used < CAPACITY
                        };
                        if !retry {
                            break Err(e);
                        }
                    }
                }
            };
            match outcome {
                Ok(()) if stale => wasted += 1,
                Ok(()) => goodput += 1,
                Err(_) => {
                    if !res.deadlines {
                        queue.push_front(req); // the convoy retries in place
                    }
                }
            }
        }
        goodput_by_tick.push(goodput);
        clock.advance(TICK);
    }

    ResilienceRow {
        config,
        baseline: avg(&goodput_by_tick[20..STORM_START as usize]),
        storm: avg(&goodput_by_tick[STORM_START as usize..STORM_END as usize]),
        recovery: avg(&goodput_by_tick[(STORM_END + 10) as usize..(STORM_END + 30) as usize]),
        tail: avg(&goodput_by_tick[(TICKS - 20) as usize..]),
        end_queue: queue.len(),
        wasted,
        times_opened: breaker.times_opened(),
    }
}

fn serve_write(client: &Client, req: &Req) -> Result<(), KvError> {
    let lease = format!("lease:{}", APPS[req.app]);
    let Some(token) = client.acquire_lease(&lease, &format!("req-{}", req.id), 2 * TICK)? else {
        return Err(KvError::ConnectionLost); // leaked grant: wait out the TTL
    };
    client.fenced_set(&format!("out:{}:{}", APPS[req.app], req.id), "done", token)?;
    let _ = client.del(&lease);
    Ok(())
}

/// Run the full sweep.
pub fn resilience_sweep() -> Vec<ResilienceRow> {
    Resilience::sweep()
        .into_iter()
        .map(|(label, res)| run_config(label, res))
        .collect()
}

/// Render the sweep as `BENCH_resilience.json`.
pub fn render_resilience_json(rows: &[ResilienceRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"metastability_ablation\",\n");
    out.push_str("  \"unit\": \"goodput_per_tick\",\n");
    out.push_str(&format!(
        "  \"storm_ticks\": [{STORM_START}, {STORM_END}],\n"
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"config\": \"{}\", \"baseline\": {:.2}, \"storm\": {:.2}, \"recovery\": {:.2}, \"tail\": {:.2}, \"end_queue\": {}, \"wasted\": {}, \"times_opened\": {}}}{}\n",
            r.config,
            r.baseline,
            r.storm,
            r.recovery,
            r.tail,
            r.end_queue,
            r.wasted,
            r.times_opened,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Convenience used by `paper-eval bench-json`.
pub fn resilience_bench_json() -> String {
    render_resilience_json(&resilience_sweep())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_recovers_and_naive_does_not() {
        let rows = resilience_sweep();
        let full = rows.iter().find(|r| r.config == "full").unwrap();
        let naive = rows.iter().find(|r| r.config == "naive").unwrap();
        assert!(full.tail >= 0.9 * full.baseline, "full: {full:?}");
        assert!(naive.tail <= 0.3 * naive.baseline, "naive: {naive:?}");
        assert!(full.times_opened >= 1);
        assert_eq!(naive.times_opened, 0);
        assert!(naive.end_queue > full.end_queue);
    }

    #[test]
    fn sweep_json_is_well_formed() {
        let json = resilience_bench_json();
        assert!(json.contains("\"metastability_ablation\""));
        assert!(json.contains("\"full\""));
        assert!(json.contains("\"breaker_only\""));
        assert!(json.contains("\"naive\""));
    }
}
