//! One retry/backoff policy for every coordination path (§3.4.1).
//!
//! The studied applications each grew several independent retry loops —
//! lock-acquisition polling, optimistic-validation loops, DBT re-runs —
//! every one with its own interval arithmetic and give-up condition. This
//! module centralizes all of them on [`RetryPolicy`] (defined in
//! `adhoc-sim` so the storage engine can share it) plus a toolkit-wide
//! [`Retryable`] classification, so a site states *what* is retryable and
//! the policy decides *how*:
//!
//! * the three lock polling loops (`KV-SETNX`, `KV-MULTI`, `DB`) drive a
//!   [`RetryPolicy::timer`] built by
//!   [`AcquireConfig::policy`](crate::locks::AcquireConfig::policy);
//! * the DBT wrapper (`Database::run_with_retries`) runs under
//!   `Database::retry_policy`;
//! * optimistic commit loops use
//!   [`run_optimistic`](crate::optimistic::run_optimistic).
//!
//! Giving up on a *retryable* error surfaces
//! [`ToolkitError::RetriesExhausted`]; a non-retryable error is returned
//! as-is on the first attempt.

pub use adhoc_sim::{BackoffPolicy, GiveUp, RetryObserver, RetryPolicy, RetryTimer};

use crate::error::ToolkitError;
use crate::locks::LockError;
use adhoc_kv::KvError;
use adhoc_orm::OrmError;
use adhoc_storage::DbError;

/// The toolkit-wide answer to "is re-running the operation a sound
/// response to this error?" — the classification §3.4.1 finds every
/// studied application re-deriving locally (and sometimes wrongly).
pub trait Retryable {
    /// True when the failure is transient and a retry can succeed without
    /// risking a double-apply.
    fn is_retryable(&self) -> bool;
}

impl Retryable for DbError {
    fn is_retryable(&self) -> bool {
        DbError::is_retryable(self)
    }
}

impl Retryable for OrmError {
    fn is_retryable(&self) -> bool {
        OrmError::is_retryable(self)
    }
}

impl Retryable for LockError {
    fn is_retryable(&self) -> bool {
        // A watchdog-aborted victim should retry; a timeout already *was*
        // the retry budget, and the rest are hard failures.
        matches!(self, LockError::Deadlock { .. })
    }
}

impl Retryable for KvError {
    fn is_retryable(&self) -> bool {
        // ConnectionLost is ambiguous (the command may have applied), so a
        // blind retry of a non-idempotent command is unsound; everything
        // else is a hard protocol error.
        false
    }
}

impl Retryable for ToolkitError {
    fn is_retryable(&self) -> bool {
        ToolkitError::is_retryable(self)
    }
}

/// Run `body` under `policy`, retrying failures its error type classifies
/// as retryable.
///
/// On give-up: a retryable error that outlived the budget becomes
/// [`ToolkitError::RetriesExhausted`]; a non-retryable error converts via
/// `Into<ToolkitError>` untouched.
pub fn run_with_policy<T, E>(
    policy: &RetryPolicy,
    label: &str,
    observer: Option<&dyn RetryObserver>,
    body: impl FnMut(u32) -> Result<T, E>,
) -> crate::Result<T>
where
    E: Retryable + Into<ToolkitError>,
{
    policy
        .run(label, observer, |e: &E| e.is_retryable(), body)
        .map_err(|give_up| {
            if give_up.retryable {
                ToolkitError::RetriesExhausted {
                    attempts: give_up.attempts,
                }
            } else {
                give_up.error.into()
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn retryable_classification_is_uniform() {
        assert!(Retryable::is_retryable(&DbError::Deadlock { txn: 1 }));
        assert!(!Retryable::is_retryable(&DbError::ConnectionLost {
            txn: 1
        }));
        assert!(Retryable::is_retryable(&LockError::Deadlock {
            key: "k".into()
        }));
        assert!(!Retryable::is_retryable(&LockError::Timeout {
            key: "k".into()
        }));
        assert!(!Retryable::is_retryable(&KvError::ConnectionLost));
    }

    #[test]
    fn run_with_policy_maps_exhaustion() {
        let policy = RetryPolicy::exponential(3, Duration::ZERO, Duration::ZERO);
        let result: crate::Result<()> =
            run_with_policy(&policy, "test", None, |_| Err(DbError::Deadlock { txn: 1 }));
        assert_eq!(
            result.unwrap_err(),
            ToolkitError::RetriesExhausted { attempts: 3 }
        );
    }

    #[test]
    fn run_with_policy_passes_hard_errors_through() {
        let policy = RetryPolicy::exponential(3, Duration::ZERO, Duration::ZERO);
        let mut calls = 0;
        let result: crate::Result<()> = run_with_policy(&policy, "test", None, |_| {
            calls += 1;
            Err(LockError::NotHeld { key: "k".into() })
        });
        assert_eq!(calls, 1, "non-retryable error must not be re-attempted");
        assert!(matches!(
            result,
            Err(ToolkitError::Lock(LockError::NotHeld { .. }))
        ));
    }

    #[derive(Default)]
    struct Counting {
        events: parking_lot::Mutex<Vec<String>>,
    }

    impl RetryObserver for Counting {
        fn on_retry(&self, label: &str, attempt: u32, _delay: Duration) {
            self.events.lock().push(format!("retry:{label}:{attempt}"));
        }
        fn on_give_up(&self, label: &str, attempts: u32, reason: &str) {
            self.events
                .lock()
                .push(format!("give-up:{label}:{attempts}:{reason}"));
        }
    }

    #[test]
    fn observer_accounts_every_attempt_through_run_with_policy() {
        let obs = Counting::default();
        let policy = RetryPolicy::exponential(4, Duration::ZERO, Duration::ZERO);
        let result: crate::Result<()> = run_with_policy(&policy, "dbt", Some(&obs), |_| {
            Err(DbError::Deadlock { txn: 9 })
        });
        assert_eq!(
            result.unwrap_err(),
            ToolkitError::RetriesExhausted { attempts: 4 }
        );
        // One on_retry per sleep (attempts 0..3 fail, 3 sleeps), then one
        // give-up carrying the total attempt count and the binding budget.
        assert_eq!(
            obs.events.into_inner(),
            vec![
                "retry:dbt:0",
                "retry:dbt:1",
                "retry:dbt:2",
                "give-up:dbt:4:attempts"
            ]
        );
    }

    #[test]
    fn observer_is_silent_on_success_and_hard_errors() {
        let obs = Counting::default();
        let policy = RetryPolicy::exponential(4, Duration::ZERO, Duration::ZERO);
        let ok: crate::Result<u32> =
            run_with_policy(&policy, "ok", Some(&obs), |_| Ok::<_, DbError>(7));
        assert_eq!(ok.unwrap(), 7);
        let hard: crate::Result<()> = run_with_policy(&policy, "hard", Some(&obs), |_| {
            Err(LockError::NotHeld { key: "k".into() })
        });
        assert!(hard.is_err());
        assert!(
            obs.events.into_inner().is_empty(),
            "no retry happened, so the observer must hear nothing"
        );
    }

    #[test]
    fn observer_reports_deadline_exhaustion_as_deadline() {
        let obs = Counting::default();
        // Deadline already spent at the first failure; the attempt budget
        // (unbounded) is not the binding constraint.
        let policy = RetryPolicy::fixed(Duration::ZERO, Duration::ZERO);
        let result: crate::Result<()> = run_with_policy(&policy, "poll", Some(&obs), |_| {
            Err(DbError::Deadlock { txn: 1 })
        });
        assert_eq!(
            result.unwrap_err(),
            ToolkitError::RetriesExhausted { attempts: 1 }
        );
        assert_eq!(obs.events.into_inner(), vec!["give-up:poll:1:deadline"]);
    }

    #[test]
    fn backoff_cap_is_hard_at_both_edges_through_the_toolkit_reexport() {
        // The toolkit re-exports the simulator's BackoffPolicy, so every
        // coordination loop shares one clamp. Edge 1: attempt counts large
        // enough to overflow the shift still land exactly on the cap.
        let b = BackoffPolicy::exponential(Duration::from_millis(5), Duration::from_secs(1));
        assert_eq!(b.delay(0, u32::MAX), Duration::from_secs(1));
        // Edge 2: jitter's upward half must not carry a capped delay past
        // the cap — sample many streams at a capped attempt.
        let j = BackoffPolicy::exponential(Duration::from_millis(5), Duration::from_secs(1))
            .with_jitter(0.5)
            .with_seed(7);
        for stream in 0..256 {
            assert!(j.delay(stream, 30) <= Duration::from_secs(1));
        }
    }

    #[test]
    fn run_with_policy_succeeds_after_transient_failures() {
        let policy = RetryPolicy::exponential(5, Duration::ZERO, Duration::ZERO);
        let mut calls = 0;
        let result = run_with_policy(&policy, "test", None, |attempt| {
            calls += 1;
            if attempt < 2 {
                Err(DbError::SerializationFailure {
                    txn: 1,
                    reason: "ww".into(),
                })
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(result.unwrap(), 2);
        assert_eq!(calls, 3);
    }
}
