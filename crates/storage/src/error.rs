//! Error types surfaced by the storage engine.
//!
//! The variants mirror the failure modes the paper discusses: deadlock
//! victims (§3.3.1), snapshot-isolation serialization failures (§3.1.1),
//! SSI certification aborts (§5.2), and lock-wait timeouts. Application
//! code in `adhoc-apps` matches on these to drive its retry loops exactly
//! as the studied applications match on driver exceptions.

use crate::value::ColumnType;
use std::fmt;

/// Transaction identifier (monotonically assigned).
pub type TxnId = u64;

/// Every error the engine can surface to a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// The engine chose this transaction as a deadlock victim
    /// (MySQL error 1213 / PostgreSQL 40P01).
    Deadlock {
        /// The victim transaction.
        txn: TxnId,
    },
    /// Snapshot-isolation first-committer-wins or SSI certification failure
    /// (PostgreSQL 40001 "could not serialize access").
    SerializationFailure {
        /// The aborted transaction.
        txn: TxnId,
        /// Human-readable conflict description.
        reason: String,
    },
    /// A lock wait exceeded the configured timeout (MySQL error 1205).
    LockWaitTimeout {
        /// The timed-out transaction.
        txn: TxnId,
    },
    /// Statement issued on a transaction that already committed or aborted.
    TxnNotActive {
        /// The inactive transaction.
        txn: TxnId,
    },
    /// Unique index violation.
    UniqueViolation {
        /// Table owning the unique index.
        table: String,
        /// Indexed column.
        column: String,
        /// The duplicated value (rendered).
        value: String,
    },
    /// The named table does not exist.
    NoSuchTable {
        /// Requested table name.
        table: String,
    },
    /// The named column does not exist on the table.
    NoSuchColumn {
        /// Table name.
        table: String,
        /// Requested column name.
        column: String,
    },
    /// `CREATE TABLE` with an existing name.
    DuplicateTable {
        /// The already-taken name.
        table: String,
    },
    /// A schema declared the same column twice.
    DuplicateColumn {
        /// Table name.
        table: String,
        /// The repeated column name.
        column: String,
    },
    /// A point operation addressed a missing row.
    NoSuchRow {
        /// Table name.
        table: String,
        /// Requested primary key.
        id: i64,
    },
    /// A row literal has the wrong number of values for its schema.
    ArityMismatch {
        /// Table name.
        table: String,
        /// Columns in the schema.
        expected: usize,
        /// Values supplied.
        found: usize,
    },
    /// A value's type does not match the column declaration.
    TypeMismatch {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
        /// Declared column type.
        expected: ColumnType,
        /// Supplied value's type (`None` for NULL).
        found: Option<ColumnType>,
    },
    /// NULL supplied for a non-nullable column.
    NotNullViolation {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// Scan predicate references a column without an index where one is
    /// required (locking scans need an index to derive gap intervals).
    NoIndex {
        /// Table name.
        table: String,
        /// Column lacking an index.
        column: String,
    },
    /// A savepoint name was not found in this transaction.
    NoSuchSavepoint {
        /// Requested savepoint name.
        name: String,
    },
    /// The connection dropped during commit (injected by a
    /// [`FaultPlan`](adhoc_sim::FaultPlan)). The client cannot tell whether
    /// the commit became durable — drivers raise the same exception whether
    /// the server rejected the commit or crashed after flushing it, which
    /// is why §3.4.2 of the paper finds blind re-submission unsafe.
    /// Deliberately **not** retryable.
    ConnectionLost {
        /// The transaction whose outcome is unknown.
        txn: TxnId,
    },
    /// Boot-time WAL replay hit a write against a table the restarted
    /// process never re-created — a harness/schema mismatch, not a torn
    /// tail; recovery refuses to silently drop the write.
    RecoveryFailed {
        /// The table the log named.
        table: String,
    },
    /// A statement never reached the engine: the client↔DB link is
    /// partitioned (injected via
    /// [`FaultKind::DbPartitioned`](adhoc_sim::FaultKind::DbPartitioned)).
    /// Unlike [`ConnectionLost`](Self::ConnectionLost) this is
    /// unambiguous — the statement (not a commit) was lost before any
    /// effect, so retrying the transaction is safe and the classification
    /// allows it.
    Partitioned {
        /// The transaction whose statement was dropped.
        txn: TxnId,
    },
    /// The transaction's absolute deadline passed before this statement
    /// was sent. Nothing was transmitted; fail fast instead of queueing
    /// more work behind a request nobody is waiting for. Not retryable —
    /// the whole request is over.
    DeadlineExceeded {
        /// The out-of-time transaction.
        txn: TxnId,
    },
    /// The database circuit breaker is open: the statement was rejected
    /// client-side without a round trip. Not retryable from inside the
    /// request (that would defeat the breaker); callers back off or
    /// degrade.
    CircuitOpen {
        /// The rejected transaction.
        txn: TxnId,
    },
    /// An escrow reservation could not be granted: the remaining budget of
    /// the column (committed value minus outstanding reservations) is
    /// smaller than the requested amount, even after serializing on the
    /// entry's slow path. Not retryable — the caller either reports
    /// "insufficient stock" or falls back to a coordinated path.
    EscrowExhausted {
        /// Table owning the escrow column.
        table: String,
        /// The escrow-guarded column.
        column: String,
        /// Primary key of the row.
        id: i64,
        /// Amount the caller asked to reserve.
        requested: i64,
        /// Budget that remained at the final check.
        available: i64,
    },
}

impl DbError {
    /// True for errors that a client is expected to handle by retrying the
    /// whole transaction (the paper's "failure handling" category, §3.4).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            DbError::Deadlock { .. }
                | DbError::SerializationFailure { .. }
                | DbError::LockWaitTimeout { .. }
                | DbError::Partitioned { .. }
        )
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Deadlock { txn } => write!(f, "deadlock detected; txn {txn} chosen as victim"),
            DbError::SerializationFailure { txn, reason } => {
                write!(f, "could not serialize access (txn {txn}): {reason}")
            }
            DbError::LockWaitTimeout { txn } => write!(f, "lock wait timeout (txn {txn})"),
            DbError::TxnNotActive { txn } => write!(f, "transaction {txn} is not active"),
            DbError::UniqueViolation {
                table,
                column,
                value,
            } => write!(f, "unique violation on {table}.{column} = {value}"),
            DbError::NoSuchTable { table } => write!(f, "no such table {table:?}"),
            DbError::NoSuchColumn { table, column } => {
                write!(f, "no such column {table}.{column}")
            }
            DbError::DuplicateTable { table } => write!(f, "table {table:?} already exists"),
            DbError::DuplicateColumn { table, column } => {
                write!(f, "duplicate column {table}.{column}")
            }
            DbError::NoSuchRow { table, id } => write!(f, "no row {id} in {table}"),
            DbError::ArityMismatch {
                table,
                expected,
                found,
            } => write!(f, "row for {table} has {found} values, expected {expected}"),
            DbError::TypeMismatch {
                table,
                column,
                expected,
                found,
            } => write!(
                f,
                "type mismatch on {table}.{column}: expected {expected}, found {found:?}"
            ),
            DbError::NotNullViolation { table, column } => {
                write!(f, "NULL in non-nullable column {table}.{column}")
            }
            DbError::NoIndex { table, column } => {
                write!(f, "no index on {table}.{column}")
            }
            DbError::NoSuchSavepoint { name } => write!(f, "no such savepoint {name:?}"),
            DbError::ConnectionLost { txn } => {
                write!(
                    f,
                    "connection lost during commit of txn {txn}; outcome unknown"
                )
            }
            DbError::RecoveryFailed { table } => {
                write!(f, "recovery: log references unknown table {table:?}")
            }
            DbError::Partitioned { txn } => {
                write!(f, "statement of txn {txn} lost to a network partition")
            }
            DbError::DeadlineExceeded { txn } => {
                write!(
                    f,
                    "deadline exceeded before statement of txn {txn} was sent"
                )
            }
            DbError::CircuitOpen { txn } => {
                write!(f, "circuit breaker open; statement of txn {txn} rejected")
            }
            DbError::EscrowExhausted {
                table,
                column,
                id,
                requested,
                available,
            } => write!(
                f,
                "escrow exhausted on {table}.{column} row {id}: requested {requested}, available {available}"
            ),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_classification_matches_drivers() {
        assert!(DbError::Deadlock { txn: 1 }.is_retryable());
        assert!(DbError::SerializationFailure {
            txn: 1,
            reason: "ww".into()
        }
        .is_retryable());
        assert!(DbError::LockWaitTimeout { txn: 1 }.is_retryable());
        assert!(!DbError::NoSuchTable { table: "t".into() }.is_retryable());
        assert!(!DbError::UniqueViolation {
            table: "t".into(),
            column: "c".into(),
            value: "v".into()
        }
        .is_retryable());
        // Ambiguous outcome: blind retry could double-apply, so the
        // classification refuses it.
        assert!(!DbError::ConnectionLost { txn: 1 }.is_retryable());
        // A dropped *statement* is unambiguous (nothing reached the
        // engine), so retrying the transaction is safe.
        assert!(DbError::Partitioned { txn: 1 }.is_retryable());
        // Fail-fast rejections must not feed back into retry loops.
        assert!(!DbError::DeadlineExceeded { txn: 1 }.is_retryable());
        assert!(!DbError::CircuitOpen { txn: 1 }.is_retryable());
    }

    #[test]
    fn display_is_informative() {
        let e = DbError::SerializationFailure {
            txn: 7,
            reason: "concurrent update".into(),
        };
        let s = e.to_string();
        assert!(s.contains("serialize"));
        assert!(s.contains('7'));
    }
}
