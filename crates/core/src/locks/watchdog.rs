//! A deadlock-detecting ad hoc lock — the §6 development-support
//! extension for Finding 5.
//!
//! The paper observes that ad hoc transactions "are invisible to the
//! database's deadlock detector": when two requests take two application
//! locks in opposite orders, nothing aborts either side — they stall until
//! a timeout (§3.3.1). The studied applications cope by hand-maintained
//! ordering disciplines. [`WatchdogLock`] restores what the database lost:
//! it keeps a wait-for graph over the application's lock keys and fails a
//! would-be-cyclic acquisition immediately with
//! [`LockError::Deadlock`], which the toolkit
//! classifies as retryable — the same victim-aborts-and-retries contract
//! database transactions get.

use super::{AcquireConfig, Guard, LockError, LockGuard};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;
use std::time::Instant;

/// One held key: the guard's identity token plus the holding thread (the
/// thread is what the wait-for graph is built over).
#[derive(Debug, Clone, Copy)]
struct Holder {
    token: u64,
    thread: ThreadId,
}

#[derive(Debug, Default)]
struct State {
    /// key → current holder.
    holders: HashMap<String, Holder>,
    /// thread → key it is currently blocked on.
    waiting_for: HashMap<ThreadId, String>,
}

impl State {
    /// Would `requester` blocking on `key` close a cycle? Walk
    /// holder-of(key) → key-it-waits-for → holder-of(that) … until the
    /// chain ends or reaches the requester.
    fn would_deadlock(&self, requester: ThreadId, key: &str) -> bool {
        let mut cursor = match self.holders.get(key) {
            Some(h) => h.thread,
            None => return false,
        };
        // Bounded by the number of blocked threads; the graph is a
        // functional chain (each thread waits on at most one key).
        for _ in 0..=self.waiting_for.len() {
            if cursor == requester {
                return true;
            }
            let Some(next_key) = self.waiting_for.get(&cursor) else {
                return false;
            };
            let Some(next) = self.holders.get(next_key) else {
                return false;
            };
            cursor = next.thread;
        }
        false
    }
}

#[derive(Debug, Default)]
struct Inner {
    state: Mutex<State>,
    released: Condvar,
    next_token: AtomicU64,
}

/// Process-local exclusive lock with wait-for-graph deadlock detection.
///
/// Same keyed-mutual-exclusion contract as [`MemLock`](super::MemLock),
/// plus: an acquisition that would complete a wait cycle — including
/// re-locking a key the calling thread already holds — fails immediately
/// with [`LockError::Deadlock`] instead of
/// stalling to the timeout. The requester is the victim, matching the
/// engines' policy.
///
/// The wait-for graph is built over threads, so a guard should be released
/// by the thread that acquired it; moving a guard across threads keeps
/// mutual exclusion intact but can make deadlock reports miss or misfire
/// (the stale edge points at the acquiring thread).
#[derive(Debug, Default)]
pub struct WatchdogLock {
    inner: Arc<Inner>,
    config: AcquireConfig,
}

impl WatchdogLock {
    /// A fresh watchdog-guarded lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the acquisition policy (timeout still applies to plain,
    /// acyclic contention — e.g. a leaked guard).
    pub fn with_config(mut self, config: AcquireConfig) -> Self {
        self.config = config;
        self
    }
}

struct WatchdogGuard {
    inner: Arc<Inner>,
    key: String,
    token: u64,
    released: bool,
}

impl LockGuard for WatchdogGuard {
    fn unlock(&mut self) -> Result<(), LockError> {
        if self.released {
            return Ok(());
        }
        self.released = true;
        let mut state = self.inner.state.lock();
        match state.holders.get(&self.key) {
            Some(h) if h.token == self.token => {
                state.holders.remove(&self.key);
                self.inner.released.notify_all();
                Ok(())
            }
            _ => Err(LockError::NotHeld {
                key: self.key.clone(),
            }),
        }
    }

    fn is_valid(&self) -> bool {
        if self.released {
            return false;
        }
        let state = self.inner.state.lock();
        matches!(state.holders.get(&self.key), Some(h) if h.token == self.token)
    }

    fn leak(&mut self) {
        // The holder entry stays: contenders see a stuck holder and time
        // out, exactly like a crashed thread.
        self.released = true;
    }
}

impl super::AdHocLock for WatchdogLock {
    fn lock(&self, key: &str) -> Result<Guard, LockError> {
        let me = std::thread::current().id();
        let deadline = Instant::now() + self.config.timeout;
        let mut state = self.inner.state.lock();
        loop {
            if !state.holders.contains_key(key) {
                let token = self.inner.next_token.fetch_add(1, Ordering::Relaxed);
                state
                    .holders
                    .insert(key.to_string(), Holder { token, thread: me });
                return Ok(Guard::new(Box::new(WatchdogGuard {
                    inner: Arc::clone(&self.inner),
                    key: key.to_string(),
                    token,
                    released: false,
                })));
            }
            // Blocking here would wedge the wait-for graph into a cycle
            // (which includes the self-relock case): abort the requester.
            if state.would_deadlock(me, key) {
                return Err(LockError::Deadlock {
                    key: key.to_string(),
                });
            }
            state.waiting_for.insert(me, key.to_string());
            let timed_out = self
                .inner
                .released
                .wait_until(&mut state, deadline)
                .timed_out();
            state.waiting_for.remove(&me);
            if timed_out {
                return Err(LockError::Timeout {
                    key: key.to_string(),
                });
            }
        }
    }

    fn label(&self) -> &'static str {
        "WD"
    }
}

#[cfg(test)]
mod tests {
    use super::super::{mutual_exclusion_trial, AdHocLock};
    use super::*;
    use std::sync::Barrier;
    use std::time::Duration;

    fn quick() -> WatchdogLock {
        WatchdogLock::new().with_config(AcquireConfig {
            retry_interval: Duration::from_micros(100),
            timeout: Duration::from_secs(10),
        })
    }

    #[test]
    fn provides_mutual_exclusion() {
        let lock = WatchdogLock::new();
        assert_eq!(mutual_exclusion_trial(&lock, "k", 4, 50), 200);
    }

    #[test]
    fn opposite_order_acquisition_is_detected_not_stalled() {
        let lock = Arc::new(quick());
        let barrier = Arc::new(Barrier::new(2));
        let started = Instant::now();
        let outcomes: Vec<bool> = std::thread::scope(|s| {
            [("a", "b"), ("b", "a")]
                .into_iter()
                .map(|(first, second)| {
                    let lock = Arc::clone(&lock);
                    let barrier = Arc::clone(&barrier);
                    s.spawn(move || {
                        let g1 = lock.lock(first).unwrap();
                        barrier.wait(); // both hold their first key
                        match lock.lock(second) {
                            Ok(g2) => {
                                g2.unlock().unwrap();
                                g1.unlock().unwrap();
                                false
                            }
                            Err(LockError::Deadlock { .. }) => {
                                g1.unlock().unwrap();
                                true
                            }
                            Err(e) => panic!("expected deadlock, got {e}"),
                        }
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(
            outcomes.iter().filter(|v| **v).count(),
            1,
            "exactly one victim"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "detected, not timed out"
        );
    }

    #[test]
    fn three_way_cycle_is_detected() {
        let lock = Arc::new(quick());
        let barrier = Arc::new(Barrier::new(3));
        let victims: usize = std::thread::scope(|s| {
            [("a", "b"), ("b", "c"), ("c", "a")]
                .into_iter()
                .map(|(first, second)| {
                    let lock = Arc::clone(&lock);
                    let barrier = Arc::clone(&barrier);
                    s.spawn(move || {
                        let g1 = lock.lock(first).unwrap();
                        barrier.wait();
                        let victim = match lock.lock(second) {
                            Ok(g2) => {
                                g2.unlock().unwrap();
                                false
                            }
                            Err(LockError::Deadlock { .. }) => true,
                            Err(e) => panic!("unexpected: {e}"),
                        };
                        g1.unlock().unwrap();
                        victim as usize
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert!(victims >= 1, "at least one victim breaks the cycle");
        assert!(victims <= 2, "not everyone needs to die");
    }

    #[test]
    fn consistent_ordering_never_false_positives() {
        // Finding 5's discipline: everyone takes a before b. No deadlock
        // errors may surface.
        let lock = Arc::new(quick());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                s.spawn(move || {
                    for _ in 0..25 {
                        let g1 = lock.lock("a").unwrap();
                        let g2 = lock.lock("b").unwrap();
                        g2.unlock().unwrap();
                        g1.unlock().unwrap();
                    }
                });
            }
        });
    }

    #[test]
    fn self_relock_is_an_immediate_deadlock() {
        let lock = quick();
        let g = lock.lock("k").unwrap();
        assert!(matches!(lock.lock("k"), Err(LockError::Deadlock { .. })));
        g.unlock().unwrap();
        lock.lock("k").unwrap().unlock().unwrap();
    }

    #[test]
    fn leaked_guard_times_out_contenders_without_deadlock_report() {
        let lock = WatchdogLock::new().with_config(AcquireConfig {
            retry_interval: Duration::from_micros(100),
            timeout: Duration::from_millis(30),
        });
        // Leak from another thread: the "crashed" holder is gone, so the
        // watchdog sees a stuck holder (no cycle), and contenders time out.
        let lock = Arc::new(lock);
        {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || lock.lock("k").unwrap().leak())
                .join()
                .unwrap();
        }
        assert!(matches!(lock.lock("k"), Err(LockError::Timeout { .. })));
    }

    #[test]
    fn unlock_notifies_waiters() {
        let lock = Arc::new(quick());
        let g = lock.lock("k").unwrap();
        let waiter = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || lock.lock("k").unwrap().unlock().unwrap())
        };
        std::thread::sleep(Duration::from_millis(5));
        g.unlock().unwrap();
        waiter.join().unwrap();
    }
}
