//! Umbrella crate re-exporting the whole ad-hoc-transactions workspace.
//!
//! This crate exists so that the repository-level examples and integration
//! tests can use every subsystem through one dependency. Library users
//! should normally depend on the individual crates instead:
//!
//! * [`adhoc_sim`] — clocks, latency model, seeded RNG, statistics helpers.
//! * [`adhoc_kv`] — the Redis-like key–value substrate.
//! * [`adhoc_storage`] — the in-memory RDBMS substrate (MySQL-like and
//!   PostgreSQL-like engine profiles).
//! * [`adhoc_orm`] — the Active-Record-style ORM substrate.
//! * [`adhoc_core`] — the ad hoc transaction toolkit: taxonomy, the seven
//!   lock implementations, validation strategies, the optimistic transaction
//!   framework, and the coordination-hints proxy.
//! * [`adhoc_apps`] — modeled workloads for the eight studied applications.
//! * [`adhoc_study`] — the 91-case study corpus and paper-table generators.
//! * [`adhoc_service`] — the web-tier front door over the eight apps:
//!   endpoints, session pools, rate limiting, admission and shedding.
//! * [`adhoc_traffic`] — the deterministic open-loop traffic harness and
//!   its SLO/goodput ablation.

#![warn(missing_docs)]

pub use adhoc_apps as apps;
pub use adhoc_core as core;
pub use adhoc_kv as kv;
pub use adhoc_orm as orm;
pub use adhoc_service as service;
pub use adhoc_sim as sim;
pub use adhoc_storage as storage;
pub use adhoc_study as study;
pub use adhoc_traffic as traffic;
