//! The ORM runtime: finders, `save()` with generated cascades, transaction
//! blocks, and the MiniSql bypass.

use crate::entity::{Obj, Registry, Validation};
use crate::error::OrmError;
use crate::Result;
use adhoc_storage::{Database, Footprint, IsolationLevel, Predicate, Row, Transaction, Value};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// The ORM handle. Cheap to clone; clones share the registry and the
/// `updated_at` tick source.
#[derive(Clone)]
pub struct Orm {
    db: Database,
    registry: Arc<Registry>,
    /// Monotonic tick used for `updated_at` (a stand-in for `now()`).
    ticker: Arc<AtomicI64>,
}

impl Orm {
    /// An ORM over `db` with the given entity registry.
    pub fn new(db: Database, registry: Registry) -> Self {
        Self {
            db,
            registry: Arc::new(registry),
            ticker: Arc::new(AtomicI64::new(1)),
        }
    }

    /// The underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The entity registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Next `updated_at` tick.
    pub fn now_tick(&self) -> i64 {
        self.ticker.fetch_add(1, Ordering::SeqCst)
    }

    /// Run a block inside one database transaction at the engine's default
    /// isolation level (Active Record's `transaction do … end`).
    pub fn transaction<R>(&self, f: impl FnOnce(&mut OrmTxn<'_>) -> Result<R>) -> Result<R> {
        self.transaction_with(self.db.default_isolation(), f)
    }

    /// Transaction block at an explicit isolation level.
    pub fn transaction_with<R>(
        &self,
        iso: IsolationLevel,
        f: impl FnOnce(&mut OrmTxn<'_>) -> Result<R>,
    ) -> Result<R> {
        let txn = self.db.begin_with(iso);
        let mut ctx = OrmTxn { orm: self, txn };
        match f(&mut ctx) {
            Ok(r) => {
                ctx.txn.commit()?;
                Ok(r)
            }
            Err(e) => {
                ctx.txn.abort();
                Err(e)
            }
        }
    }

    /// Autocommit find.
    pub fn find(&self, entity: &str, id: i64) -> Result<Option<Obj>> {
        self.transaction(|t| t.find(entity, id))
    }

    /// Autocommit find that must succeed.
    pub fn find_required(&self, entity: &str, id: i64) -> Result<Obj> {
        self.transaction(|t| t.find_required(entity, id))
    }

    /// Autocommit save (each `ORM.save(obj)` in the paper's listings is one
    /// generated transaction, like the §3.1.1 example's lines 7–14).
    pub fn save(&self, obj: &mut Obj) -> Result<()> {
        self.transaction(|t| t.save(obj))
    }

    /// Autocommit create.
    pub fn create(&self, entity: &str, pairs: &[(&str, Value)]) -> Result<Obj> {
        self.transaction(|t| t.create(entity, pairs))
    }

    /// Autocommit delete.
    pub fn delete(&self, entity: &str, id: i64) -> Result<bool> {
        self.transaction(|t| t.delete(entity, id))
    }

    /// The MiniSql-style side channel: statements issued through this
    /// handle run in their own transactions even when called inside a
    /// [`transaction`](Self::transaction) block — the ORM "cannot intercept
    /// and issue \[them\] as part of the database transaction" (§4.1.2).
    pub fn mini_sql(&self) -> MiniSql {
        MiniSql {
            db: self.db.clone(),
        }
    }
}

impl std::fmt::Debug for Orm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Orm")
            .field("entities", &self.registry.names())
            .finish_non_exhaustive()
    }
}

/// An ORM context bound to one open database transaction.
pub struct OrmTxn<'a> {
    orm: &'a Orm,
    txn: Transaction,
}

impl OrmTxn<'_> {
    /// Escape hatch to the raw transaction, for the hand-written SQL the
    /// studied applications mix with ORM calls.
    pub fn raw(&mut self) -> &mut Transaction {
        &mut self.txn
    }

    /// The conflict footprint accumulated so far by this transaction block:
    /// the row-state shards its reads and buffered writes (including the
    /// statements `save()` generates — touch cascades, `lock_version`
    /// bumps) touch. Commit will lock exactly these shards, so two blocks
    /// with [disjoint](Footprint::is_disjoint) footprints never contend on
    /// engine state.
    pub fn footprint(&self) -> Footprint {
        self.txn.footprint()
    }

    fn wrap(&self, entity: &str, id: i64, row: Row) -> Result<Obj> {
        let schema = self.orm.db.schema(entity)?;
        Ok(Obj::from_row(entity, schema, id, row))
    }

    /// `Entity.find(id)` — returns `None` when missing.
    pub fn find(&mut self, entity: &str, id: i64) -> Result<Option<Obj>> {
        self.orm.registry.get(entity)?;
        match self.txn.get(entity, id)? {
            Some(row) => Ok(Some(self.wrap(entity, id, row)?)),
            None => Ok(None),
        }
    }

    /// `Entity.find(id)` raising on absence.
    pub fn find_required(&mut self, entity: &str, id: i64) -> Result<Obj> {
        self.find(entity, id)?
            .ok_or_else(|| OrmError::RecordNotFound {
                entity: entity.to_string(),
                id,
            })
    }

    /// `Entity.where(pred)`.
    pub fn find_by(&mut self, entity: &str, pred: &Predicate) -> Result<Vec<Obj>> {
        self.orm.registry.get(entity)?;
        let rows = self.txn.scan(entity, pred)?;
        rows.into_iter()
            .map(|(id, row)| self.wrap(entity, id, row))
            .collect()
    }

    /// `Entity.lock.find(id)` — `SELECT … FOR UPDATE`.
    pub fn find_for_update(&mut self, entity: &str, id: i64) -> Result<Option<Obj>> {
        self.orm.registry.get(entity)?;
        match self.txn.get_for_update(entity, id)? {
            Some(row) => Ok(Some(self.wrap(entity, id, row)?)),
            None => Ok(None),
        }
    }

    /// `Entity.where(pred).lock` — locking scan.
    pub fn find_by_for_update(&mut self, entity: &str, pred: &Predicate) -> Result<Vec<Obj>> {
        self.orm.registry.get(entity)?;
        let rows = self.txn.select_for_update(entity, pred)?;
        rows.into_iter()
            .map(|(id, row)| self.wrap(entity, id, row))
            .collect()
    }

    /// Run the entity's `validates` rules against current database state.
    fn run_validations(
        &mut self,
        entity: &str,
        obj_id: Option<i64>,
        row_pairs: &[(&str, Value)],
    ) -> Result<()> {
        let def = self.orm.registry.get(entity)?.clone();
        let value_of = |col: &str| -> Option<&Value> {
            row_pairs.iter().find(|(n, _)| *n == col).map(|(_, v)| v)
        };
        for v in &def.validations {
            match v {
                Validation::Presence { column } => {
                    let ok = match value_of(column) {
                        Some(Value::Null) | None => false,
                        Some(Value::Str(s)) => !s.is_empty(),
                        Some(_) => true,
                    };
                    if !ok {
                        return Err(OrmError::ValidationFailed {
                            entity: entity.to_string(),
                            column: column.clone(),
                            rule: "presence",
                        });
                    }
                }
                Validation::NonNegative { column } => {
                    if let Some(Value::Int(n)) = value_of(column) {
                        if *n < 0 {
                            return Err(OrmError::ValidationFailed {
                                entity: entity.to_string(),
                                column: column.clone(),
                                rule: "non_negative",
                            });
                        }
                    }
                }
                Validation::Uniqueness { column } => {
                    // Feral check: SELECT then decide. Racy by construction
                    // (two concurrent writers both see "no duplicate").
                    if let Some(value) = value_of(column) {
                        if value.is_null() {
                            continue;
                        }
                        let existing = self
                            .txn
                            .scan(entity, &Predicate::Eq(column.clone(), value.clone()))?;
                        if existing.iter().any(|(id, _)| Some(*id) != obj_id) {
                            return Err(OrmError::ValidationFailed {
                                entity: entity.to_string(),
                                column: column.clone(),
                                rule: "uniqueness",
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Touch cascades generated by `save` (§3.1.1's hidden statements).
    fn run_touches(&mut self, entity: &str, obj: &Obj) -> Result<()> {
        let def = self.orm.registry.get(entity)?.clone();
        for (fk, parent) in &def.touches {
            let parent_id = obj.get_int(fk)?;
            let tick = self.orm.now_tick();
            self.txn
                .update(parent, parent_id, &[("updated_at", tick.into())])?;
        }
        for via in &def.touches_via {
            let seed = obj.get_int(&via.fk_column)?;
            let links = self
                .txn
                .scan(&via.join_table, &Predicate::eq(&via.join_left, seed))?;
            let join_schema = self.orm.db.schema(&via.join_table)?;
            for (_, link) in links {
                let parent_id = link.get_int(&join_schema, &via.join_right)?;
                let tick = self.orm.now_tick();
                self.txn
                    .update(&via.parent_table, parent_id, &[("updated_at", tick.into())])?;
            }
        }
        Ok(())
    }

    /// `obj.save!`: validations, the UPDATE itself (optimistically locked
    /// when configured), then the generated touch cascades.
    pub fn save(&mut self, obj: &mut Obj) -> Result<()> {
        let entity = obj.entity.clone();
        let def = self.orm.registry.get(&entity)?.clone();

        let all_pairs: Vec<(String, Value)> = obj
            .schema()
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), obj.row().at(i).clone()))
            .collect();
        let pair_refs: Vec<(&str, Value)> = all_pairs
            .iter()
            .map(|(n, v)| (n.as_str(), v.clone()))
            .collect();
        self.run_validations(&entity, Some(obj.id), &pair_refs)?;

        let mut pairs: Vec<(String, Value)> = obj
            .dirty_columns()
            .map(|c| (c.to_string(), obj.get(c).unwrap().clone()))
            .collect::<Vec<_>>();
        if def.timestamps {
            pairs.push(("updated_at".to_string(), self.orm.now_tick().into()));
        }

        if def.optimistic_lock {
            let loaded = obj.loaded_version.ok_or_else(|| OrmError::StaleObject {
                entity: entity.clone(),
                id: obj.id,
            })?;
            pairs.push(("lock_version".to_string(), (loaded + 1).into()));
            let pred = Predicate::And(vec![
                Predicate::eq("id", obj.id),
                Predicate::eq("lock_version", loaded),
            ]);
            let pair_refs: Vec<(&str, Value)> =
                pairs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
            let affected = self.txn.update_where(&entity, &pred, &pair_refs)?;
            if affected == 0 {
                return Err(OrmError::StaleObject { entity, id: obj.id });
            }
            obj.bump_loaded_version();
        } else if !pairs.is_empty() {
            let pair_refs: Vec<(&str, Value)> =
                pairs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
            self.txn.update(&entity, obj.id, &pair_refs)?;
        }

        self.run_touches(&entity, obj)?;
        obj.clear_dirty();
        Ok(())
    }

    /// `Entity.create!(…)`.
    pub fn create(&mut self, entity: &str, pairs: &[(&str, Value)]) -> Result<Obj> {
        let def = self.orm.registry.get(entity)?.clone();
        let mut pairs: Vec<(String, Value)> = pairs
            .iter()
            .map(|(n, v)| (n.to_string(), v.clone()))
            .collect();
        if def.timestamps && !pairs.iter().any(|(n, _)| n == "updated_at") {
            pairs.push(("updated_at".to_string(), self.orm.now_tick().into()));
        }
        if def.optimistic_lock && !pairs.iter().any(|(n, _)| n == "lock_version") {
            pairs.push(("lock_version".to_string(), 0.into()));
        }
        let pair_refs: Vec<(&str, Value)> =
            pairs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
        self.run_validations(entity, None, &pair_refs)?;
        let id = self.txn.insert(entity, &pair_refs)?;
        let obj = self
            .find(entity, id)?
            .expect("just inserted row must be visible to this transaction");
        self.run_touches(entity, &obj)?;
        Ok(obj)
    }

    /// `obj.destroy`.
    pub fn delete(&mut self, entity: &str, id: i64) -> Result<bool> {
        self.orm.registry.get(entity)?;
        Ok(self.txn.delete(entity, id)?)
    }

    /// Reload an object from the database (discarding local changes).
    pub fn reload(&mut self, obj: &Obj) -> Result<Obj> {
        self.find_required(&obj.entity, obj.id)
    }
}

/// The out-of-band query interface (Discourse's MiniSql, §4.1.2): every
/// call runs in its own autocommit transaction, never the ambient one.
#[derive(Clone)]
pub struct MiniSql {
    db: Database,
}

impl MiniSql {
    /// `UPDATE … WHERE pred` in an independent transaction; returns the
    /// affected-row count.
    pub fn update_where(
        &self,
        table: &str,
        pred: &Predicate,
        pairs: &[(&str, Value)],
    ) -> Result<usize> {
        Ok(self.db.run(self.db.default_isolation(), |t| {
            t.update_where(table, pred, pairs)
        })?)
    }

    /// `SELECT … WHERE pred` in an independent transaction.
    pub fn query(&self, table: &str, pred: &Predicate) -> Result<Vec<(i64, Row)>> {
        Ok(self
            .db
            .run(self.db.default_isolation(), |t| t.scan(table, pred))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{EntityDef, TouchVia, Validation};
    use adhoc_storage::{Column, ColumnType, EngineProfile, Schema};

    /// The §3.1.1 Spree schema: SKUs → Products → (join) → Categories.
    fn spree_fixture() -> Orm {
        let db = Database::in_memory(EngineProfile::MySqlLike);
        db.create_table(
            Schema::new(
                "products",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("updated_at", ColumnType::Int),
                ],
                "id",
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            Schema::new(
                "categories",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("updated_at", ColumnType::Int),
                ],
                "id",
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            Schema::new(
                "product_categories",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("product_id", ColumnType::Int),
                    Column::new("category_id", ColumnType::Int),
                ],
                "id",
            )
            .unwrap()
            .with_index("product_id")
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            Schema::new(
                "skus",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("product_id", ColumnType::Int),
                    Column::new("quantity", ColumnType::Int),
                ],
                "id",
            )
            .unwrap(),
        )
        .unwrap();
        let registry = Registry::new()
            .register(EntityDef::new("products"))
            .register(EntityDef::new("categories"))
            .register(EntityDef::new("product_categories"))
            .register(
                EntityDef::new("skus")
                    .touch("product_id", "products")
                    .touch_via(TouchVia {
                        fk_column: "product_id".into(),
                        join_table: "product_categories".into(),
                        join_left: "product_id".into(),
                        join_right: "category_id".into(),
                        parent_table: "categories".into(),
                    })
                    .validate(Validation::NonNegative {
                        column: "quantity".into(),
                    }),
            );
        let orm = Orm::new(db, registry);
        orm.transaction(|t| {
            t.create("products", &[("id", 1.into()), ("updated_at", 0.into())])?;
            t.create("categories", &[("id", 10.into()), ("updated_at", 0.into())])?;
            t.create("categories", &[("id", 11.into()), ("updated_at", 0.into())])?;
            t.create(
                "product_categories",
                &[("product_id", 1.into()), ("category_id", 10.into())],
            )?;
            t.create(
                "product_categories",
                &[("product_id", 1.into()), ("category_id", 11.into())],
            )?;
            t.create(
                "skus",
                &[
                    ("id", 5.into()),
                    ("product_id", 1.into()),
                    ("quantity", 10.into()),
                ],
            )?;
            Ok(())
        })
        .unwrap();
        orm
    }

    #[test]
    fn save_generates_the_spree_cascade() {
        let orm = spree_fixture();
        let before = orm.db().stats().statements;
        let mut sku = orm.find_required("skus", 5).unwrap();
        sku.set("quantity", 8).unwrap();
        orm.save(&mut sku).unwrap();
        // The cascade touched the product and both categories.
        let product = orm.find_required("products", 1).unwrap();
        assert!(product.get_int("updated_at").unwrap() > 0);
        for cid in [10, 11] {
            let cat = orm.find_required("categories", cid).unwrap();
            assert!(
                cat.get_int("updated_at").unwrap() > 0,
                "category {cid} must be touched"
            );
        }
        // And it cost several statements the developer never wrote
        // (update sku + touch product + join scan + 2 category touches).
        let issued = orm.db().stats().statements - before;
        assert!(
            issued >= 5,
            "expected the hidden cascade, got {issued} stmts"
        );
        assert_eq!(
            orm.find_required("skus", 5)
                .unwrap()
                .get_int("quantity")
                .unwrap(),
            8
        );
    }

    #[test]
    fn save_footprint_covers_the_generated_cascade() {
        let orm = spree_fixture();
        let (fp_cascade, fp_product) = orm
            .transaction(|t| {
                let before = t.footprint();
                assert!(before.writes.is_empty(), "fresh block has no footprint");
                let mut sku = t.find_required("skus", 5)?;
                sku.set("quantity", 9)?;
                t.save(&mut sku)?;
                let fp_cascade = t.footprint();
                Ok((fp_cascade, ()))
            })
            .map(|(fp, ())| {
                let fp_product = orm
                    .transaction(|t| {
                        let mut p = t.find_required("products", 1)?;
                        p.set("updated_at", 99)?;
                        t.save(&mut p)?;
                        Ok(t.footprint())
                    })
                    .unwrap();
                (fp, fp_product)
            })
            .unwrap();
        // save(sku) wrote the sku, the product touch, and both category
        // touches: strictly more shards than a bare product save, and the
        // product's shard is inside the cascade footprint.
        assert!(fp_cascade.writes.len() >= 2, "{fp_cascade:?}");
        assert!(
            !fp_cascade.is_disjoint(&fp_product),
            "cascade must cover the touched product: {fp_cascade:?} vs {fp_product:?}"
        );
    }

    #[test]
    fn validations_run_on_save_and_create() {
        let orm = spree_fixture();
        let mut sku = orm.find_required("skus", 5).unwrap();
        sku.set("quantity", -1).unwrap();
        let err = orm.save(&mut sku).unwrap_err();
        assert!(matches!(
            err,
            OrmError::ValidationFailed {
                rule: "non_negative",
                ..
            }
        ));
        // Database state unchanged (transaction rolled back).
        assert_eq!(
            orm.find_required("skus", 5)
                .unwrap()
                .get_int("quantity")
                .unwrap(),
            10
        );
    }

    fn posts_fixture(optimistic: bool) -> Orm {
        let db = Database::in_memory(EngineProfile::PostgresLike);
        db.create_table(
            Schema::new(
                "posts",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("content", ColumnType::Str),
                    Column::new("lock_version", ColumnType::Int),
                ],
                "id",
            )
            .unwrap(),
        )
        .unwrap();
        let mut def = EntityDef::new("posts");
        if optimistic {
            def = def.with_lock_version();
        }
        let orm = Orm::new(db, Registry::new().register(def));
        orm.transaction(|t| {
            t.create(
                "posts",
                &[
                    ("id", 1.into()),
                    ("content", "v0".into()),
                    ("lock_version", 0.into()),
                ],
            )
            .map(|_| ())
        })
        .unwrap();
        orm
    }

    #[test]
    fn lock_version_detects_stale_saves() {
        let orm = posts_fixture(true);
        let mut a = orm.find_required("posts", 1).unwrap();
        let mut b = orm.find_required("posts", 1).unwrap();
        a.set("content", "from-a").unwrap();
        orm.save(&mut a).unwrap();
        b.set("content", "from-b").unwrap();
        let err = orm.save(&mut b).unwrap_err();
        assert!(matches!(err, OrmError::StaleObject { .. }));
        assert_eq!(
            orm.find_required("posts", 1)
                .unwrap()
                .get_str("content")
                .unwrap(),
            "from-a"
        );
        // The winner can keep saving (its loaded version advanced).
        a.set("content", "from-a-2").unwrap();
        orm.save(&mut a).unwrap();
        assert_eq!(
            orm.find_required("posts", 1)
                .unwrap()
                .get_str("content")
                .unwrap(),
            "from-a-2"
        );
    }

    #[test]
    fn without_lock_version_last_writer_wins() {
        let orm = posts_fixture(false);
        let mut a = orm.find_required("posts", 1).unwrap();
        let mut b = orm.find_required("posts", 1).unwrap();
        a.set("content", "from-a").unwrap();
        orm.save(&mut a).unwrap();
        b.set("content", "from-b").unwrap();
        orm.save(&mut b).unwrap(); // silently overwrites
        assert_eq!(
            orm.find_required("posts", 1)
                .unwrap()
                .get_str("content")
                .unwrap(),
            "from-b"
        );
    }

    #[test]
    fn feral_uniqueness_validation_is_racy() {
        // Uniqueness via `validates` only (no DB unique index): two
        // concurrent creates both pass the SELECT check — Bailis et al.'s
        // core observation, reproduced.
        let db = Database::in_memory(EngineProfile::PostgresLike);
        db.create_table(
            Schema::new(
                "users",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("email", ColumnType::Str),
                ],
                "id",
            )
            .unwrap()
            .with_index("email")
            .unwrap(),
        )
        .unwrap();
        let orm = Orm::new(
            db,
            Registry::new().register(EntityDef::new("users").validate(Validation::Uniqueness {
                column: "email".into(),
            })),
        );
        // Sequentially the validation works…
        orm.create("users", &[("email", "a@x.com".into())]).unwrap();
        assert!(matches!(
            orm.create("users", &[("email", "a@x.com".into())]),
            Err(OrmError::ValidationFailed {
                rule: "uniqueness",
                ..
            })
        ));
        // …but two racing creates can both succeed.
        let successes: usize = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let orm = orm.clone();
                    s.spawn(move || {
                        orm.create("users", &[("email", "race@x.com".into())])
                            .is_ok() as usize
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert!(successes >= 1);
        let dupes = orm
            .transaction(|t| t.find_by("users", &Predicate::eq("email", "race@x.com")))
            .unwrap()
            .len();
        assert_eq!(dupes, successes, "every successful create left a row");
        // The race is real: with 8 threads we virtually always get > 1.
        // (Not asserted to keep the test deterministic.)
    }

    #[test]
    fn mini_sql_bypasses_the_ambient_transaction() {
        let orm = posts_fixture(false);
        let mini = orm.mini_sql();
        // Inside a transaction block, a MiniSql write commits immediately —
        // even when the block later rolls back.
        let result: Result<()> = orm.transaction(|_t| {
            mini.update_where(
                "posts",
                &Predicate::eq("id", 1),
                &[("content", "leaked".into())],
            )?;
            Err(OrmError::RecordNotFound {
                entity: "posts".into(),
                id: 999,
            }) // force rollback of the ambient transaction
        });
        assert!(result.is_err());
        assert_eq!(
            orm.find_required("posts", 1)
                .unwrap()
                .get_str("content")
                .unwrap(),
            "leaked",
            "MiniSql write must survive the ambient rollback"
        );
    }

    #[test]
    fn transaction_block_is_atomic() {
        let orm = posts_fixture(false);
        let result: Result<()> = orm.transaction(|t| {
            let mut p = t.find_required("posts", 1)?;
            p.set("content", "inside")?;
            t.save(&mut p)?;
            Err(OrmError::RecordNotFound {
                entity: "posts".into(),
                id: 999,
            })
        });
        assert!(result.is_err());
        assert_eq!(
            orm.find_required("posts", 1)
                .unwrap()
                .get_str("content")
                .unwrap(),
            "v0"
        );
    }

    #[test]
    fn find_variants() {
        let orm = posts_fixture(false);
        assert!(orm.find("posts", 1).unwrap().is_some());
        assert!(orm.find("posts", 99).unwrap().is_none());
        assert!(matches!(
            orm.find_required("posts", 99),
            Err(OrmError::RecordNotFound { .. })
        ));
        assert!(matches!(
            orm.find("ghosts", 1),
            Err(OrmError::UnknownEntity { .. })
        ));
        orm.transaction(|t| {
            let got = t.find_by("posts", &Predicate::eq("content", "v0"))?;
            assert_eq!(got.len(), 1);
            let locked = t.find_for_update("posts", 1)?;
            assert!(locked.is_some());
            let locked_scan = t.find_by_for_update("posts", &Predicate::All)?;
            assert_eq!(locked_scan.len(), 1);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn delete_and_reload() {
        let orm = posts_fixture(false);
        let obj = orm.find_required("posts", 1).unwrap();
        orm.transaction(|t| {
            let reloaded = t.reload(&obj)?;
            assert_eq!(reloaded.get_str("content")?, "v0");
            Ok(())
        })
        .unwrap();
        assert!(orm.delete("posts", 1).unwrap());
        assert!(!orm.delete("posts", 1).unwrap());
        assert!(orm.find("posts", 1).unwrap().is_none());
    }

    #[test]
    fn create_presence_validation() {
        let db = Database::in_memory(EngineProfile::PostgresLike);
        db.create_table(
            Schema::new(
                "topics",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("title", ColumnType::Str).nullable(),
                ],
                "id",
            )
            .unwrap(),
        )
        .unwrap();
        let orm = Orm::new(
            db,
            Registry::new().register(EntityDef::new("topics").validate(Validation::Presence {
                column: "title".into(),
            })),
        );
        assert!(matches!(
            orm.create("topics", &[("title", "".into())]),
            Err(OrmError::ValidationFailed {
                rule: "presence",
                ..
            })
        ));
        assert!(matches!(
            orm.create("topics", &[]),
            Err(OrmError::ValidationFailed {
                rule: "presence",
                ..
            })
        ));
        orm.create("topics", &[("title", "ok".into())]).unwrap();
    }
}
