//! The paper's empirical study as queryable data.
//!
//! The dataset behind "Ad Hoc Transactions in Web Applications" is a
//! human-curated catalog of 91 ad hoc transactions across 8 applications.
//! This crate encodes that catalog ([`corpus_data::CASES`]), the application
//! metadata of Table 2 ([`corpus::APPLICATIONS`]), the related-work
//! comparison of Table 1 ([`related`]), and the coordination-hints survey of
//! Table 7 ([`hints`]) — and derives every table and numbered finding from
//! them:
//!
//! * [`tables`] — Tables 2, 3, 4, 5a and 5b as structured values.
//! * [`findings`] — Findings 1–8 as computed statistics.
//! * [`report`] — plain-text renderings in the paper's layout (used by the
//!   `paper-eval` binary).
//! * [`playbook`] — flagship cases mapped to the executable artifact that
//!   demonstrates them in this workspace.
//!
//! The paper publishes aggregates; per-case attributes here are a consistent
//! reconstruction (see `corpus_data`), and this crate's tests assert that
//! every published aggregate matches exactly.

#![warn(missing_docs)]

pub mod case;
pub mod confluence;
pub mod corpus;
pub mod corpus_data;
pub mod extension;
pub mod findings;
pub mod hints;
pub mod playbook;
pub mod related;
pub mod report;
pub mod tables;

pub use case::{App, Case};
pub use corpus_data::CASES;
pub use extension::{render_extension, ExtensionCase, EXTENSION_CASES};
