//! E-commerce check-out under contention: ad hoc transactions vs database
//! transactions (the §3.1.1 / §5.2 story).
//!
//! Runs the Spree stock-decrement flow — including the hidden ORM touch
//! cascade onto shared Categories rows — and the Broadleaf RMW check-out,
//! comparing the original ad hoc coordination against the Serializable
//! database-transaction rewrite on a MySQL-like engine. Reports committed
//! requests, deadlocks and serialization failures for each.
//!
//! Run with `cargo run --release --example ecommerce_checkout`.

use adhoc_transactions::apps::{broadleaf, spree, Mode};
use adhoc_transactions::core::locks::MemLock;
use adhoc_transactions::storage::{Database, EngineProfile};
use std::sync::Arc;
use std::time::Instant;

const THREADS: usize = 6;
const OPS_PER_THREAD: i64 = 50;

fn run_spree(mode: Mode) {
    let db = Database::in_memory(EngineProfile::MySqlLike);
    let orm = spree::setup(&db).expect("schema");
    let app = Arc::new(spree::Spree::new(orm, Arc::new(MemLock::new()), mode));
    // One product in two categories: every check-out's cascade touches the
    // same Categories rows — §3.1.1's deadlock recipe for Serializable.
    app.seed_catalog(1, 1, &[10, 11], 1_000_000).expect("seed");
    app.seed_order(1).expect("seed");

    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let app = Arc::clone(&app);
            s.spawn(move || {
                for _ in 0..OPS_PER_THREAD {
                    assert!(app.decrement_stock(1, 1, 1).expect("decrement"));
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let stats = app.orm().db().stats();
    let total = THREADS as i64 * OPS_PER_THREAD;
    let quantity = app.sku_quantity(1).expect("qty");
    println!(
        "  Spree stock-decrement [{}]: {total} ops in {:?} | stock exact: {} | deadlocks {} | serialization failures {}",
        mode.label(),
        elapsed,
        quantity == 1_000_000 - total,
        stats.lock_stats.deadlocks,
        stats.serialization_failures,
    );
}

fn run_broadleaf(mode: Mode) {
    let db = Database::in_memory(EngineProfile::MySqlLike);
    let orm = broadleaf::setup(&db).expect("schema");
    let app = Arc::new(broadleaf::Broadleaf::new(
        orm,
        Arc::new(MemLock::new()),
        mode,
    ));
    app.seed_sku(1, 1_000_000).expect("seed");

    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let app = Arc::clone(&app);
            s.spawn(move || {
                for _ in 0..OPS_PER_THREAD {
                    assert!(app.check_out(1, 1).expect("checkout"));
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let stats = app.orm().db().stats();
    let total = THREADS as i64 * OPS_PER_THREAD;
    println!(
        "  Broadleaf check-out [{}]: {total} ops in {:?} | conserved: {} | deadlocks {} ",
        mode.label(),
        elapsed,
        app.sku_conserved(1, 1_000_000).expect("check"),
        stats.lock_stats.deadlocks,
    );
}

fn main() {
    println!(
        "Contended check-out, {THREADS} threads x {OPS_PER_THREAD} requests, MySQL-like engine.\n"
    );
    println!("Broadleaf RMW check-out (Table 6 RMW workload):");
    run_broadleaf(Mode::AdHoc);
    run_broadleaf(Mode::DatabaseTxn);
    println!();
    println!("Spree stock decrement with the hidden ORM cascade (§3.1.1):");
    run_spree(Mode::AdHoc);
    run_spree(Mode::DatabaseTxn);
    println!();
    println!(
        "Both coordination styles preserve stock; the database-transaction\n\
         variants pay for it with engine-resolved conflicts (deadlock victims\n\
         and serialization failures) that the ad hoc locks avoid by design."
    );
}
