//! An Active-Record-flavoured ORM over [`adhoc_storage`].
//!
//! The studied applications issue almost all database operations through
//! ORM frameworks (§2.1 of the paper), and several of the paper's findings
//! are specifically about ORM behaviour:
//!
//! * `save()` transparently generates statements the developer never wrote —
//!   the §3.1.1 Spree listing where saving a SKU also touches `updated_at`
//!   on the product and, through a many-to-many join, on every category.
//!   [`EntityDef::touch`] and [`EntityDef::touch_via`] reproduce this.
//! * *Invariant validation* APIs (`validates` in Active Record) check
//!   invariants by examining database state at write time — the "feral
//!   concurrency control" of Bailis et al., racy without a database
//!   constraint backing them. [`Validation`] reproduces this, including the
//!   race.
//! * *ORM-assisted optimistic locking*: a `lock_version` column makes every
//!   update a `WHERE id = ? AND lock_version = ?` statement, giving atomic
//!   validate-and-commit (§3.2.2, §4.1.2). [`EntityDef::with_lock_version`]
//!   reproduces it, surfacing conflicts as [`OrmError::StaleObject`].
//! * The MiniSql bypass: queries issued through an interface the ORM does
//!   not intercept run *outside* the ambient transaction block — the
//!   Discourse reviewables bug (§4.1.2). [`Orm::mini_sql`] reproduces it.

//!
//! # Example
//!
//! ```
//! use adhoc_orm::{EntityDef, Orm, Registry};
//! use adhoc_storage::{Column, ColumnType, Database, EngineProfile, Schema};
//!
//! let db = Database::in_memory(EngineProfile::PostgresLike);
//! db.create_table(Schema::new(
//!     "posts",
//!     vec![
//!         Column::new("id", ColumnType::Int),
//!         Column::new("content", ColumnType::Str),
//!         Column::new("lock_version", ColumnType::Int),
//!     ],
//!     "id",
//! ).unwrap()).unwrap();
//! let orm = Orm::new(db, Registry::new().register(EntityDef::new("posts").with_lock_version()));
//!
//! let mut post = orm.create("posts", &[("content", "hello".into())])?;
//! post.set("content", "edited")?;
//! orm.save(&mut post)?; // optimistic: WHERE id = ? AND lock_version = ?
//! assert_eq!(orm.find_required("posts", post.id)?.get_str("content")?, "edited");
//! # Ok::<(), adhoc_orm::OrmError>(())
//! ```

#![warn(missing_docs)]

pub mod coord;
pub mod entity;
pub mod error;
pub mod occ;
#[allow(clippy::module_inception)]
pub mod orm;

pub use coord::{CoordGuard, CoordSupport, Coordinator};
pub use entity::{EntityDef, Obj, Registry, TouchVia, Validation};
pub use error::OrmError;
pub use occ::{run_occ, ContinuationStore, OccTxn};
pub use orm::{MiniSql, Orm, OrmTxn};

/// Result alias for ORM operations.
pub type Result<T> = std::result::Result<T, OrmError>;
