//! Property tests for the ORM's touch cascade (the §3.1.1 Spree hop:
//! SKUs → Products → join table → Categories): whichever SKU is saved, in
//! whatever order, exactly the right ancestors are touched, timestamps only
//! move forward, and unrelated branches never move.

use adhoc_transactions::orm::{EntityDef, Orm, Registry, TouchVia};
use adhoc_transactions::storage::{Column, ColumnType, Database, EngineProfile, Schema};
use proptest::prelude::*;
use std::collections::HashMap;

const PRODUCTS: i64 = 3;
const CATEGORIES: i64 = 3;
const SKUS: i64 = 6;

/// Two products per category (product p is in categories p%3 and (p+1)%3),
/// two SKUs per product (sku s belongs to product s%3).
fn catalog() -> Orm {
    let db = Database::in_memory(EngineProfile::MySqlLike);
    for table in ["products", "categories"] {
        db.create_table(
            Schema::new(
                table,
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("updated_at", ColumnType::Int),
                ],
                "id",
            )
            .unwrap(),
        )
        .unwrap();
    }
    db.create_table(
        Schema::new(
            "product_categories",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("product_id", ColumnType::Int),
                Column::new("category_id", ColumnType::Int),
            ],
            "id",
        )
        .unwrap()
        .with_index("product_id")
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        Schema::new(
            "skus",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("product_id", ColumnType::Int),
                Column::new("quantity", ColumnType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    let registry = Registry::new()
        .register(EntityDef::new("products"))
        .register(EntityDef::new("categories"))
        .register(EntityDef::new("product_categories"))
        .register(
            EntityDef::new("skus")
                .touch("product_id", "products")
                .touch_via(TouchVia {
                    fk_column: "product_id".into(),
                    join_table: "product_categories".into(),
                    join_left: "product_id".into(),
                    join_right: "category_id".into(),
                    parent_table: "categories".into(),
                }),
        );
    let orm = Orm::new(db, registry);
    orm.transaction(|t| {
        for p in 0..PRODUCTS {
            t.create(
                "products",
                &[("id", (p + 1).into()), ("updated_at", 0.into())],
            )?;
        }
        for c in 0..CATEGORIES {
            t.create(
                "categories",
                &[("id", (c + 1).into()), ("updated_at", 0.into())],
            )?;
        }
        for p in 0..PRODUCTS {
            for c in [p % CATEGORIES, (p + 1) % CATEGORIES] {
                t.create(
                    "product_categories",
                    &[
                        ("product_id", (p + 1).into()),
                        ("category_id", (c + 1).into()),
                    ],
                )?;
            }
        }
        for s in 0..SKUS {
            t.create(
                "skus",
                &[
                    ("id", (s + 1).into()),
                    ("product_id", ((s % PRODUCTS) + 1).into()),
                    ("quantity", 10.into()),
                ],
            )?;
        }
        Ok(())
    })
    .unwrap();
    orm
}

fn product_of(sku: i64) -> i64 {
    ((sku - 1) % PRODUCTS) + 1
}

fn categories_of(product: i64) -> [i64; 2] {
    let p = product - 1;
    [(p % CATEGORIES) + 1, ((p + 1) % CATEGORIES) + 1]
}

fn stamp(orm: &Orm, table: &str, id: i64) -> i64 {
    orm.find_required(table, id)
        .unwrap()
        .get_int("updated_at")
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Saving any sequence of SKUs touches exactly the saved SKU's product
    /// and that product's categories — monotonically — and never anything
    /// else.
    #[test]
    fn touch_cascade_touches_exactly_the_ancestors(
        saves in proptest::collection::vec((1i64..=SKUS, 1i64..20), 1..25),
    ) {
        let orm = catalog();
        // Seeding itself cascades (creates touch too), so baseline from the
        // actual post-seed stamps rather than assuming zero.
        let mut stamps: HashMap<(&str, i64), i64> = HashMap::new();
        for p in 1..=PRODUCTS {
            stamps.insert(("products", p), stamp(&orm, "products", p));
        }
        for c in 1..=CATEGORIES {
            stamps.insert(("categories", c), stamp(&orm, "categories", c));
        }

        for (sku, qty) in &saves {
            let mut obj = orm.find_required("skus", *sku).unwrap();
            obj.set("quantity", *qty).unwrap();
            orm.save(&mut obj).unwrap();

            let product = product_of(*sku);
            let cats = categories_of(product);
            for p in 1..=PRODUCTS {
                let now = stamp(&orm, "products", p);
                let before = stamps[&("products", p)];
                if p == product {
                    prop_assert!(now > before, "product {} not touched", p);
                    stamps.insert(("products", p), now);
                } else {
                    prop_assert_eq!(now, before, "product {} touched spuriously", p);
                }
            }
            for c in 1..=CATEGORIES {
                let now = stamp(&orm, "categories", c);
                let before = stamps[&("categories", c)];
                if cats.contains(&c) {
                    prop_assert!(now > before, "category {} not touched", c);
                    stamps.insert(("categories", c), now);
                } else {
                    prop_assert_eq!(now, before, "category {} touched spuriously", c);
                }
            }
            // The save itself landed.
            prop_assert_eq!(
                orm.find_required("skus", *sku).unwrap().get_int("quantity").unwrap(),
                *qty
            );
        }
    }
}
