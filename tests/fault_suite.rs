//! Tier-1 fault suite: the deterministic fault-injection layer driven
//! end-to-end through the flagship workloads.
//!
//! Covers the paper's §3.4.1 failure-handling strategies — error return,
//! DBT rollback, manual rollback, repair — plus the §3.4.2 ambiguity
//! family: the *reply lost but applied* `SETNX` that double-grants an
//! unfenced lease, the commit that crashes after becoming durable, and a
//! store restart that silently drops volatile leases. Every injected fault
//! is a pure function of `(seed, rule, op index)`, so a replayed run fires
//! bit-for-bit identically.

use adhoc_transactions::apps::{jumpserver, mastodon, spree, Mode};
use adhoc_transactions::core::locks::{self, AcquireConfig, AdHocLock, KvSetNxLock, MemLock};
use adhoc_transactions::core::monitor::{AccessMonitor, Hazard};
use adhoc_transactions::core::LockError;
use adhoc_transactions::kv::{Client, Store};
use adhoc_transactions::sim::{
    FaultKind, FaultPlan, FaultRecord, FaultRule, LatencyModel, VirtualClock,
};
use adhoc_transactions::storage::{restart_from, Database, DbConfig, EngineProfile};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0x5157_4d0d_2022_0612;

fn faulted_client(clock: Arc<VirtualClock>, plan: FaultPlan) -> Client {
    Client::new(Store::new(), clock, LatencyModel::zero()).with_faults(plan)
}

// ---------------------------------------------------------------------------
// Determinism: the acceptance criterion for the whole layer.
// ---------------------------------------------------------------------------

fn drive_probabilistic_workload(seed: u64) -> Vec<FaultRecord> {
    let plan = FaultPlan::new(
        seed,
        vec![
            FaultRule::with_probability(FaultKind::ConnError, 0.25),
            FaultRule::with_probability(FaultKind::LatencySpike, 0.10)
                .delay(Duration::from_millis(5)),
        ],
    );
    let client = faulted_client(Arc::new(VirtualClock::new()), plan.clone());
    for i in 0..64 {
        let key = format!("k{i}");
        let _ = client.set(&key, "v");
        let _ = client.get(&key);
    }
    plan.log()
}

#[test]
fn fixed_seed_replay_is_bit_for_bit_identical() {
    let first = drive_probabilistic_workload(SEED);
    let second = drive_probabilistic_workload(SEED);
    assert!(!first.is_empty(), "the plan must fire at least once");
    assert_eq!(
        first, second,
        "same seed, same workload -> identical fault log (kinds, op indices, delays)"
    );
    let other = drive_probabilistic_workload(SEED ^ 1);
    assert_ne!(
        first, other,
        "a different seed explores a different schedule"
    );
}

// ---------------------------------------------------------------------------
// The ambiguous SETNX: reply lost but applied (§3.4.2).
// ---------------------------------------------------------------------------

/// Both halves of the flagship scenario share this setup: holder A's
/// `SETNX` reply is lost (the entry *was* written), A recovers by reading
/// its own token back, then stalls past its lease while B acquires.
/// Returns `(guard_a, guard_b)` — a double grant.
fn double_granted_lease() -> (
    adhoc_transactions::core::Guard,
    adhoc_transactions::core::Guard,
) {
    let clock = Arc::new(VirtualClock::new());
    let plan = FaultPlan::new(SEED, vec![FaultRule::at_ops(FaultKind::ReplyLost, &[0])]);
    let client = faulted_client(clock.clone(), plan.clone());
    let lock = KvSetNxLock::new(client)
        .with_ttl(Duration::from_millis(100))
        .recover_ambiguous_replies();

    // Op 0: SETNX applies server-side but the reply is lost. Op 1: the
    // recovery GET finds our own token — acquired.
    let guard_a = lock.lock("invite:1").expect("recovered acquisition");
    assert!(guard_a.is_valid());
    assert_eq!(plan.fired(), 1, "exactly the one ReplyLost fired");

    // A stalls mid-critical-section; the lease lapses and B walks in.
    clock.advance(Duration::from_millis(200));
    let guard_b = lock
        .lock("invite:1")
        .expect("fresh acquisition after expiry");
    assert!(guard_b.is_valid());
    (guard_a, guard_b)
}

#[test]
fn ambiguous_setnx_double_grants_the_naive_lease_holder() {
    let (guard_a, guard_b) = double_granted_lease();
    // The naive holder never consults its guard: both A and B run the
    // redeem RMW against a one-use invite.
    let max_redeems = 1;
    let mut redeems = 0;
    redeems += 1; // B, holding a live lease
    redeems += 1; // A, lease long dead, writes anyway (the Mastodon bug)
    assert!(
        redeems > max_redeems,
        "the unfenced double grant must overshoot the invite limit"
    );
    drop(guard_a);
    let _ = guard_b.unlock();
}

#[test]
fn fenced_holder_survives_the_ambiguous_setnx() {
    let (guard_a, guard_b) = double_granted_lease();
    // The fence: check the lease before acting on it.
    let max_redeems = 1;
    let mut redeems = 0;
    if guard_b.is_valid() {
        redeems += 1; // B's lease is live
    }
    if guard_a.is_valid() {
        redeems += 1; // never taken: A sees its lease expired and aborts
    }
    assert_eq!(
        redeems, max_redeems,
        "the is_valid fence keeps the invariant"
    );
    drop(guard_a);
    let _ = guard_b.unlock();
}

// ---------------------------------------------------------------------------
// Ambiguous replies on the lease-*release* path: EXPIRE and DEL (§3.4.2).
// ---------------------------------------------------------------------------

#[test]
fn lost_del_reply_is_not_a_held_lease() {
    let clock = Arc::new(VirtualClock::new());
    // Op 0 is the SETNX acquire; op 1 is the unlock's DEL, whose reply the
    // partition eats *after* the server applied it.
    let plan = FaultPlan::new(
        SEED,
        vec![FaultRule::at_ops(FaultKind::PartitionOutbound, &[1])],
    );
    let client = faulted_client(clock, plan.clone());
    let lock = KvSetNxLock::new(client.clone());
    let guard = lock.lock("job:42").expect("uncontended acquire");

    // The release errors ambiguously — but the DEL landed. Treating the
    // error as "release failed, the lock is still mine" and carrying on
    // with the critical section is the bug: the entry is gone and the
    // next acquirer walks straight in.
    let err = guard.unlock().unwrap_err();
    assert!(matches!(err, LockError::Backend(_)));
    assert_eq!(plan.fired(), 1);
    assert_eq!(
        client.store().get("job:42", Duration::ZERO).unwrap(),
        None,
        "the DEL applied server-side despite the lost reply"
    );
    let second = lock.lock("job:42").expect("the lock is genuinely free");

    // The sound recovery: DEL is idempotent, so re-issuing it and reading
    // `false` (nothing to delete — someone may already hold a *new*
    // grant) confirms release without clobbering the new holder.
    assert!(client.del("job:42").unwrap());
    let _ = second; // second's entry was removed by the blind retry —
                    // which is exactly why correct unlocks check ownership
                    // (see store_restart_loses_leases_but_not_persistent_locks).
}

#[test]
fn owner_checked_unlock_survives_the_lost_del_reply() {
    let clock = Arc::new(VirtualClock::new());
    // After the SETNX acquire (op 0), the leased unlock conversation
    // pays GET (op 1) and EXEC (op 2): lose the EXEC reply after the
    // atomic delete commits.
    let plan = FaultPlan::new(
        SEED,
        vec![FaultRule::at_ops(FaultKind::PartitionOutbound, &[2])],
    );
    let client = faulted_client(clock, plan.clone());
    let lock = KvSetNxLock::new(client.clone()).with_ttl(Duration::from_secs(60));
    let guard = lock.lock("job:43").expect("uncontended acquire");
    let result = guard.unlock();
    // Whatever the unlock reported, the entry must be gone (the atomic
    // delete committed) and a fresh acquirer must succeed — an ambiguous
    // release may confuse the *old* holder but never blocks the *next*.
    assert_eq!(client.store().get("job:43", Duration::ZERO).unwrap(), None);
    lock.lock("job:43")
        .expect("released lease is acquirable")
        .unlock()
        .unwrap();
    drop(result);
}

#[test]
fn lost_expire_reply_still_arms_the_ttl() {
    let clock = Arc::new(VirtualClock::new());
    // Op 0: SET session token. Op 1: EXPIRE whose reply is lost after the
    // server armed the TTL.
    let plan = FaultPlan::new(SEED, vec![FaultRule::at_ops(FaultKind::ReplyLost, &[1])]);
    let client = faulted_client(clock.clone(), plan.clone());
    client.set("session:9", "tok").unwrap();
    let err = client
        .expire("session:9", Duration::from_millis(100))
        .unwrap_err();
    assert!(matches!(
        err,
        adhoc_transactions::kv::KvError::ConnectionLost
    ));
    assert_eq!(plan.fired(), 1);
    // The naive reading of the error — "the EXPIRE didn't take, the entry
    // is durable" — is wrong: the TTL is live and the entry will vanish.
    assert!(
        matches!(
            client.ttl("session:9"),
            adhoc_transactions::kv::Ttl::Remaining(_)
        ),
        "TTL armed despite the lost reply"
    );
    clock.advance(Duration::from_millis(200));
    assert_eq!(
        client.get("session:9").unwrap(),
        None,
        "the session expired exactly as the server was told"
    );
}

// ---------------------------------------------------------------------------
// §3.4.1 strategy 1 — error return (Mastodon invites).
// ---------------------------------------------------------------------------

#[test]
fn error_return_surfaces_conn_error_and_leaves_state_clean() {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = mastodon::setup(&db).unwrap();
    let plan = FaultPlan::new(
        SEED,
        vec![FaultRule::at_ops(FaultKind::ConnError, &[0]).max_fires(1)],
    );
    let kv = faulted_client(Arc::new(VirtualClock::new()), plan);
    let lock = Arc::new(KvSetNxLock::new(kv.clone()));
    let app = mastodon::Mastodon::new(orm, kv, lock, Mode::AdHoc);
    app.seed_invite(1, 5).unwrap();

    // The lock acquire's SETNX dies on the wire; redeem_invite propagates
    // the error to its caller (Fig. 1b's `raise`).
    assert!(app.redeem_invite(1).is_err());
    assert_eq!(
        app.orm()
            .find_required("invites", 1)
            .unwrap()
            .get_int("redeems")
            .unwrap(),
        0,
        "an error return must leave the invite untouched"
    );
    // The fault was one-shot; an application-level retry goes through.
    assert!(app.redeem_invite(1).unwrap());
    assert!(app.invite_within_limit(1).unwrap());
}

// ---------------------------------------------------------------------------
// §3.4.1 strategy 2 — DBT rollback (Spree add-payment), plus the
// crash-after-durable ambiguity that check-then-act absorbs.
// ---------------------------------------------------------------------------

#[test]
fn dbt_rollback_keeps_payment_invariant_under_commit_failure() {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = spree::setup(&db).unwrap();
    let app = spree::Spree::new(orm, Arc::new(MemLock::new()), Mode::DatabaseTxn);
    let plan =
        FaultPlan::new_disabled(SEED, vec![FaultRule::at_ops(FaultKind::CommitFailed, &[0])]);
    db.inject_faults(plan.clone());
    app.seed_order(1).unwrap();
    plan.enable();

    // The DBT's commit is rejected: the engine rolled everything back, so
    // the surfaced error is honest and the invariant holds vacuously.
    let commits_before = db.stats().commits;
    assert!(app.add_payment(1).is_err());
    assert_eq!(db.stats().commits, commits_before, "nothing became durable");
    assert!(db.stats().aborts >= 1);
    assert!(app.one_payment_per_order(1).unwrap());

    plan.disable();
    assert!(app.add_payment(1).unwrap());
    assert!(app.one_payment_per_order(1).unwrap());
}

#[test]
fn check_then_act_absorbs_crash_after_durable_commit() {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = spree::setup(&db).unwrap();
    let app = spree::Spree::new(orm, Arc::new(MemLock::new()), Mode::DatabaseTxn);
    let plan = FaultPlan::new_disabled(
        SEED,
        vec![FaultRule::at_ops(FaultKind::CrashAfterDurable, &[0])],
    );
    db.inject_faults(plan.clone());
    app.seed_order(1).unwrap();
    plan.enable();

    // The payment commits durably but the acknowledgement is lost. The
    // caller sees an error it cannot distinguish from a rollback.
    assert!(app.add_payment(1).is_err());
    plan.disable();

    // A blind INSERT retry would duplicate the payment; add_payment's
    // check-then-act shape re-reads first, so the retry is a safe no-op.
    assert!(!app.add_payment(1).unwrap());
    assert!(
        app.one_payment_per_order(1).unwrap(),
        "exactly one payment despite the ambiguous commit"
    );
}

// ---------------------------------------------------------------------------
// §3.4.1 strategy 3 — manual rollback (Mastodon timelines), including the
// ambiguity that fools it.
// ---------------------------------------------------------------------------

#[test]
fn manual_rollback_compensates_a_lost_timeline_write() {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = mastodon::setup(&db).unwrap();
    let plan = FaultPlan::new(
        SEED,
        vec![FaultRule::at_ops(FaultKind::ConnError, &[0]).max_fires(1)],
    );
    let kv = faulted_client(Arc::new(VirtualClock::new()), plan);
    // MemLock keeps the KV op stream to exactly the timeline writes.
    let app = mastodon::Mastodon::new(orm, kv, Arc::new(MemLock::new()), Mode::AdHoc);

    // create_post inserts the row, then the timeline SADD dies on the wire
    // (genuinely unapplied). The app surfaces the error; the caller's
    // manual rollback deletes the orphaned row.
    assert!(app.create_post(7, 1, "hello").is_err());
    assert!(app.orm().find("posts", 1).unwrap().is_some(), "orphan row");
    app.orm().delete("posts", 1).unwrap();
    assert!(app.orm().find("posts", 1).unwrap().is_none());
    assert!(app.timeline(7).unwrap().is_empty());
    assert!(app.timeline_consistent(7).unwrap());
}

#[test]
fn manual_rollback_is_fooled_by_reply_lost_until_the_checker_repairs() {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = mastodon::setup(&db).unwrap();
    let plan = FaultPlan::new(
        SEED,
        vec![FaultRule::at_ops(FaultKind::ReplyLost, &[0]).max_fires(1)],
    );
    let kv = faulted_client(Arc::new(VirtualClock::new()), plan);
    let app = mastodon::Mastodon::new(orm, kv.clone(), Arc::new(MemLock::new()), Mode::AdHoc);

    // This time the SADD *applied* but the reply was lost. The same manual
    // rollback now deletes the post row while the timeline entry lives on —
    // compensation based on a wrong guess about the outcome.
    assert!(app.create_post(7, 1, "hello").is_err());
    app.orm().delete("posts", 1).unwrap(); // the "rollback"
    assert!(
        !app.timeline_consistent(7).unwrap(),
        "the dangling timeline entry is exactly the §3.4.2 ambiguity cost"
    );

    // §3.4.2's last line of defense: the periodic checker sweeps the
    // dangling reference and repairs.
    for id in app.timeline(7).unwrap() {
        if app.orm().find("posts", id).unwrap().is_none() {
            kv.srem("timeline:7", &id.to_string()).unwrap();
        }
    }
    assert!(app.timeline_consistent(7).unwrap());
}

// ---------------------------------------------------------------------------
// §3.4.1 strategy 4 — repair (JumpServer credential rotation).
// ---------------------------------------------------------------------------

#[test]
fn repair_backfills_audit_lost_to_crash_after_durable() {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = jumpserver::setup(&db).unwrap();
    let app = jumpserver::JumpServer::new(orm, Arc::new(MemLock::new()), Mode::AdHoc);
    // Op 0 is the rotation's read transaction; op 1 is the credential
    // UPDATE commit — that's the one that becomes durable-but-unreported.
    let plan = FaultPlan::new_disabled(
        SEED,
        vec![FaultRule::at_ops(FaultKind::CrashAfterDurable, &[1])],
    );
    db.inject_faults(plan.clone());
    app.seed_credential(1, "s0").unwrap();
    plan.enable();

    // The split rotation's first transaction (the credential update)
    // becomes durable but reports failure; the process treats that as a
    // crash and never writes the audit row.
    assert!(app.rotate_credential_split(1, "s1", false).is_err());
    plan.disable();
    assert!(
        !app.rotations_audited(1).unwrap(),
        "version advanced durably with no matching audit row"
    );

    // The checker's repair backfills the audit row (§3.4.2).
    assert!(app.repair_rotation_audit(1).unwrap());
    assert!(app.rotations_audited(1).unwrap());
    assert!(
        !app.repair_rotation_audit(1).unwrap(),
        "repair is idempotent"
    );
}

// ---------------------------------------------------------------------------
// Store restart: volatile leases evaporate, persistent entries survive.
// ---------------------------------------------------------------------------

#[test]
fn store_restart_loses_leases_but_not_persistent_locks() {
    let clock = Arc::new(VirtualClock::new());
    let plan = FaultPlan::new_disabled(
        SEED,
        vec![FaultRule::at_ops(FaultKind::StoreRestart, &[0]).max_fires(1)],
    );
    let client = faulted_client(clock, plan.clone());
    let fast = AcquireConfig::new(Duration::from_micros(200), Duration::from_millis(20)).unwrap();
    let leased = KvSetNxLock::new(client.clone())
        .with_ttl(Duration::from_secs(60))
        .with_config(fast);
    let persistent = KvSetNxLock::new(client.clone()).with_config(fast);

    let lease_guard = leased.lock("lease:1").unwrap();
    let durable_guard = persistent.lock("durable:1").unwrap();
    plan.enable();
    // The next command hits a freshly restarted store: every TTL'd entry
    // (Redis volatile keys) is gone; persistent entries survive.
    let _ = client.get("probe");
    assert!(
        !lease_guard.is_valid(),
        "the lease evaporated in the restart"
    );
    assert!(durable_guard.is_valid(), "persistent entries survive");

    // Mutual exclusion on the leased key is silently gone.
    let usurper = leased.lock("lease:1").unwrap();
    assert!(usurper.is_valid());
    usurper.unlock().unwrap();
    durable_guard.unlock().unwrap();
    drop(lease_guard);
}

// ---------------------------------------------------------------------------
// Satellite: lease expiry under an injected latency spike, observed by the
// hazard monitor end to end.
// ---------------------------------------------------------------------------

#[test]
fn latency_spike_expires_lease_and_monitor_records_everything() {
    let clock = Arc::new(VirtualClock::new());
    let monitor = AccessMonitor::new();
    let plan = FaultPlan::new(
        SEED,
        vec![FaultRule::at_ops(FaultKind::LatencySpike, &[1]).delay(Duration::from_millis(250))],
    );
    monitor.observe_faults(&plan);
    let client = faulted_client(clock, plan);
    let lock = monitor.wrap_lock(Arc::new(
        KvSetNxLock::new(client.clone()).with_ttl(Duration::from_millis(100)),
    ));

    let guard = lock.lock("invite:1").unwrap(); // op 0: clean SETNX
                                                // Op 1: a read inside the critical section hits the spike — the server
                                                // processes it 250ms late, well past the 100ms lease.
    let _ = client.get("invite:1");
    assert!(
        !guard.is_valid(),
        "the spike must stall the holder past its own TTL"
    );
    let _ = guard.unlock(); // owner-checked release refuses; hazard recorded

    let faults = monitor.fault_log();
    assert_eq!(faults.len(), 1);
    assert_eq!(faults[0].kind, FaultKind::LatencySpike);
    assert_eq!(faults[0].delay, Duration::from_millis(250));
    assert!(
        monitor
            .hazards()
            .iter()
            .any(|h| matches!(h, Hazard::ExpiredLeaseRelease { .. })),
        "the monitor must flag the expired-lease release"
    );
}

// ---------------------------------------------------------------------------
// Satellites: validated AcquireConfig and the Guard::drop error counter.
// ---------------------------------------------------------------------------

#[test]
fn acquire_config_rejects_unacquirable_polling() {
    assert!(AcquireConfig::new(Duration::from_millis(5), Duration::from_secs(1)).is_ok());
    assert!(matches!(
        AcquireConfig::new(Duration::from_secs(1), Duration::from_millis(5)),
        Err(LockError::InvalidConfig { .. })
    ));
    assert!(matches!(
        AcquireConfig::new(Duration::ZERO, Duration::ZERO),
        Err(LockError::InvalidConfig { .. })
    ));
}

// ---------------------------------------------------------------------------
// Crash faults × retry policy × recovery replay: the ambiguous commit must
// not double-apply, before *or after* the WAL is replayed into a fresh
// engine.
// ---------------------------------------------------------------------------

#[test]
fn ambiguous_commit_retry_stays_single_after_recovery_replay() {
    let db = Database::new(DbConfig::in_memory(EngineProfile::PostgresLike).with_wal());
    let orm = spree::setup(&db).unwrap();
    let app = spree::Spree::new(orm, Arc::new(MemLock::new()), Mode::DatabaseTxn);
    let plan = FaultPlan::new_disabled(
        SEED,
        vec![FaultRule::at_ops(FaultKind::CrashAfterDurable, &[0])],
    );
    db.inject_faults(plan.clone());
    app.seed_order(1).unwrap();
    plan.enable();

    // The payment commits durably (the WAL record is force-synced) but the
    // acknowledgement is lost.
    assert!(app.add_payment(1).is_err());
    plan.disable();

    // Retry policy, step 1: the application's check-then-act retry re-reads
    // and sees the durable payment — a safe no-op, not a duplicate.
    assert!(!app.add_payment(1).unwrap());
    assert!(app.one_payment_per_order(1).unwrap());

    // Step 2: the process then dies for real. A fresh engine replays the
    // WAL; the ambiguous commit must come back exactly once.
    let reborn = Database::new(DbConfig::in_memory(EngineProfile::PostgresLike).with_wal());
    let orm2 = spree::setup(&reborn).unwrap();
    let app2 = spree::Spree::new(orm2, Arc::new(MemLock::new()), Mode::DatabaseTxn);
    restart_from(&db, &reborn).unwrap();
    assert_eq!(app2.recover_on_boot().fixed, 0, "nothing stuck to repair");

    let schema = reborn.schema("payments").unwrap();
    let payments: Vec<_> = reborn
        .dump_table("payments")
        .unwrap()
        .into_iter()
        .filter(|(_, row)| row.get_int(&schema, "order_id").ok() == Some(1))
        .collect();
    assert_eq!(payments.len(), 1, "replay must not duplicate the commit");

    // Step 3: retrying against the recovered engine is still a no-op.
    assert!(!app2.add_payment(1).unwrap());
    assert!(app2.one_payment_per_order(1).unwrap());
}

#[test]
fn aof_store_restart_preserves_leases_unlike_volatile() {
    let clock = Arc::new(VirtualClock::new());
    let plan = FaultPlan::new_disabled(
        SEED,
        vec![FaultRule::at_ops(FaultKind::StoreRestart, &[0]).max_fires(1)],
    );
    let client =
        Client::new(Store::with_aof(), clock, LatencyModel::zero()).with_faults(plan.clone());
    let fast = AcquireConfig::new(Duration::from_micros(200), Duration::from_millis(20)).unwrap();
    let leased = KvSetNxLock::new(client.clone())
        .with_ttl(Duration::from_secs(60))
        .with_config(fast);

    let lease_guard = leased.lock("lease:1").unwrap();
    plan.enable();
    // The restart replays the append-only file with recorded timestamps:
    // the lease and its absolute deadline both survive.
    let _ = client.get("probe");
    assert!(
        lease_guard.is_valid(),
        "an AOF-backed lease must survive the restart"
    );
    // Mutual exclusion held: a second acquire still fails.
    assert!(leased.lock("lease:1").is_err());
    lease_guard.unlock().unwrap();
}

#[test]
fn guard_drop_counts_swallowed_unlock_errors() {
    let clock = Arc::new(VirtualClock::new());
    let client = Client::new(Store::new(), clock.clone(), LatencyModel::zero());
    let lock = KvSetNxLock::new(client).with_ttl(Duration::from_millis(50));
    let before = locks::dropped_unlock_errors();
    {
        let _guard = lock.lock("k").unwrap();
        clock.advance(Duration::from_millis(100)); // lease lapses
                                                   // Drop runs the owner-checked unlock, which fails with NotHeld;
                                                   // the error cannot propagate, but it is no longer silent.
    }
    assert!(
        locks::dropped_unlock_errors() > before,
        "the swallowed unlock error must be counted"
    );
}
