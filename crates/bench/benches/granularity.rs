//! Criterion bench regenerating Figure 3: throughput of the four Table 6
//! workloads, AHT vs DBT, with and without contention.
//!
//! Each sample runs the full multi-threaded workload for a fixed window and
//! reports *time per completed request* (criterion's inverse of
//! throughput), so lower is better and the AHT/DBT gap in contended groups
//! mirrors the figure.

use adhoc_apps::Mode;
use adhoc_bench::fig3::{run_granularity, Fig3Config, SETUPS};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_granularities(c: &mut Criterion) {
    for contention in [true, false] {
        let group_name = if contention {
            "figure3a_with_contention"
        } else {
            "figure3b_without_contention"
        };
        let mut group = c.benchmark_group(group_name);
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(100))
            .measurement_time(Duration::from_secs(3));
        for setup in SETUPS {
            for mode in [Mode::AdHoc, Mode::DatabaseTxn] {
                let id = BenchmarkId::new(setup.granularity.label(), mode.label());
                group.bench_function(id, |b| {
                    b.iter_custom(|iters| {
                        let mut per_request = Duration::ZERO;
                        for _ in 0..iters {
                            let cfg = Fig3Config {
                                duration: Duration::from_millis(200),
                                contention,
                                ..Fig3Config::default()
                            };
                            let row = run_granularity(setup.granularity, mode, &cfg);
                            per_request +=
                                Duration::from_secs_f64(1.0 / row.throughput_rps.max(1.0));
                        }
                        per_request
                    })
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_granularities);
criterion_main!(benches);
