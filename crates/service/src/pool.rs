//! A bounded pool of pooled service connections.
//!
//! Each session wraps a clone of the shared [`Transport`] shim — the same
//! wire discipline the KV client uses, wired to
//! [`Cost::ServiceRoundTrip`](adhoc_sim::latency::Cost) — so every request
//! pays exactly one service round trip through whichever pooled
//! connection it drew. The pool is the first bounded resource a request
//! meets: when every connection is busy the caller learns immediately
//! (fail-fast), instead of queueing invisibly inside a connection layer.

use adhoc_sim::Transport;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A fixed-size pool of service connections sharing one [`Transport`]
/// counter.
pub struct SessionPool {
    transport: Transport,
    capacity: usize,
    in_use: AtomicUsize,
    exhausted: AtomicU64,
}

impl SessionPool {
    /// A pool of `capacity` connections over `transport` (clones share
    /// the round-trip counter and breaker).
    pub fn new(transport: Transport, capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            transport,
            capacity,
            in_use: AtomicUsize::new(0),
            exhausted: AtomicU64::new(0),
        }
    }

    /// Try to draw a connection; `None` (counted) when all are busy.
    pub fn try_acquire(&self) -> Option<Session<'_>> {
        // Optimistic claim with back-out, same shape as FrontDoor::admit.
        let claimed = self.in_use.fetch_add(1, Ordering::AcqRel) + 1;
        if claimed > self.capacity {
            self.in_use.fetch_sub(1, Ordering::AcqRel);
            self.exhausted.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(Session {
            pool: self,
            transport: self.transport.clone(),
        })
    }

    /// Pool size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Connections currently checked out.
    pub fn in_use(&self) -> usize {
        self.in_use.load(Ordering::Acquire)
    }

    /// Acquisitions refused because the pool was empty.
    pub fn exhausted(&self) -> u64 {
        self.exhausted.load(Ordering::Relaxed)
    }

    /// Service round trips paid through this pool so far.
    pub fn round_trips(&self) -> u64 {
        self.transport.round_trips()
    }
}

/// One checked-out connection (RAII: dropping returns it to the pool).
pub struct Session<'a> {
    pool: &'a SessionPool,
    transport: Transport,
}

impl Session<'_> {
    /// The pooled connection's transport (pay the service round trip
    /// through this).
    pub fn transport(&self) -> &Transport {
        &self.transport
    }
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        self.pool.in_use.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_sim::{LatencyModel, VirtualClock};

    fn pool(capacity: usize) -> SessionPool {
        SessionPool::new(
            Transport::service(VirtualClock::shared(), LatencyModel::zero()),
            capacity,
        )
    }

    #[test]
    fn pool_bounds_checkouts_and_counts_exhaustion() {
        let p = pool(2);
        let a = p.try_acquire().unwrap();
        let _b = p.try_acquire().unwrap();
        assert!(p.try_acquire().is_none());
        assert_eq!(p.exhausted(), 1);
        assert_eq!(p.in_use(), 2);
        drop(a);
        assert_eq!(p.in_use(), 1);
        assert!(p.try_acquire().is_some());
    }

    #[test]
    fn sessions_share_the_round_trip_counter() {
        let p = pool(2);
        let a = p.try_acquire().unwrap();
        a.transport().pay();
        drop(a);
        let b = p.try_acquire().unwrap();
        b.transport().pay();
        assert_eq!(p.round_trips(), 2);
    }
}
