//! JumpServer (Python/Django + Redis): privilege grants and asset updates.
//!
//! JumpServer is the one studied application with **zero** buggy ad hoc
//! transactions (Table 4): all five cases use a single Redis lock
//! correctly. This module is the positive control — the same shapes as
//! elsewhere (RMW grants, asset state machines) coordinated soundly.

use crate::{Mode, Result, DBT_RETRIES};
use adhoc_core::checker::{BootRecovery, CheckRule, Report, Violation};
use adhoc_core::locks::AdHocLock;
use adhoc_orm::{Coordinator, EntityDef, Orm, Registry};
use adhoc_storage::{Column, ColumnType, Database, DbError, IsolationLevel, Predicate, Schema};
use std::sync::Arc;

/// Create JumpServer's tables and entity registry.
pub fn setup(db: &Database) -> Result<Orm> {
    db.create_table(
        Schema::new(
            "grants",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("user_id", ColumnType::Int),
                Column::new("asset_id", ColumnType::Int),
                Column::new("level", ColumnType::Int),
            ],
            "id",
        )?
        .with_index("user_id")?,
    )?;
    db.create_table(Schema::new(
        "assets",
        vec![
            Column::new("id", ColumnType::Int),
            Column::new("status", ColumnType::Str),
            Column::new("connections", ColumnType::Int),
        ],
        "id",
    )?)?;
    db.create_table(Schema::new(
        "credentials",
        vec![
            Column::new("id", ColumnType::Int), // = asset id
            Column::new("secret", ColumnType::Str),
            Column::new("version", ColumnType::Int),
        ],
        "id",
    )?)?;
    db.create_table(
        Schema::new(
            "rotations",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("asset_id", ColumnType::Int),
                Column::new("version", ColumnType::Int),
            ],
            "id",
        )?
        .with_index("asset_id")?,
    )?;
    db.create_table(Schema::new(
        "nodes",
        vec![
            Column::new("id", ColumnType::Int),
            Column::new("parent", ColumnType::Int), // 0 = root
        ],
        "id",
    )?)?;
    let registry = Registry::new()
        .register(EntityDef::new("grants"))
        .register(EntityDef::new("assets"))
        .register(EntityDef::new("credentials"))
        .register(EntityDef::new("rotations"))
        .register(EntityDef::new("nodes"));
    Ok(Orm::new(db.clone(), registry))
}

/// The JumpServer application model.
pub struct JumpServer {
    orm: Orm,
    lock: Arc<dyn AdHocLock>,
    coord: Coordinator,
    mode: Mode,
}

impl JumpServer {
    /// Build the application model over `orm`, coordinating with `lock` in the given [`Mode`].
    pub fn new(orm: Orm, lock: Arc<dyn AdHocLock>, mode: Mode) -> Self {
        let coord = Coordinator::new(orm.db().clone());
        Self {
            orm,
            lock,
            coord,
            mode,
        }
    }

    /// The underlying ORM handle (for assertions and seeding).
    pub fn orm(&self) -> &Orm {
        &self.orm
    }

    /// Seed an online asset with no connections.
    pub fn seed_asset(&self, asset_id: i64) -> Result<()> {
        self.orm.create(
            "assets",
            &[
                ("id", asset_id.into()),
                ("status", "online".into()),
                ("connections", 0.into()),
            ],
        )?;
        Ok(())
    }

    /// Grant (or upgrade) a user's privilege on an asset — idempotent per
    /// (user, asset): concurrent grants must not duplicate rows.
    pub fn grant(&self, user_id: i64, asset_id: i64, level: i64) -> Result<()> {
        let schema = self.orm.db().schema("grants")?;
        let body = |t: &mut adhoc_storage::Transaction| -> std::result::Result<(), DbError> {
            let existing = t.scan("grants", &Predicate::eq("user_id", user_id))?;
            let found = existing.iter().find(|(_, row)| {
                row.get_int(&schema, "asset_id").map(|a| a == asset_id) == Ok(true)
            });
            match found {
                Some((grant_id, row)) => {
                    let current = row.get_int(&schema, "level")?;
                    if level > current {
                        t.update("grants", *grant_id, &[("level", level.into())])?;
                    }
                }
                None => {
                    t.insert(
                        "grants",
                        &[
                            ("user_id", user_id.into()),
                            ("asset_id", asset_id.into()),
                            ("level", level.into()),
                        ],
                    )?;
                }
            }
            Ok(())
        };
        match self.mode {
            Mode::AdHoc => {
                let guard = self.lock.lock(&format!("grant:{user_id}:{asset_id}"))?;
                self.orm.db().run(IsolationLevel::ReadCommitted, body)?;
                guard.unlock()?;
                Ok(())
            }
            Mode::DatabaseTxn => {
                self.orm
                    .db()
                    .run_with_retries(IsolationLevel::Serializable, DBT_RETRIES, body)?;
                Ok(())
            }
            Mode::Cured | Mode::Confluent => {
                // §7 cure: the grant's existence check is a predicate scan,
                // so the façade serializes per (user, asset) — the same
                // sound shape JumpServer hand-rolled, minus the hand-rolled
                // lock plumbing.
                let guard = self
                    .coord
                    .user_lock(&format!("grant:{user_id}:{asset_id}"))?;
                self.orm.db().run(IsolationLevel::ReadCommitted, body)?;
                guard.unlock()?;
                Ok(())
            }
        }
    }

    /// Asset connection accounting: a lock-guarded RMW pair.
    pub fn connect(&self, asset_id: i64) -> Result<bool> {
        let guard = self.lock.lock(&format!("asset:{asset_id}"))?;
        let asset = self.orm.find_required("assets", asset_id)?;
        let ok = asset.get_str("status")? == "online";
        if ok {
            let conns = asset.get_int("connections")?;
            self.orm.transaction(|t| {
                t.raw()
                    .update("assets", asset_id, &[("connections", (conns + 1).into())])?;
                Ok(())
            })?;
        }
        guard.unlock()?;
        Ok(ok)
    }

    /// Take an asset offline, refusing while connections are open.
    pub fn take_offline(&self, asset_id: i64) -> Result<bool> {
        let guard = self.lock.lock(&format!("asset:{asset_id}"))?;
        let asset = self.orm.find_required("assets", asset_id)?;
        let ok = asset.get_int("connections")? == 0;
        if ok {
            self.orm.transaction(|t| {
                t.raw()
                    .update("assets", asset_id, &[("status", "offline".into())])?;
                Ok(())
            })?;
        }
        guard.unlock()?;
        Ok(ok)
    }

    /// Release one connection from an asset.
    pub fn disconnect(&self, asset_id: i64) -> Result<()> {
        let guard = self.lock.lock(&format!("asset:{asset_id}"))?;
        let asset = self.orm.find_required("assets", asset_id)?;
        let conns = asset.get_int("connections")?;
        self.orm.transaction(|t| {
            t.raw().update(
                "assets",
                asset_id,
                &[("connections", (conns - 1).max(0).into())],
            )?;
            Ok(())
        })?;
        guard.unlock()?;
        Ok(())
    }

    /// Seed an asset credential at version 0.
    pub fn seed_credential(&self, asset_id: i64, secret: &str) -> Result<()> {
        self.orm.create(
            "credentials",
            &[
                ("id", asset_id.into()),
                ("secret", secret.into()),
                ("version", 0.into()),
            ],
        )?;
        Ok(())
    }

    /// Rotate an asset's credential: bump the secret and version and append
    /// an audit row, all under the per-asset Redis lock (the paper's
    /// correctly-coordinated `jumpserver/credential-rotate` case). The
    /// database write is one transaction, so a crash can never split it.
    pub fn rotate_credential(&self, asset_id: i64, new_secret: &str) -> Result<i64> {
        let guard = self.lock.lock(&format!("cred:{asset_id}"))?;
        let cred = self.orm.find_required("credentials", asset_id)?;
        let next = cred.get_int("version")? + 1;
        self.orm.transaction(|t| {
            t.raw().update(
                "credentials",
                asset_id,
                &[("secret", new_secret.into()), ("version", next.into())],
            )?;
            t.raw().insert(
                "rotations",
                &[("asset_id", asset_id.into()), ("version", next.into())],
            )?;
            Ok(())
        })?;
        guard.unlock()?;
        Ok(next)
    }

    /// The anti-pattern the correct case avoids: credential update and
    /// audit append in *separate* transactions. `crash_before_audit`
    /// simulates the process dying between them.
    pub fn rotate_credential_split(
        &self,
        asset_id: i64,
        new_secret: &str,
        crash_before_audit: bool,
    ) -> Result<i64> {
        let guard = self.lock.lock(&format!("cred:{asset_id}"))?;
        let cred = self.orm.find_required("credentials", asset_id)?;
        let next = cred.get_int("version")? + 1;
        self.orm.transaction(|t| {
            t.raw().update(
                "credentials",
                asset_id,
                &[("secret", new_secret.into()), ("version", next.into())],
            )?;
            Ok(())
        })?;
        if crash_before_audit {
            guard.leak(); // the crash takes the lock with it
            return Ok(next);
        }
        self.orm.transaction(|t| {
            t.raw().insert(
                "rotations",
                &[("asset_id", asset_id.into()), ("version", next.into())],
            )?;
            Ok(())
        })?;
        guard.unlock()?;
        Ok(next)
    }

    /// Invariant: every credential version has a matching audit row (the
    /// fsck-style rule a periodic checker would run, §3.4.2).
    pub fn rotations_audited(&self, asset_id: i64) -> Result<bool> {
        let version = self
            .orm
            .find_required("credentials", asset_id)?
            .get_int("version")?;
        if version == 0 {
            return Ok(true); // never rotated
        }
        let schema = self.orm.db().schema("rotations")?;
        let rows = self.orm.transaction(|t| {
            Ok(t.raw()
                .scan("rotations", &Predicate::eq("asset_id", asset_id))?)
        })?;
        for (_, row) in &rows {
            if row.get_int(&schema, "version")? == version {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Backfill the audit row a split rotation lost (the checker's repair).
    pub fn repair_rotation_audit(&self, asset_id: i64) -> Result<bool> {
        if self.rotations_audited(asset_id)? {
            return Ok(false);
        }
        let version = self
            .orm
            .find_required("credentials", asset_id)?
            .get_int("version")?;
        self.orm.transaction(|t| {
            t.raw().insert(
                "rotations",
                &[("asset_id", asset_id.into()), ("version", version.into())],
            )?;
            Ok(())
        })?;
        Ok(true)
    }

    /// Seed a node under `parent` (0 = root).
    pub fn seed_node(&self, node_id: i64, parent: i64) -> Result<()> {
        self.orm.create(
            "nodes",
            &[("id", node_id.into()), ("parent", parent.into())],
        )?;
        Ok(())
    }

    /// Move a node under a new parent, refusing moves that would create a
    /// cycle. The ancestor walk and the write are a check-then-act pair, so
    /// the whole tree is guarded by one coarse lock (the paper's
    /// `jumpserver/node-move` case — coarse granularity, Table 5).
    pub fn move_node(&self, node_id: i64, new_parent: i64) -> Result<bool> {
        let guard = self.lock.lock("node-tree")?;
        let ok = self.move_node_inner(node_id, new_parent)?;
        guard.unlock()?;
        Ok(ok)
    }

    /// The same move with no coordination: two concurrent moves can each
    /// pass the ancestor check and jointly create a cycle.
    pub fn move_node_unlocked(&self, node_id: i64, new_parent: i64) -> Result<bool> {
        self.move_node_inner(node_id, new_parent)
    }

    fn move_node_inner(&self, node_id: i64, new_parent: i64) -> Result<bool> {
        // Walk up from the proposed parent; if we reach `node_id` the move
        // would create a cycle.
        let mut cursor = new_parent;
        while cursor != 0 {
            if cursor == node_id {
                return Ok(false);
            }
            cursor = self.orm.find_required("nodes", cursor)?.get_int("parent")?;
        }
        std::thread::yield_now(); // widen the check-then-act window
        self.orm.transaction(|t| {
            t.raw()
                .update("nodes", node_id, &[("parent", new_parent.into())])?;
            Ok(())
        })?;
        Ok(true)
    }

    /// Invariant: the node forest is acyclic (every node reaches the root).
    pub fn tree_acyclic(&self) -> Result<bool> {
        let schema = self.orm.db().schema("nodes")?;
        let rows = self
            .orm
            .transaction(|t| Ok(t.raw().scan("nodes", &Predicate::All)?))?;
        let parents: std::collections::HashMap<i64, i64> = rows
            .iter()
            .map(|(id, row)| Ok((*id, row.get_int(&schema, "parent")?)))
            .collect::<Result<_>>()?;
        for start in parents.keys() {
            let mut cursor = *start;
            let mut steps = 0;
            while cursor != 0 {
                cursor = *parents.get(&cursor).unwrap_or(&0);
                steps += 1;
                if steps > parents.len() {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Invariant: exactly one grant row per (user, asset).
    pub fn grants_unique(&self, user_id: i64) -> Result<bool> {
        let schema = self.orm.db().schema("grants")?;
        let rows = self
            .orm
            .transaction(|t| Ok(t.raw().scan("grants", &Predicate::eq("user_id", user_id))?))?;
        let mut assets: Vec<i64> = Vec::with_capacity(rows.len());
        for (_, row) in &rows {
            assets.push(row.get_int(&schema, "asset_id")?);
        }
        let before = assets.len();
        assets.sort_unstable();
        assets.dedup();
        Ok(assets.len() == before)
    }

    /// Run [`boot_fsck`] against this instance's database.
    pub fn recover_on_boot(&self) -> Report {
        boot_fsck().recover_on_boot(self.orm.db())
    }
}

/// JumpServer's boot-time recovery pass: a crash between the two halves
/// of a *split* credential rotation commits the new secret without its
/// audit row; boot backfills the missing rotation record (the generic
/// form of [`JumpServer::repair_rotation_audit`]).
pub fn boot_fsck() -> BootRecovery {
    BootRecovery::new("jumpserver").rule(missing_rotation_audit_rule())
}

/// Flag every credential whose current version has no matching audit row,
/// and insert the missing row on fix.
fn missing_rotation_audit_rule() -> CheckRule {
    let name = "jumpserver:rotation-audited";
    let current_version = |db: &Database, asset_id: i64| -> Option<i64> {
        let schema = db.schema("credentials").ok()?;
        db.latest_committed("credentials", asset_id)
            .ok()?
            .and_then(|row| row.get_int(&schema, "version").ok())
    };
    let audited = move |db: &Database, asset_id: i64, version: i64| -> bool {
        let (Ok(rows), Ok(schema)) = (db.dump_table("rotations"), db.schema("rotations")) else {
            return true; // cannot read: do not invent findings
        };
        rows.iter().any(|(_, row)| {
            row.get_int(&schema, "asset_id").ok() == Some(asset_id)
                && row.get_int(&schema, "version").ok() == Some(version)
        })
    };
    CheckRule::new(name, move |db| {
        let Ok(creds) = db.dump_table("credentials") else {
            return Vec::new();
        };
        creds
            .iter()
            .filter_map(|(asset_id, _)| {
                let version = current_version(db, *asset_id)?;
                (version > 0 && !audited(db, *asset_id, version)).then(|| Violation {
                    rule: name.to_string(),
                    table: "credentials".to_string(),
                    row_id: *asset_id,
                    message: format!("rotation to version {version} has no audit row"),
                })
            })
            .collect()
    })
    .with_fix(move |db, v| {
        let Some(version) = current_version(db, v.row_id) else {
            return false;
        };
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.insert(
                "rotations",
                &[("asset_id", v.row_id.into()), ("version", version.into())],
            )
            .map(|_| ())
        })
        .is_ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_core::locks::KvSetNxLock;
    use adhoc_kv::{Client, Store};
    use adhoc_sim::{LatencyModel, RealClock};
    use adhoc_storage::EngineProfile;

    fn fixture(mode: Mode) -> JumpServer {
        let db = Database::in_memory(EngineProfile::PostgresLike);
        let orm = setup(&db).unwrap();
        let kv = Client::new(Store::new(), RealClock::shared(), LatencyModel::zero());
        JumpServer::new(orm, Arc::new(KvSetNxLock::new(kv)), mode)
    }

    #[test]
    fn grants_are_idempotent_and_upgrade() {
        for mode in [Mode::AdHoc, Mode::DatabaseTxn] {
            let app = fixture(mode);
            app.grant(1, 10, 1).unwrap();
            app.grant(1, 10, 3).unwrap();
            app.grant(1, 10, 2).unwrap(); // downgrade ignored
            assert!(app.grants_unique(1).unwrap(), "{mode:?}");
            let schema = app.orm().db().schema("grants").unwrap();
            let rows = app
                .orm()
                .transaction(|t| Ok(t.raw().scan("grants", &Predicate::eq("user_id", 1))?))
                .unwrap();
            assert_eq!(rows.len(), 1, "{mode:?}");
            assert_eq!(rows[0].1.get_int(&schema, "level").unwrap(), 3, "{mode:?}");
        }
    }

    #[test]
    fn concurrent_grants_never_duplicate() {
        for mode in [Mode::AdHoc, Mode::DatabaseTxn] {
            let app = Arc::new(fixture(mode));
            std::thread::scope(|s| {
                for t in 0..8 {
                    let app = Arc::clone(&app);
                    s.spawn(move || {
                        app.grant(1, 10, t).unwrap();
                    });
                }
            });
            assert!(app.grants_unique(1).unwrap(), "{mode:?}");
        }
    }

    #[test]
    fn offline_asset_refuses_connections() {
        let app = fixture(Mode::AdHoc);
        app.seed_asset(1).unwrap();
        assert!(app.connect(1).unwrap());
        // Busy asset cannot go offline.
        assert!(!app.take_offline(1).unwrap());
        app.disconnect(1).unwrap();
        assert!(app.take_offline(1).unwrap());
        assert!(!app.connect(1).unwrap());
    }

    #[test]
    fn rotation_is_atomic_and_audited() {
        let app = Arc::new(fixture(Mode::AdHoc));
        app.seed_credential(1, "s0").unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let app = Arc::clone(&app);
                s.spawn(move || {
                    for r in 0..3 {
                        app.rotate_credential(1, &format!("s{t}-{r}")).unwrap();
                    }
                });
            }
        });
        let cred = app.orm().find_required("credentials", 1).unwrap();
        assert_eq!(
            cred.get_int("version").unwrap(),
            12,
            "every rotation counted"
        );
        assert!(app.rotations_audited(1).unwrap());
        // Audit rows are dense: one per version, no duplicates.
        let schema = app.orm().db().schema("rotations").unwrap();
        let mut versions: Vec<i64> = app
            .orm()
            .transaction(|t| Ok(t.raw().scan("rotations", &Predicate::eq("asset_id", 1))?))
            .unwrap()
            .iter()
            .map(|(_, row)| row.get_int(&schema, "version").unwrap())
            .collect();
        versions.sort_unstable();
        assert_eq!(versions, (1..=12).collect::<Vec<_>>());
    }

    #[test]
    fn split_rotation_crash_loses_audit_and_checker_repairs() {
        let app = fixture(Mode::AdHoc);
        app.seed_credential(1, "s0").unwrap();
        app.rotate_credential_split(1, "s1", true).unwrap(); // crash
        assert!(!app.rotations_audited(1).unwrap(), "audit row lost");
        assert!(app.repair_rotation_audit(1).unwrap());
        assert!(app.rotations_audited(1).unwrap());
        assert!(
            !app.repair_rotation_audit(1).unwrap(),
            "repair is idempotent"
        );
    }

    #[test]
    fn node_moves_reject_cycles() {
        let app = fixture(Mode::AdHoc);
        // 1 <- 2 <- 3
        app.seed_node(1, 0).unwrap();
        app.seed_node(2, 1).unwrap();
        app.seed_node(3, 2).unwrap();
        assert!(!app.move_node(1, 3).unwrap(), "1 under 3 cycles");
        assert!(!app.move_node(1, 1).unwrap(), "self-parent cycles");
        assert!(app.move_node(3, 1).unwrap(), "legal reparent");
        assert!(app.tree_acyclic().unwrap());
    }

    #[test]
    fn concurrent_moves_stay_acyclic_under_the_tree_lock() {
        let app = Arc::new(fixture(Mode::AdHoc));
        for n in 1..=6 {
            app.seed_node(n, if n == 1 { 0 } else { n - 1 }).unwrap();
        }
        std::thread::scope(|s| {
            for t in 0..4 {
                let app = Arc::clone(&app);
                s.spawn(move || {
                    for r in 0..8 {
                        let node = 1 + (t * 3 + r) % 6;
                        let parent = 1 + (t + r * 5) % 6;
                        if node != parent {
                            let _ = app.move_node(node, parent).unwrap();
                        }
                    }
                });
            }
        });
        assert!(app.tree_acyclic().unwrap());
    }

    #[test]
    fn uncoordinated_moves_can_create_a_cycle() {
        // Two moves that individually pass the ancestor check but jointly
        // cycle: 2 under 3 while 3 goes under 2.
        let mut cycled = false;
        for _ in 0..200 {
            let app = Arc::new(fixture(Mode::AdHoc));
            app.seed_node(1, 0).unwrap();
            app.seed_node(2, 1).unwrap();
            app.seed_node(3, 1).unwrap();
            std::thread::scope(|s| {
                let a = Arc::clone(&app);
                s.spawn(move || {
                    let _ = a.move_node_unlocked(2, 3).unwrap();
                });
                let b = Arc::clone(&app);
                s.spawn(move || {
                    let _ = b.move_node_unlocked(3, 2).unwrap();
                });
            });
            if !app.tree_acyclic().unwrap() {
                cycled = true;
                break;
            }
        }
        assert!(cycled, "the unlocked check-then-act must be able to cycle");
    }

    #[test]
    fn connect_offline_race_is_coordinated() {
        // The asset lock makes connect/take_offline atomic with respect to
        // each other: never a connection on an offline asset.
        let app = Arc::new(fixture(Mode::AdHoc));
        app.seed_asset(1).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let app = Arc::clone(&app);
                s.spawn(move || {
                    for _ in 0..10 {
                        if app.connect(1).unwrap() {
                            app.disconnect(1).unwrap();
                        }
                    }
                });
            }
            let app2 = Arc::clone(&app);
            s.spawn(move || {
                for _ in 0..10 {
                    let _ = app2.take_offline(1).unwrap();
                    std::thread::yield_now();
                }
            });
        });
        let asset = app.orm().find_required("assets", 1).unwrap();
        if asset.get_str("status").unwrap() == "offline" {
            assert_eq!(asset.get_int("connections").unwrap(), 0);
        }
    }
    #[test]
    fn asset_row_footprints_are_localized_and_independent() {
        let app = fixture(Mode::AdHoc);
        let fps: Vec<_> = (1..=6)
            .map(|id| {
                app.seed_asset(id).unwrap();
                crate::observed_footprint(app.orm(), |t| {
                    t.raw().update("assets", id, &[("connections", 0.into())])?;
                    Ok(())
                })
                .unwrap()
                .1
            })
            .collect();
        crate::test_support::assert_localized_and_independent(&fps);
    }
}
