//! Figure 4: shrink-image API latency under the four rollback methods,
//! with and without conflicting edit-post load (§5.3).
//!
//! Workload: one thread invokes shrink-image for a sequence of images,
//! each used by eight posts; two editor threads continuously run edit-post
//! over the posts of the image currently being shrunk. Image processing
//! happens on the contents each strategy read, so a conflict makes the
//! transactional strategies redo it; `REPAIR` redoes only the affected
//! post's cheap replacement. `DBT-W` and `MANUAL` additionally share the
//! edit-post lock, so they block for the duration of in-flight edits.

use adhoc_apps::{discourse, Mode};
use adhoc_core::locks::MemLock;
use adhoc_core::taxonomy::FailureHandling;
use adhoc_sim::{LatencyModel, RealClock};
use adhoc_storage::{Database, DbConfig, EngineProfile};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct Fig4Config {
    /// Images processed per measurement (each used by `posts_per_image`).
    pub images: usize,
    /// Posts referencing each image.
    pub posts_per_image: usize,
    /// Simulated image-processing cost (dominates the no-conflict case).
    pub image_cost: Duration,
    /// Concurrent editor threads (the paper used two per image).
    pub editors: usize,
    /// Editor think time between edits.
    pub editor_think: Duration,
    /// Request time an edit spends holding the post lock.
    pub edit_hold: Duration,
    /// Physical costs for the RDBMS.
    pub latency: LatencyModel,
    /// Whether conflicting editors run during measurement.
    pub conflicts: bool,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Self {
            images: 4,
            posts_per_image: 8,
            image_cost: Duration::from_millis(10),
            editors: 2,
            editor_think: Duration::from_millis(20),
            edit_hold: Duration::from_millis(6),
            latency: LatencyModel {
                kv_round_trip: Duration::from_micros(10),
                sql_round_trip: Duration::from_micros(50),
                durable_flush: Duration::from_micros(100),
                ..LatencyModel::zero()
            },
            conflicts: true,
        }
    }
}

/// One measured bar: mean shrink-image latency for a strategy.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// The measured rollback strategy.
    pub strategy: FailureHandling,
    /// Whether conflicting editors ran.
    pub conflicts: bool,
    /// Mean shrink-image latency per image.
    pub mean_latency: Duration,
    /// Image-processing restarts (or per-post repairs for `REPAIR`).
    pub restarts: usize,
}

/// The figure's four configurations, in its x-axis order
/// (`DBT-S`, `DBT-W`, `MANUAL`, `REPAIR`).
pub fn strategies() -> [FailureHandling; 4] {
    [
        FailureHandling::ErrorReturn, // DBT-S in this mapping
        FailureHandling::DbtRollback, // DBT-W
        FailureHandling::ManualRollback,
        FailureHandling::Repair,
    ]
}

/// Figure 4 label for a strategy.
pub fn strategy_label(s: FailureHandling) -> &'static str {
    match s {
        FailureHandling::ErrorReturn => "DBT-S",
        FailureHandling::DbtRollback => "DBT-W",
        FailureHandling::ManualRollback => "MANUAL",
        FailureHandling::Repair => "REPAIR",
    }
}

/// Measure one strategy.
pub fn run_rollback(strategy: FailureHandling, cfg: &Fig4Config) -> Fig4Row {
    let db = Database::new(DbConfig::networked(
        EngineProfile::PostgresLike,
        RealClock::shared(),
        cfg.latency,
    ));
    let orm = discourse::setup(&db).expect("schema");
    let app = Arc::new(
        discourse::Discourse::new(orm, Arc::new(MemLock::new()), Mode::AdHoc)
            .with_image_cost(cfg.image_cost)
            .with_edit_hold_cost(cfg.edit_hold),
    );
    app.seed_topic(1).expect("seed");
    let mut images = Vec::new();
    for img in 0..cfg.images as i64 {
        let old = img * 2 + 10;
        let new = img * 2 + 11;
        app.seed_image(old, 1000).expect("seed");
        app.seed_image(new, 10).expect("seed");
        let mut posts = Vec::new();
        for p in 0..cfg.posts_per_image {
            posts.push(
                app.seed_post(1, &format!("post {p} img:{old}"), old)
                    .expect("seed post"),
            );
        }
        images.push((old, new, posts));
    }

    let stop = AtomicBool::new(false);
    // Editors always target the image currently being shrunk.
    let current = AtomicUsize::new(0);
    let mut total = Duration::ZERO;
    let mut restarts = 0usize;
    std::thread::scope(|s| {
        if cfg.conflicts {
            for e in 0..cfg.editors {
                let app = Arc::clone(&app);
                let stop = &stop;
                let current = &current;
                let images = images.clone();
                s.spawn(move || {
                    let mut i = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let (old, _, posts) = &images[current.load(Ordering::Relaxed)];
                        let post = posts[(e + i) % posts.len()];
                        if let Ok(token) = app.begin_edit(post) {
                            let _ = app.commit_edit(&token, &format!("edited {i} img:{old}"));
                        }
                        std::thread::sleep(cfg.editor_think);
                        i += 1;
                    }
                });
            }
        }
        // The measured shrinker.
        for (idx, (old, new, _)) in images.iter().enumerate() {
            current.store(idx, Ordering::Relaxed);
            let start = Instant::now();
            let report = app.shrink_image(*old, *new, strategy).expect("shrink");
            total += start.elapsed();
            restarts += report.restarts;
        }
        stop.store(true, Ordering::Relaxed);
    });

    Fig4Row {
        strategy,
        conflicts: cfg.conflicts,
        mean_latency: total / cfg.images as u32,
        restarts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 4(a): with conflicts, REPAIR is the cheapest — it never
    /// redoes the image processing — while the transactional strategies
    /// restart it; DBT-W and MANUAL additionally block on the edit lock.
    #[test]
    fn conflicting_rollback_ordering() {
        let _serial = crate::SERIAL_MEASUREMENTS.lock();
        let cfg = Fig4Config::default();
        let repair = run_rollback(FailureHandling::Repair, &cfg);
        let dbt_s = run_rollback(FailureHandling::ErrorReturn, &cfg);
        let dbt_w = run_rollback(FailureHandling::DbtRollback, &cfg);
        let manual = run_rollback(FailureHandling::ManualRollback, &cfg);
        let summary = format!(
            "REPAIR {:?}/{} | DBT-S {:?}/{} | DBT-W {:?}/{} | MANUAL {:?}/{}",
            repair.mean_latency,
            repair.restarts,
            dbt_s.mean_latency,
            dbt_s.restarts,
            dbt_w.mean_latency,
            dbt_w.restarts,
            manual.mean_latency,
            manual.restarts
        );
        assert!(
            repair.mean_latency < dbt_s.mean_latency
                && repair.mean_latency < dbt_w.mean_latency
                && repair.mean_latency < manual.mean_latency,
            "REPAIR must be the cheapest: {summary}"
        );
        // Repair keeps the work for unaffected posts: its latency stays
        // near a single image-processing pass.
        assert!(
            repair.mean_latency < cfg.image_cost * 3,
            "repair should stay near one image cost: {summary}"
        );
        // The transactional strategies redid image processing at least once
        // across the run (conflicts were injected continuously).
        assert!(
            dbt_s.restarts + dbt_w.restarts + manual.restarts > 0,
            "expected transactional restarts: {summary}"
        );
    }

    /// Figure 4(b): without conflicts all four are dominated by image
    /// processing and are similar.
    #[test]
    fn conflict_free_latencies_are_similar() {
        let _serial = crate::SERIAL_MEASUREMENTS.lock();
        let cfg = Fig4Config {
            conflicts: false,
            images: 3,
            image_cost: Duration::from_millis(8),
            ..Fig4Config::default()
        };
        // Mean latency is wall-clock: a measurement round that loses the
        // CPU to a concurrent test binary can skew one strategy. The
        // similarity band only has to hold for an undisturbed round, so
        // retry a few times before declaring the latencies divergent. The
        // zero-restart invariant is deterministic and must hold each round.
        let mut last = String::new();
        for _ in 0..5 {
            let rows: Vec<Fig4Row> = strategies()
                .into_iter()
                .map(|s| run_rollback(s, &cfg))
                .collect();
            for r in &rows {
                assert_eq!(
                    r.restarts, 0,
                    "{:?} restarted without conflicts",
                    r.strategy
                );
            }
            let min = rows.iter().map(|r| r.mean_latency).min().expect("rows");
            let max = rows.iter().map(|r| r.mean_latency).max().expect("rows");
            if max < min * 3 {
                return;
            }
            last = format!("{rows:?}");
        }
        panic!("no-conflict latencies should be comparable: {last}");
    }

    #[test]
    fn labels_match_figure4() {
        let labels: Vec<&str> = strategies().into_iter().map(strategy_label).collect();
        assert_eq!(labels, vec!["DBT-S", "DBT-W", "MANUAL", "REPAIR"]);
    }
}
