//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! The build environment cannot reach crates.io, so this shim provides the
//! pieces the workspace uses — `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_bool, gen_range, sample_iter}` and
//! `distributions::Standard` — backed by xoshiro256\*\* seeded through
//! SplitMix64. Streams are deterministic for a given seed, which is the
//! only property the workspace relies on (reported runs must replay
//! bit-for-bit); they do not match upstream rand's byte streams.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\*.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions, mirroring `rand::distributions`.
pub mod distributions {
    use super::RngCore;

    /// A distribution producing values of `T`.
    pub trait Distribution<T> {
        /// Sample one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "any value of the type" distribution.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
        }
    }
}

use distributions::{Distribution, Standard};

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit: f64 = Standard.sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A value of `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// A value uniformly drawn from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let unit: f64 = Standard.sample(self);
        unit < p
    }

    /// Sample one value from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, dist: D) -> T {
        dist.sample(self)
    }

    /// An infinite iterator of samples from `dist`.
    fn sample_iter<T, D: Distribution<T>>(self, dist: D) -> DistIter<Self, D, T>
    where
        Self: Sized,
    {
        DistIter {
            rng: self,
            dist,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Iterator returned by [`Rng::sample_iter`].
#[derive(Debug)]
pub struct DistIter<R, D, T> {
    rng: R,
    dist: D,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<R: RngCore, D: Distribution<T>, T> Iterator for DistIter<R, D, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        Some(self.dist.sample(&mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u64> = StdRng::seed_from_u64(9)
            .sample_iter(Standard)
            .take(16)
            .collect();
        let b: Vec<u64> = StdRng::seed_from_u64(9)
            .sample_iter(Standard)
            .take(16)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let a: u64 = StdRng::seed_from_u64(1).gen();
        let b: u64 = StdRng::seed_from_u64(2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1..=3u8);
            assert!((1..=3).contains(&w));
            let n = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
