//! Periodic database consistency checking — "fsck for the database".
//!
//! §3.4.2 of the paper: because many ad hoc transactions skip rollback,
//! applications tolerate intermediate states and run periodic checkers
//! instead — "every twelve hours, Discourse checks and fixes inconsistent
//! references, such as missing avatars, thumbnails, and topics". This
//! module is a small framework for exactly such rules, with optional
//! auto-fix, used by the application models and the crash-recovery tests.

use adhoc_storage::{Database, Predicate, Value};
use std::collections::HashSet;
use std::fmt;

/// One detected inconsistency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the rule that fired.
    pub rule: String,
    /// Table containing the offending row.
    pub table: String,
    /// Offending primary key.
    pub row_id: i64,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} #{}: {}",
            self.rule, self.table, self.row_id, self.message
        )
    }
}

type CheckFn = Box<dyn Fn(&Database) -> Vec<Violation> + Send + Sync>;
type FixFn = Box<dyn Fn(&Database, &Violation) -> bool + Send + Sync>;

/// One named rule, with an optional fixer.
pub struct CheckRule {
    /// Rule name (appears in violations).
    pub name: String,
    check: CheckFn,
    fix: Option<FixFn>,
}

impl CheckRule {
    /// A detection-only rule.
    pub fn new(
        name: &str,
        check: impl Fn(&Database) -> Vec<Violation> + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.to_string(),
            check: Box::new(check),
            fix: None,
        }
    }

    /// Attach a fixer invoked per violation by `run_and_fix`.
    pub fn with_fix(
        mut self,
        fix: impl Fn(&Database, &Violation) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.fix = Some(Box::new(fix));
        self
    }
}

/// Result of one checker run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Report {
    /// Violations still standing after the run.
    pub violations: Vec<Violation>,
    /// Violations repaired (only via `run_and_fix`).
    pub fixed: usize,
}

impl Report {
    /// True when no violations remain.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A set of rules run together (the periodic job).
#[derive(Default)]
pub struct ConsistencyChecker {
    rules: Vec<CheckRule>,
}

impl ConsistencyChecker {
    /// A checker with no rules.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule.
    pub fn rule(mut self, rule: CheckRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Run all rules, reporting violations without touching data.
    pub fn run(&self, db: &Database) -> Report {
        let mut report = Report::default();
        for rule in &self.rules {
            report.violations.extend((rule.check)(db));
        }
        report
    }

    /// Run all rules and apply fixes where available (Discourse's mode).
    pub fn run_and_fix(&self, db: &Database) -> Report {
        let mut report = Report::default();
        for rule in &self.rules {
            for v in (rule.check)(db) {
                let fixed = rule.fix.as_ref().map(|f| f(db, &v)).unwrap_or(false);
                if fixed {
                    report.fixed += 1;
                } else {
                    report.violations.push(v);
                }
            }
        }
        report
    }
}

/// A boot-time recovery pass — the generalized form of Spree's
/// `boot_recovery` (§4.3: payments stuck in `processing` after a crash).
///
/// A crash can leave state that is *transactionally* consistent — every
/// acknowledged commit survived, every unacknowledged one rolled back —
/// yet semantically stuck, because a multi-request state machine died
/// between its steps: a payment marked `processing` whose completion
/// request never ran, a counter behind the rows it summarizes, an audit
/// row whose paired write committed alone. The storage engine cannot see
/// these; only the application's invariants can. Each app module
/// registers its crash-sensitive rules in one of these and runs
/// [`recover_on_boot`](Self::recover_on_boot) when a restarted process
/// finishes WAL replay.
pub struct BootRecovery {
    /// App name, prefixed to finding output.
    pub app: String,
    checker: ConsistencyChecker,
}

impl BootRecovery {
    /// An empty recovery pass for `app`.
    pub fn new(app: &str) -> Self {
        Self {
            app: app.to_string(),
            checker: ConsistencyChecker::new(),
        }
    }

    /// Register a rule. Rules with fixers are repaired on boot; rules
    /// without stay as reported findings (states no automatic repair can
    /// honestly resolve, like an over-captured payment).
    pub fn rule(mut self, rule: CheckRule) -> Self {
        self.checker = self.checker.rule(rule);
        self
    }

    /// The boot hook: run every rule in fix mode. `fixed` counts repaired
    /// states; `violations` are findings that remain (detection-only rules
    /// or failed fixes) and should surface to an operator.
    pub fn recover_on_boot(&self, db: &Database) -> Report {
        self.checker.run_and_fix(db)
    }

    /// Detection-only pass (no writes), for asserting a database is clean.
    pub fn check(&self, db: &Database) -> Report {
        self.checker.run(db)
    }
}

/// Rule builder for the §4.3 shape: rows of `table` whose `column` is
/// stuck in the `stuck` state are reset to `reset_to` on boot — Spree's
/// `processing` → `new` payments, generalized.
pub fn stuck_state(table: &str, column: &str, stuck: &str, reset_to: &str) -> CheckRule {
    let table = table.to_string();
    let column = column.to_string();
    let stuck = stuck.to_string();
    let reset_to = reset_to.to_string();
    let name = format!("stuck:{table}.{column}={stuck}");
    let fix_column = column.clone();
    let fix_reset = reset_to.clone();
    CheckRule::new(&name.clone(), move |db| {
        let (Ok(rows), Ok(schema)) = (db.dump_table(&table), db.schema(&table)) else {
            return Vec::new();
        };
        rows.iter()
            .filter(|(_, row)| {
                row.get_str(&schema, &column).ok().as_deref() == Some(stuck.as_str())
            })
            .map(|(id, _)| Violation {
                rule: name.clone(),
                table: table.clone(),
                row_id: *id,
                message: format!("{column} stuck in {stuck:?}; reset to {reset_to:?}"),
            })
            .collect()
    })
    .with_fix(move |db, v| {
        db.run(adhoc_storage::IsolationLevel::ReadCommitted, |t| {
            t.update(
                &v.table,
                v.row_id,
                &[(fix_column.as_str(), fix_reset.clone().into())],
            )
        })
        .is_ok()
    })
}

/// Rule builder: every `child.fk_column` must reference a live row of
/// `parent` — the missing-avatar / dangling-thumbnail class of check.
pub fn referential_integrity(child: &str, fk_column: &str, parent: &str) -> CheckRule {
    let child = child.to_string();
    let fk = fk_column.to_string();
    let parent = parent.to_string();
    let name = format!("ref:{child}.{fk}->{parent}");
    CheckRule::new(&name.clone(), move |db| {
        let Ok(children) = db.dump_table(&child) else {
            return Vec::new();
        };
        let Ok(parents) = db.dump_table(&parent) else {
            return Vec::new();
        };
        let live: HashSet<i64> = parents.iter().map(|(id, _)| *id).collect();
        let Ok(schema) = db.schema(&child) else {
            return Vec::new();
        };
        children
            .iter()
            .filter_map(|(id, row)| {
                let fk_val = row.get(&schema, &fk).ok()?;
                match fk_val {
                    Value::Int(p) if !live.contains(p) => Some(Violation {
                        rule: name.clone(),
                        table: child.clone(),
                        row_id: *id,
                        message: format!("{fk} = {p} references a missing {parent} row"),
                    }),
                    _ => None,
                }
            })
            .collect()
    })
}

/// Rule builder: `table.column` must satisfy `pred` on every live row
/// (e.g., "no payment stuck in 'processing'").
pub fn column_invariant(table: &str, rule_name: &str, pred: Predicate, message: &str) -> CheckRule {
    let table = table.to_string();
    let name = rule_name.to_string();
    let message = message.to_string();
    CheckRule::new(&name.clone(), move |db| {
        let Ok(rows) = db.dump_table(&table) else {
            return Vec::new();
        };
        let Ok(schema) = db.schema(&table) else {
            return Vec::new();
        };
        rows.iter()
            .filter_map(|(id, row)| match pred.matches(&schema, row) {
                Ok(true) => None,
                _ => Some(Violation {
                    rule: name.clone(),
                    table: table.clone(),
                    row_id: *id,
                    message: message.clone(),
                }),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_storage::{Column, ColumnType, EngineProfile, IsolationLevel, Schema};

    fn fixture() -> Database {
        let db = Database::in_memory(EngineProfile::PostgresLike);
        db.create_table(
            Schema::new("topics", vec![Column::new("id", ColumnType::Int)], "id").unwrap(),
        )
        .unwrap();
        db.create_table(
            Schema::new(
                "posts",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("topic_id", ColumnType::Int),
                ],
                "id",
            )
            .unwrap(),
        )
        .unwrap();
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.insert("topics", &[("id", 1.into())])?;
            t.insert("posts", &[("id", 10.into()), ("topic_id", 1.into())])?;
            t.insert("posts", &[("id", 11.into()), ("topic_id", 99.into())])?; // dangling
            Ok(())
        })
        .unwrap();
        db
    }

    #[test]
    fn referential_rule_finds_dangling_references() {
        let db = fixture();
        let checker =
            ConsistencyChecker::new().rule(referential_integrity("posts", "topic_id", "topics"));
        let report = checker.run(&db);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].row_id, 11);
        assert!(!report.is_clean());
        assert!(report.violations[0].to_string().contains("topic_id"));
    }

    #[test]
    fn fixer_repairs_and_reports_clean() {
        let db = fixture();
        let checker = ConsistencyChecker::new().rule(
            referential_integrity("posts", "topic_id", "topics").with_fix(|db, v| {
                db.run(IsolationLevel::ReadCommitted, |t| {
                    t.delete(&v.table, v.row_id)
                })
                .is_ok()
            }),
        );
        let report = checker.run_and_fix(&db);
        assert_eq!(report.fixed, 1);
        assert!(report.is_clean());
        // Second run: nothing left.
        assert!(checker.run(&db).is_clean());
        assert!(db.latest_committed("posts", 11).unwrap().is_none());
    }

    #[test]
    fn column_invariant_rule() {
        let db = fixture();
        let checker = ConsistencyChecker::new().rule(column_invariant(
            "posts",
            "posts-have-positive-topic",
            Predicate::ge("topic_id", 1),
            "topic_id must be positive",
        ));
        assert!(checker.run(&db).is_clean());
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.insert("posts", &[("id", 12.into()), ("topic_id", (-5).into())])
                .map(|_| ())
        })
        .unwrap();
        let report = checker.run(&db);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].row_id, 12);
    }

    #[test]
    fn run_and_fix_is_idempotent() {
        let db = fixture();
        let checker = ConsistencyChecker::new().rule(
            referential_integrity("posts", "topic_id", "topics").with_fix(|db, v| {
                db.run(IsolationLevel::ReadCommitted, |t| {
                    t.delete(&v.table, v.row_id)
                })
                .is_ok()
            }),
        );
        let first = checker.run_and_fix(&db);
        assert_eq!(first.fixed, 1);
        assert!(first.is_clean());
        // Second pass over the repaired database: nothing fires, nothing is
        // re-fixed — the report is exactly the no-op report.
        let second = checker.run_and_fix(&db);
        assert_eq!(second, Report::default());
    }

    #[test]
    fn later_rules_check_post_fix_state() {
        let db = fixture();
        // Rule 1 repairs the dangling reference; rule 2 is the same check
        // detection-only. Because each rule re-scans when its turn comes,
        // rule 2 must see the repaired table and stay quiet.
        let checker = ConsistencyChecker::new()
            .rule(
                referential_integrity("posts", "topic_id", "topics").with_fix(|db, v| {
                    db.run(IsolationLevel::ReadCommitted, |t| {
                        t.delete(&v.table, v.row_id)
                    })
                    .is_ok()
                }),
            )
            .rule(referential_integrity("posts", "topic_id", "topics"));
        let report = checker.run_and_fix(&db);
        assert_eq!(report.fixed, 1);
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn unfixable_violations_stay_reported() {
        let db = fixture();
        let checker = ConsistencyChecker::new()
            .rule(referential_integrity("posts", "topic_id", "topics").with_fix(|_, _| false));
        let report = checker.run_and_fix(&db);
        assert_eq!(report.fixed, 0);
        assert_eq!(report.violations.len(), 1);
    }

    #[test]
    fn empty_checker_is_clean() {
        let db = fixture();
        assert!(ConsistencyChecker::new().run(&db).is_clean());
    }
}
