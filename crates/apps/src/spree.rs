//! Spree (Ruby/Active Record): orders, payments, SKUs with the ORM touch
//! cascade.
//!
//! Scenarios reproduced:
//! * **§3.1.1** — `decrement_stock`: the ad hoc lock serializes only the
//!   SKU read–modify–write while the ORM-generated product/category
//!   touches run at the default isolation level; the database variant
//!   wraps *everything* (including the hidden cascade) in a Serializable
//!   transaction and suffers the §3.1.1 deadlocks/aborts on the shared
//!   Categories rows.
//! * **Table 6 `PBC`** — `add_payment`: the ad hoc variant locks the exact
//!   `order_id = ?` predicate with a value-keyed lock; the database
//!   variant (PostgreSQL Serializable) pays gap-granularity false
//!   conflicts (§3.3.2).
//! * **§4.1.1 (issue \[61\])** — pair with
//!   [`SfuLock::outside_transaction`](adhoc_core::locks::SfuLock) to
//!   reproduce the released-too-early lock, and use
//!   `omit_status_coordination` for the uncoordinated order-status write.
//! * **§4.2 (issue \[59\])** — `add_payment_json`: the forgotten ad hoc
//!   transaction in the JSON API handlers.
//! * **§4.3 (issue \[60\])** — `process_payment` with a crash mid-flight
//!   leaves a payment stuck in `processing`; `boot_recovery` is the fsck
//!   fix.

use crate::{Mode, Result, DBT_RETRIES};

use adhoc_core::checker::{stuck_state, BootRecovery, Report};
use adhoc_core::locks::AdHocLock;
use adhoc_orm::occ::run_occ;
use adhoc_orm::{Coordinator, EntityDef, Orm, OrmError, Registry, TouchVia};
use adhoc_storage::{Column, ColumnType, Database, DbError, IsolationLevel, Predicate, Schema};
use std::sync::Arc;

/// Create Spree's tables (including the §3.1.1 cascade chain) and registry.
pub fn setup(db: &Database) -> Result<Orm> {
    db.create_table(Schema::new(
        "orders",
        vec![
            Column::new("id", ColumnType::Int),
            Column::new("state", ColumnType::Str),
        ],
        "id",
    )?)?;
    db.create_table(
        Schema::new(
            "payments",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("order_id", ColumnType::Int),
                Column::new("state", ColumnType::Str),
            ],
            "id",
        )?
        .with_index("order_id")?,
    )?;
    db.create_table(Schema::new(
        "products",
        vec![
            Column::new("id", ColumnType::Int),
            Column::new("updated_at", ColumnType::Int),
        ],
        "id",
    )?)?;
    db.create_table(Schema::new(
        "categories",
        vec![
            Column::new("id", ColumnType::Int),
            Column::new("updated_at", ColumnType::Int),
        ],
        "id",
    )?)?;
    db.create_table(
        Schema::new(
            "product_categories",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("product_id", ColumnType::Int),
                Column::new("category_id", ColumnType::Int),
            ],
            "id",
        )?
        .with_index("product_id")?,
    )?;
    db.create_table(Schema::new(
        "skus",
        vec![
            Column::new("id", ColumnType::Int),
            Column::new("product_id", ColumnType::Int),
            Column::new("quantity", ColumnType::Int),
        ],
        "id",
    )?)?;
    let registry = Registry::new()
        .register(EntityDef::new("orders"))
        .register(EntityDef::new("payments"))
        .register(EntityDef::new("products"))
        .register(EntityDef::new("categories"))
        .register(EntityDef::new("product_categories"))
        .register(
            EntityDef::new("skus")
                .touch("product_id", "products")
                .touch_via(TouchVia {
                    fk_column: "product_id".into(),
                    join_table: "product_categories".into(),
                    join_left: "product_id".into(),
                    join_right: "category_id".into(),
                    parent_table: "categories".into(),
                }),
        );
    Ok(Orm::new(db.clone(), registry))
}

/// The Spree application model.
pub struct Spree {
    orm: Orm,
    lock: Arc<dyn AdHocLock>,
    coord: Coordinator,
    mode: Mode,
    /// §4.2 (issue \[61\]'s second half): leave the order-status write
    /// uncoordinated.
    omit_status_coordination: bool,
    /// Application-server CPU burned per request attempt (see
    /// [`crate::busy_work`]). Zero by default.
    pub request_cpu_work: std::time::Duration,
}

impl Spree {
    /// Build the application model over `orm`, coordinating with `lock` in the given [`Mode`].
    pub fn new(orm: Orm, lock: Arc<dyn AdHocLock>, mode: Mode) -> Self {
        let coord = Coordinator::new(orm.db().clone());
        Self {
            orm,
            lock,
            coord,
            mode,
            omit_status_coordination: false,
            request_cpu_work: std::time::Duration::ZERO,
        }
    }

    /// Set the per-attempt application-server CPU cost.
    pub fn with_request_cpu_work(mut self, d: std::time::Duration) -> Self {
        self.request_cpu_work = d;
        self
    }

    /// Fault injection (§4.2, issue \[61\]): leave the order-status write
    /// uncoordinated.
    pub fn omit_status_coordination(mut self) -> Self {
        self.omit_status_coordination = true;
        self
    }

    /// The underlying ORM handle (for assertions and seeding).
    pub fn orm(&self) -> &Orm {
        &self.orm
    }

    /// Seed a product in `n_categories` categories with one SKU.
    pub fn seed_catalog(
        &self,
        sku_id: i64,
        product_id: i64,
        categories: &[i64],
        quantity: i64,
    ) -> Result<()> {
        self.orm.transaction(|t| {
            t.create(
                "products",
                &[("id", product_id.into()), ("updated_at", 0.into())],
            )?;
            for c in categories {
                if t.find("categories", *c)?.is_none() {
                    t.create(
                        "categories",
                        &[("id", (*c).into()), ("updated_at", 0.into())],
                    )?;
                }
                t.create(
                    "product_categories",
                    &[
                        ("product_id", product_id.into()),
                        ("category_id", (*c).into()),
                    ],
                )?;
            }
            t.create(
                "skus",
                &[
                    ("id", sku_id.into()),
                    ("product_id", product_id.into()),
                    ("quantity", quantity.into()),
                ],
            )?;
            Ok(())
        })?;
        Ok(())
    }

    /// Seed a payment row directly (bench/test fixture).
    pub fn seed_payment(&self, order_id: i64) -> Result<()> {
        self.orm.transaction(|t| {
            t.raw().insert(
                "payments",
                &[("order_id", order_id.into()), ("state", "new".into())],
            )?;
            Ok(())
        })?;
        Ok(())
    }

    /// Seed an order in the "cart" state.
    pub fn seed_order(&self, order_id: i64) -> Result<()> {
        self.orm.create(
            "orders",
            &[("id", order_id.into()), ("state", "cart".into())],
        )?;
        Ok(())
    }

    /// §3.1.1: process an order — check and decrement SKU stock, persist
    /// through `ORM.save` (which drags the product/category touch cascade
    /// along), and advance the order state. Returns `false` on
    /// insufficient stock.
    pub fn decrement_stock(&self, order_id: i64, sku_id: i64, requested: i64) -> Result<bool> {
        match self.mode {
            Mode::Confluent => {
                // `quantity >= 0` is a budget invariant: escrow the
                // requested units off the per-SKU ledger (one lock-free
                // atomic, coordinating only near exhaustion), then commit
                // the decrement as a commutative delta alongside the blind
                // cascade writes. Concurrent orders on the same SKU never
                // validate against each other, so the §3.1.1 hot-SKU
                // aborts cannot exist even in principle.
                let reservation = match self
                    .orm
                    .db()
                    .escrow_reserve("skus", sku_id, "quantity", requested)
                {
                    Ok(r) => r,
                    Err(DbError::EscrowExhausted { .. }) => return Ok(false),
                    Err(e) => return Err(e.into()),
                };
                let product_id = self
                    .orm
                    .find_required("skus", sku_id)?
                    .get_int("product_id")?;
                let pc_schema = self.orm.db().schema("product_categories")?;
                self.orm.transaction(|t| {
                    t.raw().add_delta("skus", sku_id, "quantity", -requested)?;
                    t.raw()
                        .update("products", product_id, &[("updated_at", 1.into())])?;
                    let links = t.raw().scan(
                        "product_categories",
                        &Predicate::eq("product_id", product_id),
                    )?;
                    for (_, link) in &links {
                        let cat = link.get_int(&pc_schema, "category_id")?;
                        t.raw()
                            .update("categories", cat, &[("updated_at", 1.into())])?;
                    }
                    t.raw()
                        .update("orders", order_id, &[("state", "confirmed".into())])?;
                    Ok(())
                })?;
                reservation.confirm();
                Ok(true)
            }
            Mode::Cured => {
                // §7 cure: field-granular OCC validates only the columns
                // actually read (`quantity`). The touch cascade and the
                // order-status write are staged as blind writes — they
                // carry no read footprint, so concurrent orders sharing a
                // category never conflict (the §3.1.1 aborts vanish), yet
                // everything commits in one atomic validate-on-save.
                Ok(run_occ(&self.orm, &crate::cured_policy(), None, |occ| {
                    let sku = occ
                        .read_fields(&self.orm, "skus", sku_id, &["quantity", "product_id"])?
                        .ok_or(OrmError::RecordNotFound {
                            entity: "skus".into(),
                            id: sku_id,
                        })?;
                    let quantity = sku.get_int("quantity")?;
                    if quantity < requested {
                        return Ok(false);
                    }
                    let product_id = sku.get_int("product_id")?;
                    occ.stage_update(
                        "skus",
                        sku_id,
                        &[("quantity", (quantity - requested).into())],
                    );
                    occ.stage_update("products", product_id, &[("updated_at", 1.into())]);
                    let pc_schema = self.orm.db().schema("product_categories")?;
                    let links = self.orm.transaction(|t| {
                        Ok(t.raw().scan(
                            "product_categories",
                            &Predicate::eq("product_id", product_id),
                        )?)
                    })?;
                    for (_, link) in &links {
                        let cat = link.get_int(&pc_schema, "category_id")?;
                        occ.stage_update("categories", cat, &[("updated_at", 1.into())]);
                    }
                    occ.stage_update("orders", order_id, &[("state", "confirmed".into())]);
                    Ok(true)
                })?)
            }
            Mode::AdHoc => {
                let guard = self.lock.lock(&format!("sku:{sku_id}"))?;
                let mut sku = self.orm.find_required("skus", sku_id)?;
                let quantity = sku.get_int("quantity")?;
                let ok = if quantity >= requested {
                    sku.set("quantity", quantity - requested)?;
                    // ORM.save: the update plus the hidden cascade, all at
                    // the engine's default isolation.
                    self.orm.save(&mut sku)?;
                    true
                } else {
                    false
                };
                guard.unlock()?;
                if ok {
                    // The order-status write; the issue-[61] variant leaves
                    // it entirely uncoordinated.
                    if self.omit_status_coordination {
                        let order = self.orm.find_required("orders", order_id)?;
                        let state = order.get_str("state")?;
                        std::thread::yield_now();
                        if state == "cart" {
                            self.orm.transaction(|t| {
                                t.raw().update(
                                    "orders",
                                    order_id,
                                    &[("state", "confirmed".into())],
                                )?;
                                Ok(())
                            })?;
                        } else {
                            // Duplicate confirmation path: decrement again
                            // (the "duplicate decrements" consequence).
                            let mut sku = self.orm.find_required("skus", sku_id)?;
                            let q = sku.get_int("quantity")?;
                            sku.set("quantity", q - requested)?;
                            self.orm.save(&mut sku)?;
                        }
                    } else {
                        self.orm.transaction(|t| {
                            t.raw()
                                .update("orders", order_id, &[("state", "confirmed".into())])?;
                            Ok(())
                        })?;
                    }
                }
                Ok(ok)
            }
            Mode::DatabaseTxn => {
                let sku_schema = self.orm.db().schema("skus")?;
                let pc_schema = self.orm.db().schema("product_categories")?;
                Ok(self.orm.db().run_with_retries(
                    IsolationLevel::Serializable,
                    DBT_RETRIES,
                    |t| {
                        let sku = t.get("skus", sku_id)?.ok_or(DbError::NoSuchRow {
                            table: "skus".into(),
                            id: sku_id,
                        })?;
                        let quantity = sku.get_int(&sku_schema, "quantity")?;
                        if quantity < requested {
                            return Ok(false);
                        }
                        let product_id = sku.get_int(&sku_schema, "product_id")?;
                        t.update(
                            "skus",
                            sku_id,
                            &[("quantity", (quantity - requested).into())],
                        )?;
                        // The same statements the ORM generates (§3.1.1
                        // lines 8–13), now inside the Serializable txn.
                        t.update("products", product_id, &[("updated_at", 1.into())])?;
                        let links = t.scan(
                            "product_categories",
                            &Predicate::eq("product_id", product_id),
                        )?;
                        for (_, link) in &links {
                            let cat = link.get_int(&pc_schema, "category_id")?;
                            t.update("categories", cat, &[("updated_at", 1.into())])?;
                        }
                        t.update("orders", order_id, &[("state", "confirmed".into())])?;
                        Ok(true)
                    },
                )?)
            }
        }
    }

    /// Table 6 `PBC`: add a payment for an order unless one exists.
    /// Returns whether a payment was created.
    pub fn add_payment(&self, order_id: i64) -> Result<bool> {
        match self.mode {
            // Uniqueness ("at most one payment per order") is not
            // invariant-confluent — two coordination-free inserts merge
            // into a duplicate — so Confluent inherits the cure unchanged.
            Mode::Cured | Mode::Confluent => {
                crate::busy_work(self.request_cpu_work);
                // §7 cure: the same exact-equality predicate key the ad hoc
                // lock used, routed through the coordination façade — the
                // value granularity is kept, the hand-rolled lock table is
                // not.
                let guard = self
                    .coord
                    .user_lock(&format!("payments:order_id={order_id}"))?;
                let created = self.orm.transaction(|t| {
                    let existing = t
                        .raw()
                        .scan("payments", &Predicate::eq("order_id", order_id))?;
                    if !existing.is_empty() {
                        return Ok(false);
                    }
                    t.raw().insert(
                        "payments",
                        &[("order_id", order_id.into()), ("state", "new".into())],
                    )?;
                    Ok(true)
                })?;
                guard.unlock()?;
                Ok(created)
            }
            Mode::AdHoc => {
                crate::busy_work(self.request_cpu_work);
                // Predicate lock on the exact equality `order_id = ?`
                // (§3.3.2: "a concurrent hash table tracking locked
                // values").
                let guard = self.lock.lock(&format!("payments:order_id={order_id}"))?;
                let created = self.orm.transaction(|t| {
                    let existing = t
                        .raw()
                        .scan("payments", &Predicate::eq("order_id", order_id))?;
                    if !existing.is_empty() {
                        return Ok(false);
                    }
                    t.raw().insert(
                        "payments",
                        &[("order_id", order_id.into()), ("state", "new".into())],
                    )?;
                    Ok(true)
                })?;
                guard.unlock()?;
                Ok(created)
            }
            Mode::DatabaseTxn => Ok(self.orm.db().run_with_retries(
                IsolationLevel::Serializable,
                DBT_RETRIES,
                |t| {
                    crate::busy_work(self.request_cpu_work);
                    let existing = t.scan("payments", &Predicate::eq("order_id", order_id))?;
                    if !existing.is_empty() {
                        return Ok(false);
                    }
                    t.insert(
                        "payments",
                        &[("order_id", order_id.into()), ("state", "new".into())],
                    )?;
                    Ok(true)
                },
            )?),
        }
    }

    /// §4.2 (issue \[59\]): the JSON handler with the same functionality and
    /// *no* ad hoc transaction.
    pub fn add_payment_json(&self, order_id: i64) -> Result<bool> {
        let existing = self.orm.transaction(|t| {
            Ok(t.raw()
                .scan("payments", &Predicate::eq("order_id", order_id))?)
        })?;
        if !existing.is_empty() {
            return Ok(false);
        }
        std::thread::yield_now(); // the uncoordinated race window
        self.orm.transaction(|t| {
            t.raw().insert(
                "payments",
                &[("order_id", order_id.into()), ("state", "new".into())],
            )?;
            Ok(())
        })?;
        Ok(true)
    }

    /// Invariant (PBC): at most one payment per order.
    pub fn one_payment_per_order(&self, order_id: i64) -> Result<bool> {
        let payments = self.orm.transaction(|t| {
            Ok(t.raw()
                .scan("payments", &Predicate::eq("order_id", order_id))?)
        })?;
        Ok(payments.len() <= 1)
    }

    /// §4.3 (issue \[60\]): process an order's payment. `crash_midway`
    /// simulates the application server dying after marking the payment
    /// `processing` but before completing it.
    pub fn process_payment(&self, order_id: i64, crash_midway: bool) -> Result<bool> {
        if self.mode.on_cured_layer() {
            // §7 cure: one atomic state transition. The intermediate
            // `processing` mark never commits on its own, so a mid-flight
            // crash leaves nothing stuck — §4.3 [60] cannot occur and the
            // boot-time fsck has nothing to repair.
            let schema = self.orm.db().schema("payments")?;
            return Ok(self.orm.transaction(|t| {
                let payments = t
                    .raw()
                    .scan("payments", &Predicate::eq("order_id", order_id))?;
                let Some((payment_id, row)) = payments.into_iter().next() else {
                    return Ok(false);
                };
                if row.get_str(&schema, "state")? != "new" {
                    return Ok(false);
                }
                if crash_midway {
                    // The handler dies here; the transaction never commits
                    // and the payment stays processable.
                    return Ok(false);
                }
                t.raw()
                    .update("payments", payment_id, &[("state", "completed".into())])?;
                Ok(true)
            })?);
        }
        let schema = self.orm.db().schema("payments")?;
        let payments = self.orm.transaction(|t| {
            Ok(t.raw()
                .scan("payments", &Predicate::eq("order_id", order_id))?)
        })?;
        let Some((payment_id, row)) = payments.into_iter().next() else {
            return Ok(false);
        };
        let state = row.get_str(&schema, "state")?;
        if state == "processing" {
            // §4.3: "Spree can neither initiate new payment operations due
            // to the unfinished ones nor resume [them]".
            return Ok(false);
        }
        if state == "completed" {
            return Ok(false);
        }
        self.orm.transaction(|t| {
            t.raw()
                .update("payments", payment_id, &[("state", "processing".into())])?;
            Ok(())
        })?;
        if crash_midway {
            // The request handler dies here; the commit above is durable.
            return Ok(false);
        }
        self.orm.transaction(|t| {
            t.raw()
                .update("payments", payment_id, &[("state", "completed".into())])?;
            Ok(())
        })?;
        Ok(true)
    }

    /// The boot-time consistency fix for issue \[60\]: reset payments stuck
    /// in `processing` back to `new` so check-out can resume. Thin wrapper
    /// over the generic [`boot_fsck`] pass, returning the reset count the
    /// crash-recovery property tests assert on.
    pub fn boot_recovery(&self) -> Result<usize> {
        Ok(self.recover_on_boot().fixed)
    }

    /// Run [`boot_fsck`] against this instance's database.
    pub fn recover_on_boot(&self) -> Report {
        boot_fsck().recover_on_boot(self.orm.db())
    }

    /// Invariant (§3.1.1): SKU stock never goes negative and reflects
    /// exactly the successful decrements.
    pub fn sku_quantity(&self, sku_id: i64) -> Result<i64> {
        Ok(self
            .orm
            .find_required("skus", sku_id)?
            .get_int("quantity")?)
    }
}

/// Spree's boot-time recovery pass (§4.3, issue \[60\]): a crash between
/// the `processing` mark and the completion write leaves the payment state
/// machine stuck — neither processable nor resumable. On boot, stuck
/// payments reset to `new` so check-out can resume.
pub fn boot_fsck() -> BootRecovery {
    BootRecovery::new("spree").rule(stuck_state("payments", "state", "processing", "new"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_core::locks::{MemLock, SfuLock};
    use adhoc_storage::EngineProfile;

    fn fixture(mode: Mode, profile: EngineProfile) -> Spree {
        let db = Database::in_memory(profile);
        let orm = setup(&db).unwrap();
        let app = Spree::new(orm, Arc::new(MemLock::new()), mode);
        app.seed_catalog(1, 1, &[10, 11], 1000).unwrap();
        app.seed_order(1).unwrap();
        app
    }

    #[test]
    fn decrement_stock_works_in_both_modes() {
        for mode in [Mode::AdHoc, Mode::DatabaseTxn] {
            let app = fixture(mode, EngineProfile::MySqlLike);
            assert!(app.decrement_stock(1, 1, 3).unwrap());
            assert_eq!(app.sku_quantity(1).unwrap(), 997, "{mode:?}");
            assert_eq!(
                app.orm
                    .find_required("orders", 1)
                    .unwrap()
                    .get_str("state")
                    .unwrap(),
                "confirmed"
            );
        }
    }

    #[test]
    fn insufficient_stock_is_refused() {
        let app = fixture(Mode::AdHoc, EngineProfile::MySqlLike);
        assert!(!app.decrement_stock(1, 1, 5000).unwrap());
        assert_eq!(app.sku_quantity(1).unwrap(), 1000);
    }

    #[test]
    fn concurrent_decrements_conserve_stock_adhoc() {
        let app = Arc::new(fixture(Mode::AdHoc, EngineProfile::MySqlLike));
        std::thread::scope(|s| {
            for _ in 0..6 {
                let app = Arc::clone(&app);
                s.spawn(move || {
                    for _ in 0..10 {
                        assert!(app.decrement_stock(1, 1, 1).unwrap());
                    }
                });
            }
        });
        assert_eq!(app.sku_quantity(1).unwrap(), 1000 - 60);
    }

    #[test]
    fn concurrent_decrements_conserve_stock_dbt_despite_cascade_aborts() {
        // The §3.1.1 pain: the Serializable txn includes the category
        // touches shared across orders; retries keep it correct but cost.
        let app = Arc::new(fixture(Mode::DatabaseTxn, EngineProfile::MySqlLike));
        let barrier = Arc::new(std::sync::Barrier::new(4));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let app = Arc::clone(&app);
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    for _ in 0..8 {
                        assert!(app.decrement_stock(1, 1, 1).unwrap());
                    }
                });
            }
        });
        // Correctness is unconditional; conflict counts depend on actual
        // overlap, so they are reported rather than asserted.
        assert_eq!(app.sku_quantity(1).unwrap(), 1000 - 32);
        let stats = app.orm().db().stats();
        let _conflicts = stats.lock_stats.deadlocks + stats.serialization_failures;
    }

    #[test]
    fn sfu_outside_transaction_loses_stock_updates() {
        // §4.1.1 [61]: the SFU "lock" that releases immediately.
        let db = Database::in_memory(EngineProfile::PostgresLike);
        let orm = setup(&db).unwrap();
        let broken = Arc::new(SfuLock::new(db.clone()).outside_transaction());
        let app = Arc::new(Spree::new(orm, broken, Mode::AdHoc));
        app.seed_catalog(1, 1, &[10], 100_000).unwrap();
        app.seed_order(1).unwrap();
        // The lost update needs real thread overlap, which one busy CPU
        // doesn't always produce in a single round — repeat the racing
        // round until the bug manifests (each loss leaves the quantity
        // above the exact-decrement count, which is what we assert).
        let mut manifested = false;
        for round in 1..=20u32 {
            std::thread::scope(|s| {
                for _ in 0..8 {
                    let app = Arc::clone(&app);
                    s.spawn(move || {
                        for _ in 0..40 {
                            app.decrement_stock(1, 1, 1).unwrap();
                        }
                    });
                }
            });
            let q = app.sku_quantity(1).unwrap();
            if q > 100_000 - 320 * round as i64 {
                manifested = true;
                break;
            }
        }
        assert!(
            manifested,
            "lost decrements expected with the broken SFU lock"
        );
    }

    #[test]
    fn add_payment_is_exactly_once_in_both_modes() {
        for mode in [Mode::AdHoc, Mode::DatabaseTxn] {
            let app = Arc::new(fixture(mode, EngineProfile::PostgresLike));
            let created: usize = std::thread::scope(|s| {
                (0..8)
                    .map(|_| {
                        let app = Arc::clone(&app);
                        s.spawn(move || app.add_payment(1).unwrap() as usize)
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .sum()
            });
            assert_eq!(created, 1, "{mode:?}");
            assert!(app.one_payment_per_order(1).unwrap(), "{mode:?}");
        }
    }

    #[test]
    fn forgotten_json_handler_duplicates_payments() {
        // §4.2 [59]: the JSON path has no lock; racing it against itself
        // (or the HTML path) duplicates payments.
        let mut violated = false;
        for _ in 0..100 {
            let app = Arc::new(fixture(Mode::AdHoc, EngineProfile::PostgresLike));
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let app = Arc::clone(&app);
                    s.spawn(move || {
                        app.add_payment_json(1).unwrap();
                    });
                }
            });
            if !app.one_payment_per_order(1).unwrap() {
                violated = true;
                break;
            }
        }
        assert!(violated, "the uncoordinated JSON handler must duplicate");
    }

    #[test]
    fn crashed_payment_blocks_checkout_until_boot_recovery() {
        let app = fixture(Mode::AdHoc, EngineProfile::PostgresLike);
        assert!(app.add_payment(1).unwrap());
        // Crash mid-processing.
        assert!(!app.process_payment(1, true).unwrap());
        // §4.3 [60]: stuck — neither processable nor resumable.
        assert!(!app.process_payment(1, false).unwrap());
        // The boot-time fix resets it and checkout resumes.
        assert_eq!(app.boot_recovery().unwrap(), 1);
        assert!(app.process_payment(1, false).unwrap());
        let schema = app.orm().db().schema("payments").unwrap();
        let payments = app
            .orm()
            .transaction(|t| Ok(t.raw().scan("payments", &Predicate::eq("order_id", 1))?))
            .unwrap();
        assert_eq!(
            payments[0].1.get_str(&schema, "state").unwrap(),
            "completed"
        );
    }

    #[test]
    fn omitted_status_coordination_double_decrements() {
        // §4.2 [61]: with the order-status write uncoordinated, a second
        // check-out that observes the already-confirmed order takes the
        // duplicate-confirmation path and decrements stock twice. The
        // consequence is deterministic once the interleaving occurs; drive
        // it directly.
        let db = Database::in_memory(EngineProfile::PostgresLike);
        let orm = setup(&db).unwrap();
        let app = Spree::new(orm, Arc::new(MemLock::new()), Mode::AdHoc).omit_status_coordination();
        app.seed_catalog(1, 1, &[10], 1000).unwrap();
        app.seed_order(1).unwrap();
        assert!(app.decrement_stock(1, 1, 1).unwrap()); // confirms the order
        assert!(app.decrement_stock(1, 1, 1).unwrap()); // duplicate path
        assert_eq!(
            app.sku_quantity(1).unwrap(),
            997,
            "two successful check-outs removed three units"
        );
        // The correctly coordinated variant decrements exactly once per call.
        let db = Database::in_memory(EngineProfile::PostgresLike);
        let orm = setup(&db).unwrap();
        let fixed = Spree::new(orm, Arc::new(MemLock::new()), Mode::AdHoc);
        fixed.seed_catalog(1, 1, &[10], 1000).unwrap();
        fixed.seed_order(1).unwrap();
        assert!(fixed.decrement_stock(1, 1, 1).unwrap());
        assert!(fixed.decrement_stock(1, 1, 1).unwrap());
        assert_eq!(fixed.sku_quantity(1).unwrap(), 998);
    }
    #[test]
    fn order_row_footprints_are_localized_and_independent() {
        let app = fixture(Mode::AdHoc, EngineProfile::PostgresLike);
        let fps: Vec<_> = (2..=7)
            .map(|id| {
                app.seed_order(id).unwrap();
                crate::observed_footprint(&app.orm, |t| {
                    t.raw().update("orders", id, &[("state", "cart".into())])?;
                    Ok(())
                })
                .unwrap()
                .1
            })
            .collect();
        crate::test_support::assert_localized_and_independent(&fps);
    }
}
