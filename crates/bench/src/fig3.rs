//! Figure 3: API throughput under the four coordination granularities,
//! ad hoc transactions (`AHT`) vs database transactions (`DBT`), with and
//! without contention (Table 6's setups).

use adhoc_apps::{broadleaf, discourse, spree, Mode};
use adhoc_core::locks::{AcquireConfig, KvMultiLock, MemLock};
use adhoc_core::taxonomy::Granularity;
use adhoc_kv::{Client, Store};
use adhoc_sim::{LatencyModel, RealClock};
use adhoc_storage::{Database, DbConfig, EngineProfile, IsolationLevel};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One Table 6 row.
#[derive(Debug, Clone)]
pub struct GranularitySetup {
    /// The coordination granularity this row evaluates.
    pub granularity: Granularity,
    /// Evaluated API name(s).
    pub api: &'static str,
    /// Application the API comes from.
    pub application: &'static str,
    /// Table 6's contended-workload description.
    pub workload_with_contention: &'static str,
    /// Engine profile the paper used for this row.
    pub rdbms: EngineProfile,
    /// The weakest sufficient isolation level for the DBT rewrite.
    pub dbt_isolation: IsolationLevel,
}

/// Table 6: the four evaluated APIs and their setups.
pub static SETUPS: &[GranularitySetup] = &[
    GranularitySetup {
        granularity: Granularity::Rmw,
        api: "check-out",
        application: "Broadleaf",
        workload_with_contention: "Customers purchase the same SKU.",
        rdbms: EngineProfile::MySqlLike,
        dbt_isolation: IsolationLevel::Serializable,
    },
    GranularitySetup {
        granularity: Granularity::AssociatedAccess,
        api: "like-post",
        application: "Discourse",
        workload_with_contention: "Users like different posts of seven contended topics.",
        rdbms: EngineProfile::PostgresLike,
        dbt_isolation: IsolationLevel::Serializable,
    },
    GranularitySetup {
        granularity: Granularity::ColumnBased,
        api: "create-post & toggle-answer",
        application: "Discourse",
        workload_with_contention:
            "User pairs share topics: one creates posts, one accepts answers.",
        rdbms: EngineProfile::PostgresLike,
        dbt_isolation: IsolationLevel::RepeatableRead,
    },
    GranularitySetup {
        granularity: Granularity::PredicateBased,
        api: "add-payment",
        application: "Spree",
        workload_with_contention: "Customers submit payment options for new orders.",
        rdbms: EngineProfile::PostgresLike,
        dbt_isolation: IsolationLevel::Serializable,
    },
];

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// Concurrent client threads.
    pub threads: usize,
    /// Measurement window.
    pub duration: Duration,
    /// Physical costs for the RDBMS and the KV store (both "networked").
    pub latency: LatencyModel,
    /// Application-server CPU per request attempt. This is the §5.2
    /// bottleneck: the paper's peak throughputs (~100-350 req/s) are app-
    /// tier CPU bound, so wasted (retried) attempts cost real capacity.
    pub request_cpu_work: Duration,
    /// Run the contended (Table 6) workload vs. the uncontended control.
    pub contention: bool,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Self {
            threads: 14,
            duration: Duration::from_millis(400),
            // Scaled-down LAN: decisive ratios preserved, wall time small.
            latency: LatencyModel {
                kv_round_trip: Duration::from_micros(10),
                sql_round_trip: Duration::from_micros(50),
                durable_flush: Duration::from_micros(100),
                ..LatencyModel::zero()
            },
            request_cpu_work: Duration::from_micros(150),
            contention: true,
        }
    }
}

/// One measured bar.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// The measured granularity.
    pub granularity: Granularity,
    /// AHT or DBT.
    pub mode: Mode,
    /// Whether the contended workload ran.
    pub contention: bool,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Total completed requests in the window.
    pub completed: usize,
    /// Deadlock victims the engine chose during the run.
    pub deadlocks: u64,
    /// Serialization failures during the run.
    pub serialization_failures: u64,
}

fn networked_db(profile: EngineProfile, latency: LatencyModel) -> Database {
    Database::new(DbConfig::networked(profile, RealClock::shared(), latency))
}

/// Generic duration-bounded multi-threaded driver.
fn drive(
    threads: usize,
    duration: Duration,
    worker: impl Fn(usize, &AtomicBool) -> usize + Sync,
) -> (usize, Duration) {
    let stop = AtomicBool::new(false);
    let completed = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let stop = &stop;
            let completed = &completed;
            let worker = &worker;
            s.spawn(move || {
                let n = worker(t, stop);
                completed.fetch_add(n, Ordering::Relaxed);
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });
    (completed.load(Ordering::Relaxed), start.elapsed())
}

/// Run one (granularity, mode, contention) cell and return its bar.
pub fn run_granularity(granularity: Granularity, mode: Mode, cfg: &Fig3Config) -> Fig3Row {
    let (completed, elapsed, db) = match granularity {
        Granularity::Rmw => run_rmw(mode, cfg),
        Granularity::AssociatedAccess => run_aa(mode, cfg),
        Granularity::ColumnBased => run_cbc(mode, cfg),
        Granularity::PredicateBased => run_pbc(mode, cfg),
    };
    let stats = db.stats();
    Fig3Row {
        granularity,
        mode,
        contention: cfg.contention,
        throughput_rps: completed as f64 / elapsed.as_secs_f64(),
        completed,
        deadlocks: stats.lock_stats.deadlocks,
        serialization_failures: stats.serialization_failures,
    }
}

/// Table 6 RMW: Broadleaf check-out on a MySQL-like engine.
fn run_rmw(mode: Mode, cfg: &Fig3Config) -> (usize, Duration, Database) {
    let db = networked_db(EngineProfile::MySqlLike, cfg.latency);
    let orm = broadleaf::setup(&db).expect("schema");
    let app = Arc::new(
        broadleaf::Broadleaf::new(orm, Arc::new(MemLock::new()), mode)
            .with_request_cpu_work(cfg.request_cpu_work),
    );
    for sku in 0..cfg.threads as i64 {
        app.seed_sku(sku + 1, i64::MAX / 2).expect("seed");
    }
    let contention = cfg.contention;
    let threads = cfg.threads;
    let (completed, elapsed) = drive(threads, cfg.duration, |t, stop| {
        let sku = if contention { 1 } else { t as i64 + 1 };
        let mut n = 0;
        while !stop.load(Ordering::Relaxed) {
            assert!(app.check_out(sku, 1).expect("checkout"));
            n += 1;
        }
        n
    });
    (completed, elapsed, db)
}

/// Table 6 AA: Discourse like-post on a PostgreSQL-like engine.
fn run_aa(mode: Mode, cfg: &Fig3Config) -> (usize, Duration, Database) {
    let db = networked_db(EngineProfile::PostgresLike, cfg.latency);
    let orm = discourse::setup(&db).expect("schema");
    let kv = Client::new(Store::new(), RealClock::shared(), cfg.latency);
    // Discourse's real lock, polling fast enough not to dominate handoff.
    let lock = Arc::new(KvMultiLock::new(kv).with_config(AcquireConfig {
        retry_interval: Duration::from_micros(100),
        timeout: Duration::from_secs(30),
    }));
    let app = Arc::new(
        discourse::Discourse::new(orm, lock, mode).with_request_cpu_work(cfg.request_cpu_work),
    );

    // With contention: 7 contended topics, users like *different* posts.
    // Without: one private topic per thread.
    let contended_topics = 7usize;
    let posts_per_topic = cfg.threads.max(4);
    let mut post_ids: Vec<Vec<i64>> = Vec::new();
    let topics = if cfg.contention {
        contended_topics
    } else {
        cfg.threads
    };
    for topic in 0..topics as i64 {
        app.seed_topic(topic + 1).expect("seed");
        let mut ids = Vec::new();
        for p in 0..posts_per_topic {
            ids.push(
                app.seed_post(topic + 1, &format!("post {p}"), 0)
                    .expect("seed post"),
            );
        }
        post_ids.push(ids);
    }
    let contention = cfg.contention;
    let (completed, elapsed) = drive(cfg.threads, cfg.duration, |t, stop| {
        let topic = if contention { t % contended_topics } else { t };
        // Each worker likes its own post of the (possibly shared) topic.
        let post = post_ids[topic][t % posts_per_topic];
        let mut n = 0;
        while !stop.load(Ordering::Relaxed) {
            app.like_post(post).expect("like");
            n += 1;
        }
        n
    });
    (completed, elapsed, db)
}

/// Table 6 CBC: Discourse create-post & toggle-answer at PG Repeatable Read.
fn run_cbc(mode: Mode, cfg: &Fig3Config) -> (usize, Duration, Database) {
    let db = networked_db(EngineProfile::PostgresLike, cfg.latency);
    let orm = discourse::setup(&db).expect("schema");
    let kv = Client::new(Store::new(), RealClock::shared(), cfg.latency);
    let lock = Arc::new(KvMultiLock::new(kv).with_config(AcquireConfig {
        retry_interval: Duration::from_micros(100),
        timeout: Duration::from_secs(30),
    }));
    let app = Arc::new(
        discourse::Discourse::new(orm, lock, mode).with_request_cpu_work(cfg.request_cpu_work),
    );

    // Pairs of threads share a topic under contention; otherwise one topic
    // per thread.
    let pairs = cfg.threads.div_ceil(2);
    let topics = if cfg.contention { pairs } else { cfg.threads };
    let mut seed_posts = Vec::new();
    for topic in 0..topics as i64 {
        app.seed_topic(topic + 1).expect("seed");
        seed_posts.push(app.seed_post(topic + 1, "seed", 0).expect("seed post"));
    }
    let contention = cfg.contention;
    let (completed, elapsed) = drive(cfg.threads, cfg.duration, |t, stop| {
        let topic = if contention {
            (t / 2) as i64 + 1
        } else {
            t as i64 + 1
        };
        let answer_post = seed_posts[(topic - 1) as usize];
        let creator = t % 2 == 0;
        let mut n = 0;
        while !stop.load(Ordering::Relaxed) {
            if creator || !contention {
                app.create_post(topic, "reply").expect("create");
            } else {
                app.toggle_answer(topic, answer_post).expect("toggle");
            }
            n += 1;
        }
        n
    });
    (completed, elapsed, db)
}

/// Table 6 PBC: Spree add-payment at PG Serializable.
fn run_pbc(mode: Mode, cfg: &Fig3Config) -> (usize, Duration, Database) {
    let db = networked_db(EngineProfile::PostgresLike, cfg.latency);
    let orm = spree::setup(&db).expect("schema");
    let app = Arc::new(
        spree::Spree::new(orm, Arc::new(MemLock::new()), mode)
            .with_request_cpu_work(cfg.request_cpu_work),
    );

    // Seed payments for orders 1..=100 so the order_id index has keys.
    for order in 1..=100i64 {
        app.seed_payment(order).expect("seed");
    }
    // With contention: fresh (maximal) order ids — everyone scans the open
    // interval (latest, +inf). Without: disjoint odd ids between existing
    // even neighbours.
    let next_fresh = AtomicI64::new(1_000);
    if !cfg.contention {
        for k in 101..=(100 + 512) {
            // payments at even ids leave narrow odd gaps
            app.seed_payment(2 * k).expect("seed");
        }
    }
    let contention = cfg.contention;
    let (completed, elapsed) = drive(cfg.threads, cfg.duration, |t, stop| {
        let mut n = 0;
        let mut local = 0i64;
        while !stop.load(Ordering::Relaxed) {
            let order = if contention {
                next_fresh.fetch_add(1, Ordering::Relaxed)
            } else {
                local += 1;
                2 * (101 + (local * cfg.threads as i64 + t as i64) % 512) + 1
            };
            // Each order is fresh, so the insert happens (returns true);
            // non-contended odd slots may repeat across rounds, in which
            // case the API correctly reports "already paid".
            app.add_payment(order).expect("payment");
            n += 1;
        }
        n
    });
    (completed, elapsed, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_sim::stats::geometric_mean;

    fn quick_cfg(contention: bool) -> Fig3Config {
        Fig3Config {
            duration: Duration::from_millis(300),
            contention,
            ..Fig3Config::default()
        }
    }

    /// Figure 3(a): with contention, AHT outperforms DBT on every
    /// granularity (paper: up to 1.3×, geometric mean ≈ 1.2–1.6×
    /// depending on setup).
    #[test]
    fn contended_aht_beats_dbt() {
        let _serial = crate::SERIAL_MEASUREMENTS.lock();
        let cfg = quick_cfg(true);
        let mut ratios = Vec::new();
        for setup in SETUPS {
            let aht = run_granularity(setup.granularity, Mode::AdHoc, &cfg);
            let dbt = run_granularity(setup.granularity, Mode::DatabaseTxn, &cfg);
            let ratio = aht.throughput_rps / dbt.throughput_rps;
            ratios.push(ratio);
            assert!(
                ratio > 0.95,
                "{}: AHT ({:.0} rps) must not lose to DBT ({:.0} rps)",
                setup.granularity,
                aht.throughput_rps,
                dbt.throughput_rps
            );
        }
        let geo = geometric_mean(&ratios).expect("ratios");
        assert!(
            geo > 1.05,
            "geometric-mean speedup must be visible (got {geo:.3}: {ratios:?})"
        );
    }

    /// Figure 3(b): without contention, AHT and DBT are comparable.
    #[test]
    fn uncontended_aht_and_dbt_are_similar() {
        let _serial = crate::SERIAL_MEASUREMENTS.lock();
        let cfg = quick_cfg(false);
        for setup in SETUPS {
            let aht = run_granularity(setup.granularity, Mode::AdHoc, &cfg);
            let dbt = run_granularity(setup.granularity, Mode::DatabaseTxn, &cfg);
            let ratio = aht.throughput_rps / dbt.throughput_rps;
            assert!(
                (0.4..2.5).contains(&ratio),
                "{}: uncontended ratio {ratio:.2} out of band ({:.0} vs {:.0} rps)",
                setup.granularity,
                aht.throughput_rps,
                dbt.throughput_rps
            );
        }
    }

    #[test]
    fn table6_lists_four_setups() {
        assert_eq!(SETUPS.len(), 4);
        assert_eq!(SETUPS[0].granularity, Granularity::Rmw);
        assert_eq!(SETUPS[0].rdbms, EngineProfile::MySqlLike);
        assert_eq!(SETUPS[2].dbt_isolation, IsolationLevel::RepeatableRead);
    }
}
