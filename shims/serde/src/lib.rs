//! Offline stand-in for `serde`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (no serialization
//! is performed anywhere — the derives exist so downstream consumers of the
//! real crates could serialize configs). This shim keeps those derive
//! attributes compiling without network access: the derive macros expand to
//! marker-trait impls.

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
