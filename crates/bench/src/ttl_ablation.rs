//! Ablation: lease TTL versus critical-section length.
//!
//! The Mastodon bug (§4.1.1, issue \[65\]) is quantitative at heart: a
//! lease is safe only while the TTL comfortably exceeds the critical
//! section. This ablation sweeps the ratio and measures how often a 1-use
//! invitation gets over-redeemed — the safety cliff the paper's fix
//! (checking expiry, or sizing the TTL) exists to avoid.

use adhoc_apps::{mastodon, Mode};
use adhoc_core::locks::{AcquireConfig, KvSetNxLock};
use adhoc_kv::{Client, Store};
use adhoc_sim::{LatencyModel, RealClock};
use adhoc_storage::{Database, EngineProfile};
use std::sync::Arc;
use std::time::Duration;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct TtlAblationRow {
    /// critical-section length ÷ lease TTL.
    pub cs_over_ttl: f64,
    /// Trials in which more than one redeemer succeeded on a 1-use invite.
    pub overuse_trials: usize,
    /// Total trials run.
    pub trials: usize,
}

/// Run the sweep: for each ratio, `trials` runs of four concurrent
/// redeemers against a 1-use invitation guarded by a TTL'd `SETNX` lock
/// whose expiry nobody checks (the Mastodon configuration).
pub fn run_ttl_ablation(ratios: &[f64], trials: usize) -> Vec<TtlAblationRow> {
    // Wide enough that scheduling noise on a loaded host cannot push a
    // sub-TTL critical section past the lease and fake an overuse.
    let ttl = Duration::from_millis(20);
    ratios
        .iter()
        .map(|ratio| {
            let cs = Duration::from_secs_f64(ttl.as_secs_f64() * ratio);
            let mut overuse_trials = 0;
            for _ in 0..trials {
                let db = Database::in_memory(EngineProfile::PostgresLike);
                let orm = mastodon::setup(&db).expect("schema");
                let kv = Client::new(Store::new(), RealClock::shared(), LatencyModel::zero());
                let lease = KvSetNxLock::new(kv.clone())
                    .with_ttl(ttl)
                    .with_config(AcquireConfig {
                        retry_interval: Duration::from_micros(200),
                        timeout: Duration::from_secs(5),
                    });
                let app = Arc::new(
                    mastodon::Mastodon::new(orm, kv, Arc::new(lease), Mode::AdHoc)
                        .with_critical_section_delay(cs),
                );
                app.seed_invite(1, 1).expect("seed");
                let successes: usize = std::thread::scope(|s| {
                    (0..4)
                        .map(|_| {
                            let app = Arc::clone(&app);
                            s.spawn(move || app.redeem_invite(1).expect("redeem") as usize)
                        })
                        .collect::<Vec<_>>()
                        .into_iter()
                        .map(|h| h.join().expect("join"))
                        .sum()
                });
                if successes > 1 {
                    overuse_trials += 1;
                }
            }
            TtlAblationRow {
                cs_over_ttl: *ratio,
                overuse_trials,
                trials,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The safety cliff: well under the TTL the invitation limit holds;
    /// well past it, overuse becomes routine.
    #[test]
    fn ttl_safety_cliff() {
        let _serial = crate::SERIAL_MEASUREMENTS.lock();
        let rows = run_ttl_ablation(&[0.25, 4.0], 10);
        assert_eq!(
            rows[0].overuse_trials, 0,
            "cs ≪ ttl must stay safe: {rows:?}"
        );
        assert!(
            rows[1].overuse_trials > rows[1].trials / 2,
            "cs ≫ ttl must overuse routinely: {rows:?}"
        );
    }
}
