//! Modeled workloads for the eight applications the paper studies
//! (Table 2), with every concrete scenario from the paper's listings.
//!
//! Each module reproduces one application's relevant data model and APIs.
//! APIs come in an **ad-hoc-transaction** variant ([`Mode::AdHoc`], the
//! original code) and a **database-transaction** variant
//! ([`Mode::DatabaseTxn`], the paper's §5 rewrite used as the `DBT`
//! baseline), and — where the paper found a bug — in buggy and fixed
//! configurations.
//!
//! | Module | Paper scenarios |
//! |---|---|
//! | [`broadleaf`] | Fig. 1a cart totals; RMW check-out (Table 6); LRU-evicted lock (§4.1.1); omitted SKU coordination (§4.2) |
//! | [`discourse`] | create-post + toggle-answer (CBC, §3.3.2); like-post (AA, Table 6); multi-request edit-post (§3.1.2); shrink-image rollback strategies (§3.4.1, Fig. 4); MiniSql reviewables (§4.1.2); lock-after-read (§4.1.1) |
//! | [`mastodon`] | Fig. 1b invites; Fig. 1c polls; Redis/RDBMS timelines (§3.1.3); TTL lease expiry (§4.1.1) |
//! | [`spree`] | §3.1.1 stock decrement with ORM cascade; add-payment predicate locking (PBC, §3.3.2); SFU-outside-transaction (§4.1.1); forgotten JSON handlers (§4.2); crashed payments (§4.3) |
//! | [`saleor`] | §3.2.1 FOR-UPDATE stock allocation; payment capture with re-entrant KV lock |
//! | [`redmine`] | issue tracking with FOR-UPDATE coordination |
//! | [`scm_suite`] | balance updates under `synchronized` (incl. the thread-local bug, §4.1.1) |
//! | [`jumpserver`] | privilege grants and asset updates (the one studied app with zero buggy cases) |

#![warn(missing_docs)]

pub mod admission;
pub mod broadleaf;
pub mod discourse;
pub mod jumpserver;
pub mod mastodon;
pub mod redmine;
pub mod saleor;
pub mod scm_suite;
pub mod spree;

/// Which coordination approach an API call uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// The application's original ad hoc transaction (`AHT` in Figure 3).
    AdHoc,
    /// The paper's database-transaction rewrite at the weakest sufficient
    /// isolation level (`DBT` in Figure 3).
    DatabaseTxn,
    /// The §7 cure: the same API re-based onto the declarative layer —
    /// [`adhoc_orm::occ`] optimistic transactions with automatic retry
    /// and the [`adhoc_orm::coord`] coordination façade. Every operation
    /// is one atomic validate-and-commit, so the paper's bug catalog
    /// empties (the cured oracle sweeps assert zero findings).
    Cured,
    /// Coordination-avoiding execution: operations whose invariants are
    /// invariant-confluent (counter bumps, dedupe-set inserts) commit as
    /// commutative deltas with **no** validation footprint, and budget
    /// invariants (`stock >= 0`) run under escrow reservations that only
    /// coordinate near exhaustion. Operations that genuinely require
    /// coordination (see `adhoc-study`'s `confluence` classification)
    /// fall back to the [`Cured`](Self::Cured) path unchanged.
    Confluent,
}

impl Mode {
    /// Figure 3 label for this mode.
    pub fn label(self) -> &'static str {
        match self {
            Mode::AdHoc => "AHT",
            Mode::DatabaseTxn => "DBT",
            Mode::Cured => "CURED",
            Mode::Confluent => "CONF",
        }
    }

    /// True for the modes that run on the declarative §7 layer (OCC +
    /// coordination façade): `Confluent` is `Cured` plus the
    /// coordination-avoiding fast paths, so every operation without a
    /// specialized confluent path executes the cured one.
    pub fn on_cured_layer(self) -> bool {
        matches!(self, Mode::Cured | Mode::Confluent)
    }
}

/// Retry policy used by every `Mode::Cured` optimistic loop: effectively
/// unbounded attempts (matching [`DBT_RETRIES`]' spirit) with short
/// exponential backoff, so contended cured benchmarks never fail
/// spuriously while conflicts still back off each other.
pub fn cured_policy() -> adhoc_sim::RetryPolicy {
    adhoc_sim::RetryPolicy::exponential(
        100_000,
        std::time::Duration::from_micros(20),
        std::time::Duration::from_micros(500),
    )
}

/// Result alias shared by the application models.
pub type Result<T> = adhoc_core::Result<T>;

/// Run one ORM transaction block and return its result together with the
/// conflict [`Footprint`](adhoc_storage::Footprint) the block accumulated
/// (captured just before commit).
///
/// This is how the application layer reasons about contention on the
/// sharded engine: two API calls whose observed footprints are
/// [disjoint](adhoc_storage::Footprint::is_disjoint) share no commit-time
/// lock, so they scale independently — the per-module footprint tests use
/// it to pin down which scenarios actually contend.
pub fn observed_footprint<R>(
    orm: &adhoc_orm::Orm,
    f: impl FnOnce(&mut adhoc_orm::OrmTxn<'_>) -> adhoc_orm::Result<R>,
) -> Result<(R, adhoc_storage::Footprint)> {
    Ok(orm.transaction(|t| {
        let r = f(t)?;
        let fp = t.footprint();
        Ok((r, fp))
    })?)
}

/// Retry budget used by DBT variants when the engine aborts them
/// (deadlock victims, serialization failures). High enough that
/// throughput benchmarks never fail spuriously.
pub(crate) const DBT_RETRIES: usize = 1000;

/// Burn real CPU for about `d` — stands in for the application-server work
/// of one request attempt (parsing, templating, ORM materialization).
///
/// §5.2's explanation of the AHT advantage hinges on this cost: a database
/// transaction that aborts re-executes the whole request handler, wasting
/// this work, while an ad hoc transaction's "non-critical sections are
/// effectively pipelined with the one active critical section". Benchmarks
/// place this call inside the DBT retry loop but outside the AHT lock.
pub fn busy_work(d: std::time::Duration) {
    if d.is_zero() {
        return;
    }
    let end = std::time::Instant::now() + d;
    let mut x: u64 = 0x9e3779b97f4a7c15;
    loop {
        for _ in 0..64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        std::hint::black_box(x);
        if std::time::Instant::now() >= end {
            break;
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use adhoc_storage::{Footprint, SHARD_COUNT};

    /// Shared assertion for the per-module footprint tests: every
    /// footprint is non-empty and localized (not the whole shard space),
    /// and at least one pair of distinct rows lands on disjoint shards —
    /// i.e. the module's hot rows really can commit without contending.
    pub fn assert_localized_and_independent(fps: &[Footprint]) {
        for fp in fps {
            assert!(!fp.writes.is_empty(), "write footprint not tracked: {fp:?}");
            assert!(
                fp.touched().len() < SHARD_COUNT,
                "footprint must be localized: {fp:?}"
            );
        }
        let disjoint = fps
            .iter()
            .enumerate()
            .any(|(i, a)| fps[i + 1..].iter().any(|b| a.is_disjoint(b)));
        assert!(
            disjoint,
            "no pair of distinct rows occupies disjoint shards: {fps:?}"
        );
    }
}
