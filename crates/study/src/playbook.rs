//! The playbook: which executable artifact demonstrates each flagship case.
//!
//! The corpus records *what the paper found*; the playbook records *where
//! this repository makes it runnable* — the §6 "development support"
//! promise applied to our own reproduction. Every corpus case that the
//! paper discusses individually (a figure, a listing, or a named issue)
//! maps to the module and test/example that exercises it.

#[cfg(test)]
use crate::corpus::case;

/// One corpus case → executable artifact mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaybookEntry {
    /// Corpus case id (must exist in [`crate::CASES`]).
    pub case_id: &'static str,
    /// Where the paper discusses it.
    pub paper_ref: &'static str,
    /// The implementing module/function in this workspace.
    pub artifact: &'static str,
    /// A test or example that demonstrates it end to end.
    pub demonstrated_by: &'static str,
}

/// Flagship cases: every scenario the paper singles out.
pub static PLAYBOOK: &[PlaybookEntry] = &[
    PlaybookEntry {
        case_id: "broadleaf/cart-total-update",
        paper_ref: "Figure 1a",
        artifact: "adhoc_apps::broadleaf::Broadleaf::add_to_cart",
        demonstrated_by: "example quickstart; broadleaf::tests::concurrent_add_to_cart_stays_consistent_adhoc",
    },
    PlaybookEntry {
        case_id: "mastodon/invite-redeem",
        paper_ref: "Figure 1b",
        artifact: "adhoc_apps::mastodon::Mastodon::redeem_invite",
        demonstrated_by: "example quickstart; mastodon::tests::invite_limit_holds_in_both_modes",
    },
    PlaybookEntry {
        case_id: "mastodon/poll-vote",
        paper_ref: "Figure 1c",
        artifact: "adhoc_apps::mastodon::Mastodon::vote",
        demonstrated_by: "mastodon::tests::poll_votes_are_never_lost",
    },
    PlaybookEntry {
        case_id: "spree/order-stock-decrement",
        paper_ref: "§3.1.1 listing; §4.2 issue [61]",
        artifact: "adhoc_apps::spree::Spree::decrement_stock (+ the ORM touch cascade)",
        demonstrated_by: "spree::tests::concurrent_decrements_conserve_stock_dbt_despite_cascade_aborts; example ecommerce_checkout",
    },
    PlaybookEntry {
        case_id: "discourse/edit-post",
        paper_ref: "§3.1.2 / §3.3.2 listings; §4.1.1 issue [76]",
        artifact: "adhoc_apps::discourse::{begin_edit, commit_edit, commit_edit_by_content}",
        demonstrated_by: "discourse::tests::{edit_post_flow_detects_conflicts, lock_after_read_loses_concurrent_edits}; tests/monitor_catches_paper_bugs.rs",
    },
    PlaybookEntry {
        case_id: "mastodon/timeline-insert",
        paper_ref: "§3.1.3 listing; §4.1.1 issue [65]",
        artifact: "adhoc_apps::mastodon::Mastodon::{create_post, delete_post}",
        demonstrated_by: "mastodon::tests::expired_lease_breaks_timeline_consistency; tests/cross_crate.rs",
    },
    PlaybookEntry {
        case_id: "saleor/stock-allocate",
        paper_ref: "§3.2.1 FOR-UPDATE listing",
        artifact: "adhoc_apps::saleor::Saleor::allocate",
        demonstrated_by: "saleor::tests::concurrent_allocations_never_oversell",
    },
    PlaybookEntry {
        case_id: "discourse/create-post",
        paper_ref: "§3.3.1 CBC listing; Table 6",
        artifact: "adhoc_apps::discourse::Discourse::{create_post, toggle_answer}",
        demonstrated_by: "discourse::tests::create_post_and_toggle_answer_commute_in_adhoc_mode; bench granularity (CBC)",
    },
    PlaybookEntry {
        case_id: "spree/payment-json-handler",
        paper_ref: "§3.3.2 PBC listing; §4.2 issue [59]",
        artifact: "adhoc_apps::spree::Spree::{add_payment, add_payment_json}",
        demonstrated_by: "spree::tests::forgotten_json_handler_duplicates_payments; bench granularity (PBC)",
    },
    PlaybookEntry {
        case_id: "discourse/shrink-image",
        paper_ref: "§3.4.1 listing; §4.3 issue [64]; Figure 4",
        artifact: "adhoc_apps::discourse::Discourse::shrink_image",
        demonstrated_by: "discourse::tests::shrink_repair_survives_concurrent_edits; bench rollback",
    },
    PlaybookEntry {
        case_id: "discourse/reviewable-claim",
        paper_ref: "§4.1.2 MiniSql listing, issue [62]",
        artifact: "adhoc_core::validation (HandCraftedNonAtomic) + adhoc_orm::MiniSql",
        demonstrated_by: "validation::tests::non_atomic_validation_loses_the_race",
    },
    PlaybookEntry {
        case_id: "scm-suite/account-balance",
        paper_ref: "§4.1.1 issue [91] (synchronized on thread-locals)",
        artifact: "adhoc_core::locks::SyncLock::synchronize_on_thread_local",
        demonstrated_by: "scm_suite::tests::thread_local_synchronized_loses_updates; example bug_gallery",
    },
    PlaybookEntry {
        case_id: "broadleaf/cart-session-lock",
        paper_ref: "§4.1.1 issue [66] (LRU-evicted lock table)",
        artifact: "adhoc_core::locks::MemLruLock",
        demonstrated_by: "broadleaf::tests::lru_evicted_lock_breaks_cart_consistency",
    },
    PlaybookEntry {
        case_id: "broadleaf/inventory-db-lock",
        paper_ref: "§3.4.2 boot-UUID crash recovery",
        artifact: "adhoc_core::locks::DbTableLock::{reboot, ignore_boot_uuid}",
        demonstrated_by: "locks::db::tests::db_table_lock_persists_across_crash_and_reboot_reclaims",
    },
    PlaybookEntry {
        case_id: "spree/payment-process",
        paper_ref: "§4.3 issue [60] (crashed payments)",
        artifact: "adhoc_apps::spree::Spree::{process_payment, boot_recovery}",
        demonstrated_by: "spree::tests::crashed_payment_blocks_checkout_until_boot_recovery",
    },
    PlaybookEntry {
        case_id: "broadleaf/checkout-workflow",
        paper_ref: "Table 6 RMW workload; §4.2 issue [67]",
        artifact: "adhoc_apps::broadleaf::Broadleaf::check_out",
        demonstrated_by: "broadleaf::tests::omitted_sku_coordination_loses_updates; bench granularity (RMW)",
    },
    PlaybookEntry {
        case_id: "discourse/like-post",
        paper_ref: "Table 6 AA workload",
        artifact: "adhoc_apps::discourse::Discourse::like_post",
        demonstrated_by: "discourse::tests::likes_are_conserved_in_both_modes; bench granularity (AA)",
    },
    PlaybookEntry {
        case_id: "redmine/attachment-add",
        paper_ref: "§3.2.1 (SELECT … FOR UPDATE); Table 5 row-level cases",
        artifact: "adhoc_apps::redmine::Redmine::add_attachment",
        demonstrated_by: "redmine::tests::attachment_counter_cache_stays_exact_in_both_modes",
    },
    PlaybookEntry {
        case_id: "redmine/version-close",
        paper_ref: "§3.1.2 check-then-act; Table 3 AA cases",
        artifact: "adhoc_apps::redmine::Redmine::{close_version, assign_version} (+ _unchecked variants)",
        demonstrated_by: "redmine::tests::{coordinated_close_vs_assign_race_keeps_the_invariant, unchecked_close_vs_assign_can_strand_an_open_issue}",
    },
    PlaybookEntry {
        case_id: "scm-suite/settlement-run",
        paper_ref: "§3.1.1 multi-read consistency; Table 5 coarse cases",
        artifact: "adhoc_apps::scm_suite::ScmSuite::settle (+ settle_unrepeatable)",
        demonstrated_by: "scm_suite::tests::{settlements_never_skew_under_concurrent_transfers, unrepeatable_settlement_can_skew}",
    },
    PlaybookEntry {
        case_id: "jumpserver/credential-rotate",
        paper_ref: "Table 4 (JumpServer: zero buggy cases); §3.4.2 crash handling",
        artifact: "adhoc_apps::jumpserver::JumpServer::{rotate_credential, rotate_credential_split, repair_rotation_audit}",
        demonstrated_by: "jumpserver::tests::{rotation_is_atomic_and_audited, split_rotation_crash_loses_audit_and_checker_repairs}",
    },
    PlaybookEntry {
        case_id: "mastodon/notification-dedupe",
        paper_ref: "§3.2.1 Redis primitives; Table 3 PBC cases",
        artifact: "adhoc_apps::mastodon::Mastodon::{notify_once, notify_unchecked}",
        demonstrated_by: "mastodon::tests::{notifications_deduplicate_via_setnx, unchecked_notifications_can_duplicate}",
    },
    PlaybookEntry {
        case_id: "discourse/draft-save",
        paper_ref: "§3.2.2 hand-crafted validation; Table 5b value-validation cases",
        artifact: "adhoc_apps::discourse::Discourse::save_draft (client sequence check + unique index)",
        demonstrated_by: "discourse::tests::{stale_draft_sequences_are_rejected, concurrent_draft_saves_keep_the_highest_sequence, concurrent_first_saves_never_duplicate_the_draft_row}",
    },
    PlaybookEntry {
        case_id: "jumpserver/node-move",
        paper_ref: "Table 5 coarse-granularity cases; §3.1.2 check-then-act",
        artifact: "adhoc_apps::jumpserver::JumpServer::{move_node, move_node_unlocked, tree_acyclic}",
        demonstrated_by: "jumpserver::tests::{concurrent_moves_stay_acyclic_under_the_tree_lock, uncoordinated_moves_can_create_a_cycle}",
    },
];

/// Look up the playbook entry for a case, when one exists.
pub fn entry_for(case_id: &str) -> Option<&'static PlaybookEntry> {
    PLAYBOOK.iter().find(|e| e.case_id == case_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_core::taxonomy::IssueCategory;

    /// Every playbook entry points at a real corpus case.
    #[test]
    fn playbook_case_ids_exist() {
        for e in PLAYBOOK {
            assert!(case(e.case_id).is_some(), "{} not in corpus", e.case_id);
        }
    }

    #[test]
    fn playbook_has_no_duplicates() {
        let mut ids: Vec<&str> = PLAYBOOK.iter().map(|e| e.case_id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    /// Every issue category the paper catalogs has at least one playbook
    /// entry whose corpus case carries it — the bug catalog is fully
    /// demonstrable.
    #[test]
    fn every_issue_category_is_demonstrated() {
        for cat in IssueCategory::all() {
            let covered = PLAYBOOK.iter().any(|e| {
                case(e.case_id)
                    .map(|c| c.issues.contains(&cat))
                    .unwrap_or(false)
            });
            assert!(covered, "{cat:?} has no playbook demonstration");
        }
    }

    /// The three Figure 1 examples are all covered.
    #[test]
    fn figure1_scenarios_are_covered() {
        for fig in ["Figure 1a", "Figure 1b", "Figure 1c"] {
            assert!(
                PLAYBOOK.iter().any(|e| e.paper_ref.contains(fig)),
                "{fig} missing"
            );
        }
    }

    #[test]
    fn lookup_works() {
        assert!(entry_for("discourse/edit-post").is_some());
        assert!(entry_for("nope/nope").is_none());
    }
}
