//! Ablation: per-operation isolation hints (§6, Table 7b).
//!
//! The paper's developers "tailor isolation levels per operation" — the
//! flexibility argument of §3.1.1 — and §6 proposes surfacing that as a
//! coordination hint. This ablation measures it: a serializable
//! transaction that mixes a critical hot-row RMW with non-critical reads
//! of frequently-updated statistics rows. Reading the statistics at
//! Serializable drags them into commit certification and aborts the
//! transaction whenever the background writer touches them; reading them
//! through [`HintProxy::read_committed_read`] keeps them out.

use adhoc_core::hints::HintProxy;
use adhoc_storage::{Column, ColumnType, Database, DbError, EngineProfile, IsolationLevel, Schema};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One ablation configuration's outcome.
#[derive(Debug, Clone)]
pub struct IsolationAblationRow {
    /// Configuration label.
    pub label: &'static str,
    /// Committed worker transactions per second.
    pub throughput_rps: f64,
    /// Serialization failures the workers retried through.
    pub serialization_failures: u64,
}

const WORKERS: usize = 3;
const TXNS_PER_WORKER: usize = 400;
const STATS_ROWS: i64 = 4;

/// Run one configuration with a caller-chosen per-worker transaction
/// count (the Criterion bench uses a smaller count per iteration).
pub fn run_isolation_ablation_config(hinted: bool, txns_per_worker: usize) -> IsolationAblationRow {
    run_config_n(hinted, txns_per_worker)
}

fn build_db() -> Database {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    for table in ["counters", "statistics"] {
        db.create_table(
            Schema::new(
                table,
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("value", ColumnType::Int),
                ],
                "id",
            )
            .expect("schema"),
        )
        .expect("create table");
    }
    db.run(IsolationLevel::ReadCommitted, |t| {
        t.insert("counters", &[("id", 1.into()), ("value", 0.into())])?;
        for id in 1..=STATS_ROWS {
            t.insert("statistics", &[("id", id.into()), ("value", 0.into())])?;
        }
        Ok(())
    })
    .expect("seed");
    db
}

fn run_config(hinted: bool) -> IsolationAblationRow {
    run_config_n(hinted, TXNS_PER_WORKER)
}

fn run_config_n(hinted: bool, txns_per_worker: usize) -> IsolationAblationRow {
    let db = Arc::new(build_db());
    let proxy = Arc::new(HintProxy::new((*db).clone()));
    let counters_schema = db.schema("counters").expect("schema");
    let stop = Arc::new(AtomicBool::new(false));

    let started = Instant::now();
    std::thread::scope(|s| {
        // Background writer: keeps the statistics rows hot.
        {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut i = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let id = (i % STATS_ROWS) + 1;
                    db.run(IsolationLevel::ReadCommitted, |t| {
                        t.update("statistics", id, &[("value", i.into())])
                    })
                    .expect("stats update");
                    i += 1;
                    std::thread::yield_now();
                }
            });
        }
        let workers: Vec<_> = (0..WORKERS)
            .map(|_| {
                let db = Arc::clone(&db);
                let proxy = Arc::clone(&proxy);
                let schema = counters_schema.clone();
                s.spawn(move || {
                    for i in 0..txns_per_worker {
                        db.run_with_retries(IsolationLevel::Serializable, 100_000, |t| {
                            // Non-critical reads: the order dashboard numbers.
                            for id in 1..=STATS_ROWS {
                                if hinted {
                                    // Infallible here (engine supports the
                                    // hint); `expect` keeps the closure's error
                                    // type the engine's own.
                                    proxy
                                        .read_committed_read(t, "statistics", id)
                                        .expect("per-op isolation hint");
                                } else {
                                    t.get("statistics", id)?;
                                }
                            }
                            std::thread::yield_now(); // request "think time"
                                                      // Critical RMW: the hot counter.
                            let row = t.get("counters", 1)?.ok_or(DbError::NoSuchRow {
                                table: "counters".into(),
                                id: 1,
                            })?;
                            let value = row.get_int(&schema, "value")?;
                            t.update("counters", 1, &[("value", (value + 1).into())])?;
                            Ok(())
                        })
                        .expect("worker txn");
                        let _ = i;
                    }
                })
            })
            .collect();
        for worker in workers {
            worker.join().expect("worker join");
        }
        // All worker transactions are done; release the background writer.
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = started.elapsed();

    IsolationAblationRow {
        label: if hinted {
            "per-op RC hint for stats reads"
        } else {
            "all reads at Serializable"
        },
        throughput_rps: (WORKERS * txns_per_worker) as f64 / elapsed.as_secs_f64(),
        serialization_failures: db.stats().serialization_failures,
    }
}

/// Run both configurations and return their rows (unhinted first).
pub fn run_isolation_ablation() -> Vec<IsolationAblationRow> {
    vec![run_config(false), run_config(true)]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The hint's promise: taking the non-critical reads out of
    /// certification eliminates almost all serialization failures. (The
    /// few remaining come from the hot-counter ww conflicts both
    /// configurations share.)
    #[test]
    fn per_op_hint_slashes_serialization_failures() {
        let _serial = crate::SERIAL_MEASUREMENTS.lock();
        let rows = run_isolation_ablation();
        let (plain, hinted) = (&rows[0], &rows[1]);
        assert!(
            plain.serialization_failures > hinted.serialization_failures * 2,
            "hint must remove most aborts: {rows:?}"
        );
        // Every worker transaction still committed exactly once in both
        // configurations (the counter is exact) — checked implicitly by
        // run_with_retries succeeding; the failure counts above are
        // retries, not losses.
    }
}
