//! Plain-text renderings of the paper's tables, used by `paper-eval`.

use crate::corpus::{app_info, APPLICATIONS};
use crate::findings;
use crate::hints::{Hint, Vendor};
use crate::playbook::PLAYBOOK;
use crate::related::RELATED;
use crate::tables;
use std::fmt::Write;

/// Table 1 in the paper's layout.
pub fn render_table1() -> String {
    let mut out = String::new();
    writeln!(out, "Table 1: Comparison with Feral CC and ACIDRain.").unwrap();
    for w in RELATED {
        writeln!(out, "  {} ({})", w.name, w.citation).unwrap();
        writeln!(out, "    Target: {}", w.target).unwrap();
        writeln!(out, "    Aspects: {}", w.aspects.join(", ")).unwrap();
        writeln!(out, "    Issue types: {}", w.issue_types.join("; ")).unwrap();
    }
    out
}

/// Table 2 in the paper's layout.
pub fn render_table2() -> String {
    let mut out = String::new();
    writeln!(out, "Table 2: The applications corpus.").unwrap();
    writeln!(
        out,
        "  {:<11} {:<15} {:<20} {:<10} {:>6} {:>6}",
        "Application", "Category", "Language/ORM", "RDBMS", "Stars", "Contr."
    )
    .unwrap();
    for info in APPLICATIONS {
        writeln!(
            out,
            "  {:<11} {:<15} {:<20} {:<10} {:>6} {:>6}",
            info.app.name(),
            info.category,
            format!("{}/{}", info.language, info.orm),
            info.rdbms,
            info.stars(),
            info.contributors
        )
        .unwrap();
    }
    out
}

/// Table 3 in the paper's layout.
pub fn render_table3() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table 3: Ad hoc transactions are mainly used in core APIs."
    )
    .unwrap();
    writeln!(
        out,
        "  {:<11} {:<48} {:>6}",
        "App.", "Core APIs using ad hoc transactions", "Cases"
    )
    .unwrap();
    for row in tables::table3() {
        writeln!(
            out,
            "  {:<11} {:<48} {:>3}/{}",
            row.app.name(),
            app_info(row.app).core_apis,
            row.critical,
            row.total
        )
        .unwrap();
    }
    out
}

/// Table 4 in the paper's layout.
pub fn render_table4() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table 4: Statistics of identified ad hoc transactions."
    )
    .unwrap();
    writeln!(
        out,
        "  {:<11} {:>6} {:>6} {:>6} {:>6}",
        "App.", "Total", "Buggy", "Lock", "Valid."
    )
    .unwrap();
    for row in tables::table4() {
        writeln!(
            out,
            "  {:<11} {:>6} {:>6} {:>6} {:>6}",
            row.app.name(),
            row.total,
            row.buggy,
            row.lock_based,
            row.validation_based
        )
        .unwrap();
    }
    let t = tables::table4_totals();
    writeln!(
        out,
        "  {:<11} {:>6} {:>6} {:>6} {:>6}",
        "Total", t.total, t.buggy, t.lock_based, t.validation_based
    )
    .unwrap();
    out
}

/// Table 5a in the paper's layout.
pub fn render_table5a() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table 5a: Categorization of incorrect ad hoc transactions."
    )
    .unwrap();
    writeln!(
        out,
        "  {:<30} {:<42} {:>4} {:>5}",
        "Category", "Description", "Apps", "Cases"
    )
    .unwrap();
    for row in tables::table5a() {
        writeln!(
            out,
            "  {:<30} {:<42} {:>4} {:>5}",
            row.category.group().label(),
            row.category.description(),
            row.apps,
            row.cases
        )
        .unwrap();
    }
    let s = tables::report_stats();
    writeln!(
        out,
        "  ({} reports covering {} cases submitted; {} acknowledged covering {} cases)",
        s.reports, s.reported_cases, s.acknowledged_reports, s.acknowledged_cases
    )
    .unwrap();
    out
}

/// Table 5b in the paper's layout.
pub fn render_table5b() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table 5b: Incorrect ad hoc transactions can have severe consequences."
    )
    .unwrap();
    for row in tables::table5b() {
        let mut consequences: Vec<&str> = row.consequences.clone();
        consequences.sort_unstable();
        consequences.dedup();
        writeln!(
            out,
            "  {:<11} {:>2} cases: {}",
            row.app.name(),
            row.cases,
            consequences.join("; ")
        )
        .unwrap();
    }
    out
}

/// Table 7a in the paper's layout.
pub fn render_table7a() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table 7a: Coordination hints supported by the top-ranking RDBMSs."
    )
    .unwrap();
    write!(out, "  {:<22}", "Hint").unwrap();
    for v in Vendor::all() {
        write!(out, " {:<22}", v.name()).unwrap();
    }
    writeln!(out).unwrap();
    for h in Hint::all() {
        write!(out, "  {:<22}", h.name()).unwrap();
        for v in Vendor::all() {
            write!(out, " {:<22}", if h.supported_by(v) { "yes" } else { "-" }).unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// Table 7b in the paper's layout.
pub fn render_table7b() -> String {
    let mut out = String::new();
    writeln!(out, "Table 7b: Coordination hints vs. ad hoc transactions.").unwrap();
    for h in Hint::all() {
        writeln!(out, "  {}", h.name()).unwrap();
        writeln!(
            out,
            "    Can potentially support: {}",
            h.supports().join("; ")
        )
        .unwrap();
        writeln!(
            out,
            "    Can potentially avoid:   {}",
            h.avoids().join("; ")
        )
        .unwrap();
    }
    out
}

/// The invariant-confluence classification of the corpus: per-app bucket
/// counts plus the legend explaining what each bucket buys at runtime.
pub fn render_confluence() -> String {
    use crate::confluence::{Confluence, CLASSIFICATION};
    let mut out = String::new();
    writeln!(
        out,
        "Confluence: how much coordination each case's invariant actually requires."
    )
    .unwrap();
    write!(out, "  {:<11}", "App.").unwrap();
    for class in Confluence::all() {
        write!(out, " {:>6}", class.label()).unwrap();
    }
    writeln!(out, " {:>6}", "Total").unwrap();
    for app in crate::App::all() {
        let ids: Vec<&str> = crate::CASES
            .iter()
            .filter(|case| case.app == app)
            .map(|case| case.id)
            .collect();
        write!(out, "  {:<11}", app.name()).unwrap();
        for class in Confluence::all() {
            let n = CLASSIFICATION
                .iter()
                .filter(|c| c.class == class && ids.contains(&c.id))
                .count();
            write!(out, " {n:>6}").unwrap();
        }
        writeln!(out, " {:>6}", ids.len()).unwrap();
    }
    write!(out, "  {:<11}", "Total").unwrap();
    for (_, n) in crate::confluence::counts() {
        write!(out, " {n:>6}").unwrap();
    }
    writeln!(out, " {:>6}", CLASSIFICATION.len()).unwrap();
    writeln!(
        out,
        "  Legend: CONF  = invariant-confluent; commits as a commutative delta,"
    )
    .unwrap();
    writeln!(
        out,
        "                  no validation footprint, zero aborts."
    )
    .unwrap();
    writeln!(
        out,
        "          ESCR  = budget invariant (x >= 0, uses <= max); escrow"
    )
    .unwrap();
    writeln!(
        out,
        "                  reservations coordinate only near exhaustion."
    )
    .unwrap();
    writeln!(
        out,
        "          COORD = order-sensitive; inherits the cured OCC/facade path."
    )
    .unwrap();
    out
}

/// The playbook: flagship cases and the artifacts demonstrating them.
pub fn render_playbook() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Playbook: flagship cases and their executable artifacts."
    )
    .unwrap();
    for e in PLAYBOOK {
        writeln!(out, "  {} ({})", e.case_id, e.paper_ref).unwrap();
        writeln!(out, "    artifact:     {}", e.artifact).unwrap();
        writeln!(out, "    demonstrated: {}", e.demonstrated_by).unwrap();
    }
    out
}

/// The eight findings with their computed statistics.
pub fn render_findings() -> String {
    let mut out = String::new();
    let f1 = findings::finding1();
    writeln!(
        out,
        "Finding 1: every studied application ({} of {}) uses ad hoc transactions; {} of {} cases are critical.",
        f1.apps_with_cases, 8, f1.critical_cases, f1.total_cases
    )
    .unwrap();
    let f2 = findings::finding2();
    writeln!(
        out,
        "Finding 2: {} coordinate a portion of operations, {} span multiple requests, {} include non-database operations.",
        f2.partial_coordination, f2.multi_request, f2.non_db_operations
    )
    .unwrap();
    let f3 = findings::finding3();
    writeln!(
        out,
        "Finding 3: {} lock implementations ({}) and {} validation implementations; only {:?} mixes implementations.",
        f3.lock_impls.len(),
        f3.lock_impls.iter().copied().collect::<Vec<_>>().join(", "),
        f3.validation_impls.len(),
        f3.mixed_impl_apps
    )
    .unwrap();
    let f4 = findings::finding4();
    writeln!(
        out,
        "Finding 4: {} fine-grained, {} coarse-grained, {} both; AA {}, RMW {}, both {}; CBC {}, PBC {}, both {}.",
        f4.fine_grained,
        f4.coarse_grained,
        f4.both,
        f4.associated_access,
        f4.rmw,
        f4.rmw_and_aa,
        f4.column_based,
        f4.predicate_based,
        f4.column_and_predicate
    )
    .unwrap();
    let f5 = findings::finding5();
    writeln!(
        out,
        "Finding 5: pessimistic = {} single-lock + {} ordered-multi; optimistic failure handling = {} error / {} DBT rollback / {} manual / {} repair.",
        f5.pessimistic_single_lock,
        f5.pessimistic_ordered_locks,
        f5.optimistic_error_return,
        f5.optimistic_dbt_rollback,
        f5.optimistic_manual_rollback,
        f5.optimistic_repair
    )
    .unwrap();
    let f6 = findings::finding6();
    writeln!(
        out,
        "Finding 6: {}/{} pessimistic cases have lock-primitive issues; {}/{} optimistic cases lack validate-and-commit atomicity.",
        f6.pessimistic_with_lock_issues,
        f6.pessimistic_total,
        f6.optimistic_non_atomic,
        f6.optimistic_total
    )
    .unwrap();
    let f7 = findings::finding7();
    writeln!(
        out,
        "Finding 7: {} scope issues = {} omitted operations + {} forgotten transactions.",
        f7.omitted_operations + f7.forgotten_transactions,
        f7.omitted_operations,
        f7.forgotten_transactions
    )
    .unwrap();
    let f8 = findings::finding8();
    writeln!(
        out,
        "Finding 8: {} failure-handling issues = {} incomplete repair + {} missing crash rollback.",
        f8.incomplete_repair + f8.no_rollback_after_crash,
        f8.incomplete_repair,
        f8.no_rollback_after_crash
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renderings_contain_headline_numbers() {
        assert!(render_table2().contains("33.8k"));
        assert!(render_table3().contains("  8/13"));
        assert!(render_table4().contains("91"));
        assert!(render_table5a().contains("36"));
        assert!(render_table5a().contains("20 reports covering 46 cases"));
        assert!(render_table5b().contains("Spree"));
        assert!(render_table1().contains("ACIDRain"));
        assert!(render_table7a().contains("PostgreSQL"));
        assert!(render_table7b().contains("Fine-grained"));
        let f = render_findings();
        assert!(f.contains("71 of 91"));
        assert!(f.contains("Finding 8"));
    }

    #[test]
    fn confluence_rendering_counts_the_whole_corpus() {
        let r = render_confluence();
        assert!(r.contains("CONF"));
        assert!(r.contains("ESCR"));
        assert!(r.contains("COORD"));
        assert!(r.contains("Legend"));
        let total: usize = crate::confluence::counts().iter().map(|(_, n)| n).sum();
        assert_eq!(total, 91);
        assert!(r.contains("    91"), "totals row must count all 91 cases");
    }

    #[test]
    fn table3_rows_render_critical_over_total() {
        let t = render_table3();
        assert!(t.contains("10/16")); // Mastodon
        assert!(t.contains("15/16")); // Saleor
    }
}
