//! Concurrency stress: invariant preservation across the engine matrix.
//!
//! Classic bank-transfer conservation, run multi-threaded on every
//! (profile, coordination) combination that is supposed to preserve it —
//! and one that is supposed to break it, as a control.

use adhoc_storage::{
    Column, ColumnType, Database, EngineProfile, IsolationLevel, Predicate, Schema,
};
use std::sync::Arc;

const ACCOUNTS: i64 = 6;
const INITIAL: i64 = 1000;
const THREADS: usize = 6;
const TRANSFERS: usize = 30;

fn bank(profile: EngineProfile) -> Database {
    let db = Database::in_memory(profile);
    db.create_table(
        Schema::new(
            "accounts",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("balance", ColumnType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    db.run(IsolationLevel::ReadCommitted, |t| {
        for id in 1..=ACCOUNTS {
            t.insert(
                "accounts",
                &[("id", id.into()), ("balance", INITIAL.into())],
            )?;
        }
        Ok(())
    })
    .unwrap();
    db
}

fn total(db: &Database) -> i64 {
    let schema = db.schema("accounts").unwrap();
    db.run(IsolationLevel::ReadCommitted, |t| {
        let rows = t.scan("accounts", &Predicate::All)?;
        let mut sum = 0;
        for (_, row) in &rows {
            sum += row.get_int(&schema, "balance")?;
        }
        Ok(sum)
    })
    .unwrap()
}

/// Pseudo-random but deterministic account pair per (thread, iteration).
fn pair(thread: usize, i: usize) -> (i64, i64) {
    let from = ((thread * 7 + i * 13) % ACCOUNTS as usize) as i64 + 1;
    let to = ((thread * 11 + i * 5 + 1) % ACCOUNTS as usize) as i64 + 1;
    if from == to {
        (from, (to % ACCOUNTS) + 1)
    } else {
        (from, to)
    }
}

fn run_transfers(db: &Database, f: impl Fn(&Database, i64, i64) + Sync) {
    let db = Arc::new(db.clone());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = Arc::clone(&db);
            let f = &f;
            s.spawn(move || {
                for i in 0..TRANSFERS {
                    let (from, to) = pair(t, i);
                    f(&db, from, to);
                }
            });
        }
    });
}

/// Serializable transactions preserve conservation on both profiles.
#[test]
fn serializable_transfers_conserve_money() {
    for profile in [EngineProfile::MySqlLike, EngineProfile::PostgresLike] {
        let db = bank(profile);
        run_transfers(&db, |db, from, to| {
            db.run_with_retries(IsolationLevel::Serializable, 10_000, |t| {
                let schema = db.schema("accounts")?;
                let a = t.get("accounts", from)?.expect("account");
                let b = t.get("accounts", to)?.expect("account");
                let ab = a.get_int(&schema, "balance")?;
                let bb = b.get_int(&schema, "balance")?;
                if ab < 1 {
                    return Ok(());
                }
                t.update("accounts", from, &[("balance", (ab - 1).into())])?;
                t.update("accounts", to, &[("balance", (bb + 1).into())])?;
                Ok(())
            })
            .unwrap();
        });
        assert_eq!(total(&db), ACCOUNTS * INITIAL, "{profile:?}");
    }
}

/// FOR UPDATE at Read Committed preserves conservation on both profiles —
/// the Saleor pattern (§3.2.1), provided locks are taken in id order.
#[test]
fn select_for_update_transfers_conserve_money() {
    for profile in [EngineProfile::MySqlLike, EngineProfile::PostgresLike] {
        let db = bank(profile);
        run_transfers(&db, |db, from, to| {
            let (first, second) = if from < to { (from, to) } else { (to, from) };
            db.run_with_retries(IsolationLevel::ReadCommitted, 10_000, |t| {
                let schema = db.schema("accounts")?;
                let r1 = t.get_for_update("accounts", first)?.expect("account");
                let r2 = t.get_for_update("accounts", second)?.expect("account");
                let (a, b) = if first == from { (r1, r2) } else { (r2, r1) };
                let ab = a.get_int(&schema, "balance")?;
                let bb = b.get_int(&schema, "balance")?;
                if ab < 1 {
                    return Ok(());
                }
                t.update("accounts", from, &[("balance", (ab - 1).into())])?;
                t.update("accounts", to, &[("balance", (bb + 1).into())])?;
                Ok(())
            })
            .unwrap();
        });
        assert_eq!(total(&db), ACCOUNTS * INITIAL, "{profile:?}");
    }
}

/// PostgreSQL Repeatable Read (SI) also conserves: every conflicting pair
/// triggers first-committer-wins, and retries re-read fresh balances.
#[test]
fn postgres_snapshot_isolation_transfers_conserve_money() {
    let db = bank(EngineProfile::PostgresLike);
    run_transfers(&db, |db, from, to| {
        db.run_with_retries(IsolationLevel::RepeatableRead, 10_000, |t| {
            let schema = db.schema("accounts")?;
            let a = t.get("accounts", from)?.expect("account");
            let b = t.get("accounts", to)?.expect("account");
            let ab = a.get_int(&schema, "balance")?;
            let bb = b.get_int(&schema, "balance")?;
            if ab < 1 {
                return Ok(());
            }
            t.update("accounts", from, &[("balance", (ab - 1).into())])?;
            t.update("accounts", to, &[("balance", (bb + 1).into())])?;
            Ok(())
        })
        .unwrap();
    });
    assert_eq!(total(&db), ACCOUNTS * INITIAL);
}

/// Control: MySQL Repeatable Read with plain reads loses money under
/// contention (the §3.1.1 footnote made quantitative). This is the anomaly
/// the correct configurations above exist to prevent.
#[test]
fn mysql_repeatable_read_plain_reads_lose_money() {
    let mut lost = false;
    for _ in 0..20 {
        let db = bank(EngineProfile::MySqlLike);
        // Hot-spot variant: every thread debits account 1, so concurrent
        // snapshot reads of the same balance are guaranteed.
        run_transfers(&db, |db, _from, to| {
            let from = 1;
            let to = if to == 1 { 2 } else { to };
            let result = db.run(IsolationLevel::RepeatableRead, |t| {
                let schema = db.schema("accounts")?;
                let a = t.get("accounts", from)?.expect("account");
                let b = t.get("accounts", to)?.expect("account");
                let ab = a.get_int(&schema, "balance")?;
                let bb = b.get_int(&schema, "balance")?;
                std::thread::yield_now(); // widen the RMW window
                t.update("accounts", from, &[("balance", (ab - 1).into())])?;
                t.update("accounts", to, &[("balance", (bb + 1).into())])?;
                Ok(())
            });
            // Deadlock victims among the X-lock acquisitions simply drop
            // their transfer (a dropped transfer conserves money, so it
            // cannot mask the lost-update drift this test looks for).
            if let Err(e) = result {
                assert!(e.is_retryable(), "unexpected error: {e}");
            }
        });
        if total(&db) != ACCOUNTS * INITIAL {
            lost = true;
            break;
        }
    }
    assert!(
        lost,
        "uncoordinated snapshot RMWs must eventually lose money"
    );
}

/// Advisory locks as the coordination layer (the §6 user-lock hint):
/// Read Committed plus per-account advisory locks conserves.
#[test]
fn advisory_lock_transfers_conserve_money() {
    let db = bank(EngineProfile::PostgresLike);
    run_transfers(&db, |db, from, to| {
        let session = db.new_session();
        let (first, second) = if from < to { (from, to) } else { (to, from) };
        db.advisory_lock(session, first).unwrap();
        db.advisory_lock(session, second).unwrap();
        db.run(IsolationLevel::ReadCommitted, |t| {
            let schema = db.schema("accounts")?;
            let a = t.get("accounts", from)?.expect("account");
            let b = t.get("accounts", to)?.expect("account");
            let ab = a.get_int(&schema, "balance")?;
            let bb = b.get_int(&schema, "balance")?;
            if ab < 1 {
                return Ok(());
            }
            t.update("accounts", from, &[("balance", (ab - 1).into())])?;
            t.update("accounts", to, &[("balance", (bb + 1).into())])?;
            Ok(())
        })
        .unwrap();
        db.end_session(session);
    });
    assert_eq!(total(&db), ACCOUNTS * INITIAL);
}

/// No balance ever observed negative under the guarded configurations.
#[test]
fn balances_never_go_negative_under_for_update() {
    let db = bank(EngineProfile::MySqlLike);
    run_transfers(&db, |db, from, to| {
        db.run_with_retries(IsolationLevel::ReadCommitted, 10_000, |t| {
            let schema = db.schema("accounts")?;
            let (first, second) = if from < to { (from, to) } else { (to, from) };
            let r1 = t.get_for_update("accounts", first)?.expect("account");
            let r2 = t.get_for_update("accounts", second)?.expect("account");
            let (a, b) = if first == from { (r1, r2) } else { (r2, r1) };
            let ab = a.get_int(&schema, "balance")?;
            let bb = b.get_int(&schema, "balance")?;
            // Drain aggressively to stress the lower bound.
            let amount = ab.min(700);
            if amount == 0 {
                return Ok(());
            }
            t.update("accounts", from, &[("balance", (ab - amount).into())])?;
            t.update("accounts", to, &[("balance", (bb + amount).into())])?;
            Ok(())
        })
        .unwrap();
    });
    let schema = db.schema("accounts").unwrap();
    for (_, row) in db.dump_table("accounts").unwrap() {
        assert!(row.get_int(&schema, "balance").unwrap() >= 0);
    }
    assert_eq!(total(&db), ACCOUNTS * INITIAL);
}
