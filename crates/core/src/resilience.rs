//! Partition- and overload-hardening primitives: deadlines, retry
//! budgets, circuit breakers, and an admission-control front door.
//!
//! The paper's ad hoc transactions fail in two directions. Under
//! *partitions*, hand-rolled coordination either blocks forever (a lock
//! wait with no deadline) or retries forever (a loop with no budget) —
//! §3.4's failure-handling catalog is full of both. Under *overload*, the
//! same loops amplify the problem: every timed-out request is retried,
//! every retry adds load, and the system settles into a metastable state
//! where goodput stays near zero even after the original fault clears.
//!
//! This module collects the counter-measures the toolkit threads through
//! the stack, so applications opt into all of them at one place:
//!
//! * [`Deadline`] — one absolute point in (virtual) time propagated
//!   through every layer a request touches: KV round trips
//!   (`kv::Client::with_deadline`), storage statements and lock waits
//!   (`Transaction::with_deadline`), and retry loops
//!   ([`RetryTimer::until`](adhoc_sim::RetryTimer::until));
//! * [`RetryBudget`] — a token bucket shared by a service's retry loops
//!   so retries are a bounded *fraction* of traffic, not a multiplier on
//!   it;
//! * [`CircuitBreaker`] — deterministic closed/open/half-open breaker
//!   installed on the KV client (`kv::Client::with_breaker`) and the
//!   database statement path (`Database::install_breaker`);
//! * [`FrontDoor`] — bounded-concurrency admission control with load
//!   shedding and a per-app read-only degraded mode, sitting in front of
//!   the eight modeled application workloads.
//!
//! All four are deterministic on the simulator's virtual clock, so the
//! metastability oracle can replay an overload storm bit-for-bit.

pub use adhoc_sim::{BreakerState, CircuitBreaker, Deadline, RetryBudget};

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Why the front door refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded queue is full: the request is shed immediately rather
    /// than parked behind work that will miss its deadline anyway.
    Shed,
    /// The app is in read-only degraded mode and the request is a write.
    ReadOnly,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::Shed => write!(f, "shed: admission queue full"),
            Rejected::ReadOnly => write!(f, "rejected: app is in read-only degraded mode"),
        }
    }
}

/// Whether an admitted request intends to write.
///
/// Degraded mode only refuses [`Workload::Write`]; reads keep flowing, so
/// a partitioned backend degrades to stale-but-available instead of
/// unavailable — the per-app knob the overload runbooks in the studied
/// applications implement by hand (when they implement it at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Read-only request: admitted even in degraded mode.
    Read,
    /// Mutating request: refused while degraded.
    Write,
}

/// Bounded-concurrency admission control for one application.
///
/// The front door is the first thing a request meets: at most `capacity`
/// requests are in flight at once, and everything beyond that is shed
/// *immediately* ([`Rejected::Shed`]) instead of queueing. Shedding at
/// the door is the anti-metastability move — queued work behind a slow
/// backend keeps deadlines expiring and retries flowing long after the
/// fault clears, while shed work leaves the system the moment it arrives.
///
/// Operators (or the breaker-watching automation in the oracle) can also
/// flip the app into read-only degraded mode: writes are refused with
/// [`Rejected::ReadOnly`] while reads pass, bounding the blast radius of
/// a partitioned write path.
///
/// All state is atomic; the door takes no locks and never blocks.
#[derive(Debug)]
pub struct FrontDoor {
    /// Application label (diagnostics only).
    app: &'static str,
    capacity: usize,
    in_flight: AtomicUsize,
    read_only: AtomicBool,
    admitted: AtomicU64,
    shed: AtomicU64,
    refused_writes: AtomicU64,
}

/// Counters describing what a [`FrontDoor`] has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DoorStats {
    /// Requests admitted (permits handed out).
    pub admitted: u64,
    /// Requests shed because the door was at capacity.
    pub shed: u64,
    /// Writes refused while in read-only degraded mode.
    pub refused_writes: u64,
    /// Requests in flight right now.
    pub in_flight: usize,
}

impl FrontDoor {
    /// A front door admitting at most `capacity` concurrent requests for
    /// the application labelled `app`.
    pub fn new(app: &'static str, capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            app,
            capacity: capacity.max(1),
            in_flight: AtomicUsize::new(0),
            read_only: AtomicBool::new(false),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            refused_writes: AtomicU64::new(0),
        })
    }

    /// The application this door fronts.
    pub fn app(&self) -> &'static str {
        self.app
    }

    /// Try to admit one request. Returns an RAII [`Permit`] releasing the
    /// slot on drop, or the reason the request was refused. Never blocks.
    pub fn admit(self: &Arc<Self>, workload: Workload) -> Result<Permit, Rejected> {
        if workload == Workload::Write && self.read_only.load(Ordering::Acquire) {
            self.refused_writes.fetch_add(1, Ordering::Relaxed);
            return Err(Rejected::ReadOnly);
        }
        // Optimistically take a slot; back out if it overshot capacity.
        let prev = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if prev >= self.capacity {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(Rejected::Shed);
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(Permit {
            door: Arc::clone(self),
        })
    }

    /// Enter or leave read-only degraded mode.
    pub fn set_read_only(&self, degraded: bool) {
        self.read_only.store(degraded, Ordering::Release);
    }

    /// Is the app currently degraded to read-only?
    pub fn is_read_only(&self) -> bool {
        self.read_only.load(Ordering::Acquire)
    }

    /// Counters so far.
    pub fn stats(&self) -> DoorStats {
        DoorStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            refused_writes: self.refused_writes.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Acquire),
        }
    }
}

/// RAII admission permit from [`FrontDoor::admit`]; dropping it frees the
/// concurrency slot.
#[derive(Debug)]
pub struct Permit {
    door: Arc<FrontDoor>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.door.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn door_bounds_concurrency_and_sheds_the_rest() {
        let door = FrontDoor::new("discourse", 2);
        let a = door.admit(Workload::Write).unwrap();
        let _b = door.admit(Workload::Read).unwrap();
        assert_eq!(door.admit(Workload::Read).unwrap_err(), Rejected::Shed);
        assert_eq!(door.stats().shed, 1);
        assert_eq!(door.stats().in_flight, 2);
        // Releasing a permit frees the slot immediately.
        drop(a);
        let _c = door.admit(Workload::Write).unwrap();
        assert_eq!(door.stats().admitted, 3);
    }

    #[test]
    fn read_only_mode_refuses_writes_but_admits_reads() {
        let door = FrontDoor::new("mastodon", 8);
        door.set_read_only(true);
        assert!(door.is_read_only());
        assert_eq!(door.admit(Workload::Write).unwrap_err(), Rejected::ReadOnly);
        let _r = door.admit(Workload::Read).unwrap();
        assert_eq!(door.stats().refused_writes, 1);
        assert_eq!(door.stats().admitted, 1);
        // Leaving degraded mode restores writes.
        door.set_read_only(false);
        let _w = door.admit(Workload::Write).unwrap();
    }

    #[test]
    fn permits_release_on_panic_unwind() {
        let door = FrontDoor::new("spree", 1);
        let result = std::panic::catch_unwind({
            let door = Arc::clone(&door);
            move || {
                let _p = door.admit(Workload::Write).unwrap();
                panic!("handler died");
            }
        });
        assert!(result.is_err());
        assert_eq!(door.stats().in_flight, 0, "permit released by unwind");
        door.admit(Workload::Write).unwrap();
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let door = FrontDoor::new("redmine", 0);
        let _p = door.admit(Workload::Read).unwrap();
        assert_eq!(door.admit(Workload::Read).unwrap_err(), Rejected::Shed);
    }
}
