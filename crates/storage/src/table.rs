//! Table metadata, version chains, and ordered secondary indexes.
//!
//! Each row is a chain of committed versions; transactions buffer writes
//! privately and the chain only grows at commit. Since the sharded-engine
//! refactor the chains themselves live in the database's hash shards
//! (`crate::db`), keyed by `(table, primary key)`: a [`Table`] holds only
//! the immutable schema, the auto-increment cursor, and the *index state*
//! — the primary-key set and secondary indexes — under its own small
//! mutex, so planning a scan never touches row shards and installing a
//! row never touches another table.
//!
//! Secondary indexes reflect the *latest committed* version of each row —
//! the same structure gap locks walk to find interval neighbours (§3.3.2
//! of the paper).
//!
//! Simplification relative to a real engine: index entries for superseded
//! versions are not retained, so a snapshot scan may miss a row whose
//! indexed key changed after the snapshot. The studied workloads never
//! mutate indexed columns (order ids, topic ids, image ids are immutable
//! after insert), so this does not affect any reproduced behaviour.

use crate::error::DbError;
use crate::predicate::ValueInterval;
use crate::schema::{Row, Schema};
use crate::value::Value;
use crate::Result;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

/// Global commit timestamp. 0 = "before any commit".
pub type CommitTs = u64;

/// One committed version of a row. `data = None` is a deletion tombstone.
#[derive(Debug, Clone)]
pub struct RowVersion {
    /// Commit timestamp that created this version.
    pub commit_ts: CommitTs,
    /// Row contents; `None` is a deletion tombstone.
    pub data: Option<Row>,
}

/// The committed history of one primary key, newest last.
#[derive(Debug, Clone, Default)]
pub struct VersionChain {
    versions: Vec<RowVersion>,
}

impl VersionChain {
    /// The newest version visible at `snapshot` (commit_ts <= snapshot).
    pub fn visible(&self, snapshot: CommitTs) -> Option<&Row> {
        self.versions
            .iter()
            .rev()
            .find(|v| v.commit_ts <= snapshot)
            .and_then(|v| v.data.as_ref())
    }

    /// The newest committed version regardless of snapshot.
    pub fn latest(&self) -> Option<&Row> {
        self.versions.last().and_then(|v| v.data.as_ref())
    }

    /// Commit timestamp of the newest version (0 when empty).
    pub fn latest_ts(&self) -> CommitTs {
        self.versions.last().map(|v| v.commit_ts).unwrap_or(0)
    }

    /// Append a version. Timestamps are monotonic per chain: writers of the
    /// same row serialize on its record lock and its shard mutex.
    pub(crate) fn push(&mut self, version: RowVersion) {
        debug_assert!(version.commit_ts >= self.latest_ts());
        self.versions.push(version);
    }
}

#[derive(Debug, Clone)]
struct IndexState {
    unique: bool,
    map: BTreeMap<Value, BTreeSet<i64>>,
}

impl IndexState {
    fn insert(&mut self, key: Value, id: i64) {
        self.map.entry(key).or_default().insert(id);
    }

    fn remove(&mut self, key: &Value, id: i64) {
        if let Some(ids) = self.map.get_mut(key) {
            ids.remove(&id);
            if ids.is_empty() {
                self.map.remove(key);
            }
        }
    }
}

/// Mutable index state: the primary-key set (every id with any committed
/// history, mirroring the shard-resident chains) plus secondary indexes.
#[derive(Debug, Default)]
struct TableIndex {
    pk_set: BTreeSet<i64>,
    /// Secondary indexes keyed by column position.
    indexes: BTreeMap<usize, IndexState>,
}

/// Result of [`Table::index_scan`]: matching row ids plus the gap
/// neighbours `(predecessor, successor)` bracketing the scanned interval.
pub(crate) type IndexScan = (Vec<i64>, (Option<Value>, Option<Value>));

/// A table: schema, index state, and the auto-increment cursor. Row version
/// chains live in the database's shards, not here.
///
/// The auto-increment cursor is atomic so id allocation takes no lock at
/// all (like InnoDB's auto-inc counter, ids allocated by aborted
/// transactions are simply skipped).
#[derive(Debug)]
pub struct Table {
    /// Positional table id within the database.
    pub id: usize,
    /// The table's schema.
    pub schema: Schema,
    index: Mutex<TableIndex>,
    next_auto_id: std::sync::atomic::AtomicI64,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(id: usize, schema: Schema) -> Self {
        let indexes = schema
            .indexes
            .iter()
            .map(|(col, unique)| {
                (
                    *col,
                    IndexState {
                        unique: *unique,
                        map: BTreeMap::new(),
                    },
                )
            })
            .collect();
        Self {
            id,
            schema,
            index: Mutex::new(TableIndex {
                pk_set: BTreeSet::new(),
                indexes,
            }),
            next_auto_id: std::sync::atomic::AtomicI64::new(1),
        }
    }

    /// Allocate the next auto-increment primary key.
    pub fn alloc_id(&self) -> i64 {
        self.next_auto_id
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Reserve explicit ids so auto-increment never collides.
    fn note_id(&self, id: i64) {
        self.next_auto_id
            .fetch_max(id + 1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Primary keys (of rows with any history) within `interval`.
    pub fn pk_candidates(&self, interval: &ValueInterval) -> Vec<i64> {
        Self::pk_candidates_in(&self.index.lock().pk_set, interval)
    }

    fn pk_candidates_in(pk_set: &BTreeSet<i64>, interval: &ValueInterval) -> Vec<i64> {
        let to_i64 = |b: &Bound<Value>, default: Bound<i64>| -> Option<Bound<i64>> {
            match b {
                Bound::Unbounded => Some(default),
                Bound::Included(Value::Int(v)) => Some(Bound::Included(*v)),
                Bound::Excluded(Value::Int(v)) => Some(Bound::Excluded(*v)),
                _ => None,
            }
        };
        match (
            to_i64(&interval.low, Bound::Unbounded),
            to_i64(&interval.high, Bound::Unbounded),
        ) {
            (Some(lo), Some(hi)) => pk_set.range((lo, hi)).copied().collect(),
            // Non-integer bounds on an integer primary key: nothing matches
            // via equality, but fall back to a filter to stay correct.
            _ => pk_set
                .iter()
                .filter(|id| interval.contains(&Value::Int(**id)))
                .copied()
                .collect(),
        }
    }

    /// Nearest primary keys strictly outside `interval` (for pk gap locks).
    pub fn pk_neighbors(&self, interval: &ValueInterval) -> (Option<Value>, Option<Value>) {
        Self::pk_neighbors_in(&self.index.lock().pk_set, interval)
    }

    fn pk_neighbors_in(
        pk_set: &BTreeSet<i64>,
        interval: &ValueInterval,
    ) -> (Option<Value>, Option<Value>) {
        let prev = pk_set
            .iter()
            .rev()
            .find(|id| {
                let v = Value::Int(**id);
                !interval.contains(&v)
                    && match &interval.low {
                        Bound::Unbounded => false,
                        Bound::Included(b) | Bound::Excluded(b) => v < *b,
                    }
            })
            .map(|id| Value::Int(*id));
        let next = pk_set
            .iter()
            .find(|id| {
                let v = Value::Int(**id);
                !interval.contains(&v)
                    && match &interval.high {
                        Bound::Unbounded => false,
                        Bound::Included(b) | Bound::Excluded(b) => v > *b,
                    }
            })
            .map(|id| Value::Int(*id));
        (prev, next)
    }

    /// Candidates and gap neighbours for a primary-key scan, under one
    /// index-lock acquisition (the statement planner's path).
    pub(crate) fn pk_scan(
        &self,
        interval: &ValueInterval,
    ) -> (Vec<i64>, (Option<Value>, Option<Value>)) {
        let index = self.index.lock();
        (
            Self::pk_candidates_in(&index.pk_set, interval),
            Self::pk_neighbors_in(&index.pk_set, interval),
        )
    }

    /// All primary keys with any committed history.
    pub fn all_ids(&self) -> Vec<i64> {
        self.index.lock().pk_set.iter().copied().collect()
    }

    /// Index positions declared on this table (from the immutable schema —
    /// no lock).
    pub fn indexed_columns(&self) -> Vec<usize> {
        self.schema.indexes.iter().map(|(col, _)| *col).collect()
    }

    /// Whether `column` (by position) has an index, and its uniqueness
    /// (from the immutable schema — no lock).
    pub fn index_on(&self, column: usize) -> Option<bool> {
        self.schema
            .indexes
            .iter()
            .find(|(col, _)| *col == column)
            .map(|(_, unique)| *unique)
    }

    fn no_index(&self, column: usize) -> DbError {
        DbError::NoIndex {
            table: self.schema.table.clone(),
            column: self.schema.columns[column].name.clone(),
        }
    }

    /// Primary keys whose *latest committed* indexed key falls in `interval`.
    pub fn index_candidates(&self, column: usize, interval: &ValueInterval) -> Result<Vec<i64>> {
        let index = self.index.lock();
        let state = index
            .indexes
            .get(&column)
            .ok_or_else(|| self.no_index(column))?;
        Ok(Self::index_candidates_in(state, interval))
    }

    fn index_candidates_in(state: &IndexState, interval: &ValueInterval) -> Vec<i64> {
        let mut out = Vec::new();
        for (key, ids) in state
            .map
            .range((interval.low.clone(), interval.high.clone()))
        {
            debug_assert!(interval.contains(key));
            out.extend(ids.iter().copied());
        }
        out
    }

    /// The nearest committed index keys strictly outside `interval`
    /// (`prev`, `next`) — the neighbours a next-key lock widens to.
    pub fn index_neighbors(
        &self,
        column: usize,
        interval: &ValueInterval,
    ) -> Result<(Option<Value>, Option<Value>)> {
        let index = self.index.lock();
        let state = index
            .indexes
            .get(&column)
            .ok_or_else(|| self.no_index(column))?;
        Ok(Self::index_neighbors_in(state, interval))
    }

    fn index_neighbors_in(
        state: &IndexState,
        interval: &ValueInterval,
    ) -> (Option<Value>, Option<Value>) {
        let prev = match &interval.low {
            Bound::Unbounded => None,
            Bound::Included(v) => state
                .map
                .range((Bound::Unbounded, Bound::Excluded(v.clone())))
                .next_back()
                .map(|(k, _)| k.clone()),
            Bound::Excluded(v) => state
                .map
                .range((Bound::Unbounded, Bound::Included(v.clone())))
                .next_back()
                .map(|(k, _)| k.clone()),
        };
        let next = match &interval.high {
            Bound::Unbounded => None,
            Bound::Included(v) => state
                .map
                .range((Bound::Excluded(v.clone()), Bound::Unbounded))
                .next()
                .map(|(k, _)| k.clone()),
            Bound::Excluded(v) => state
                .map
                .range((Bound::Included(v.clone()), Bound::Unbounded))
                .next()
                .map(|(k, _)| k.clone()),
        };
        (prev, next)
    }

    /// Candidates and gap neighbours for a secondary-index scan, under one
    /// index-lock acquisition.
    pub(crate) fn index_scan(&self, column: usize, interval: &ValueInterval) -> Result<IndexScan> {
        let index = self.index.lock();
        let state = index
            .indexes
            .get(&column)
            .ok_or_else(|| self.no_index(column))?;
        Ok((
            Self::index_candidates_in(state, interval),
            Self::index_neighbors_in(state, interval),
        ))
    }

    /// Check unique indexes for a prospective row (against latest committed
    /// state). `exclude_id` skips the row's own entry on updates.
    pub fn check_unique(&self, row: &Row, exclude_id: Option<i64>) -> Result<()> {
        let index = self.index.lock();
        for (col, state) in &index.indexes {
            if !state.unique {
                continue;
            }
            let key = row.at(*col);
            if key.is_null() {
                continue;
            }
            if let Some(ids) = state.map.get(key) {
                let conflict = ids.iter().any(|id| Some(*id) != exclude_id);
                if conflict {
                    return Err(DbError::UniqueViolation {
                        table: self.schema.table.clone(),
                        column: self.schema.columns[*col].name.clone(),
                        value: key.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Install a committed write's index effects: reserve the id, record pk
    /// membership, and move secondary-index entries from the old latest row
    /// to the new one. The caller (the commit path) holds the row's shard
    /// lock, which serializes index maintenance per row.
    pub(crate) fn apply_index(&self, id: i64, old: Option<&Row>, new: Option<&Row>) {
        self.note_id(id);
        let mut index = self.index.lock();
        index.pk_set.insert(id);
        for (col, state) in index.indexes.iter_mut() {
            if let Some(old_row) = old {
                state.remove(old_row.at(*col), id);
            }
            if let Some(new_row) = new {
                state.insert(new_row.at(*col).clone(), id);
            }
        }
    }

    /// Drop all index state and reset the auto-increment cursor (used by
    /// [`Database::reset`](crate::Database::reset), which also drops the
    /// shard-resident chains).
    pub(crate) fn clear_index(&self) {
        let mut index = self.index.lock();
        index.pk_set.clear();
        for state in index.indexes.values_mut() {
            state.map.clear();
        }
        self.next_auto_id
            .store(1, std::sync::atomic::Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{row_from_pairs, Column};
    use crate::value::ColumnType;

    fn table() -> Table {
        let schema = Schema::new(
            "payments",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("order_id", ColumnType::Int),
                Column::new("token", ColumnType::Str).nullable(),
            ],
            "id",
        )
        .unwrap()
        .with_index("order_id")
        .unwrap()
        .with_unique_index("token")
        .unwrap();
        Table::new(0, schema)
    }

    fn pay(t: &Table, id: i64, order: i64, token: Option<&str>) -> Row {
        row_from_pairs(
            &t.schema,
            &[
                ("id", id.into()),
                ("order_id", order.into()),
                ("token", token.map(Value::from).unwrap_or(Value::Null)),
            ],
        )
        .unwrap()
    }

    /// Chains now live in the database shards; tests pair a local chain map
    /// with the table's index state, applying writes the way the commit
    /// path does.
    struct Rows(BTreeMap<i64, VersionChain>);

    impl Rows {
        fn new() -> Self {
            Rows(BTreeMap::new())
        }

        fn apply(&mut self, t: &Table, id: i64, data: Option<Row>, commit_ts: CommitTs) {
            let chain = self.0.entry(id).or_default();
            let old = chain.latest().cloned();
            t.apply_index(id, old.as_ref(), data.as_ref());
            chain.push(RowVersion { commit_ts, data });
        }

        fn chain(&self, id: i64) -> Option<&VersionChain> {
            self.0.get(&id)
        }

        fn live_count(&self) -> usize {
            self.0.values().filter(|c| c.latest().is_some()).count()
        }
    }

    #[test]
    fn version_visibility_respects_snapshots() {
        let t = table();
        let mut rows = Rows::new();
        rows.apply(&t, 1, Some(pay(&t, 1, 9, None)), 5);
        rows.apply(&t, 1, Some(pay(&t, 1, 12, None)), 8);
        let chain = rows.chain(1).unwrap();
        assert!(chain.visible(4).is_none());
        assert_eq!(
            chain
                .visible(5)
                .unwrap()
                .get_int(&t.schema, "order_id")
                .unwrap(),
            9
        );
        assert_eq!(
            chain
                .visible(7)
                .unwrap()
                .get_int(&t.schema, "order_id")
                .unwrap(),
            9
        );
        assert_eq!(
            chain
                .visible(8)
                .unwrap()
                .get_int(&t.schema, "order_id")
                .unwrap(),
            12
        );
        assert_eq!(chain.latest_ts(), 8);
    }

    #[test]
    fn deletion_tombstones_hide_rows() {
        let t = table();
        let mut rows = Rows::new();
        rows.apply(&t, 1, Some(pay(&t, 1, 9, None)), 5);
        rows.apply(&t, 1, None, 9);
        let chain = rows.chain(1).unwrap();
        assert!(chain.visible(5).is_some());
        assert!(chain.visible(9).is_none());
        assert!(chain.latest().is_none());
        assert_eq!(rows.live_count(), 0);
        // The pk set remembers the id (chain history survives deletion).
        assert_eq!(t.all_ids(), vec![1]);
    }

    #[test]
    fn index_candidates_and_neighbors_match_paper_example() {
        let t = table();
        let mut rows = Rows::new();
        // Committed order_ids {9, 12}, as in §3.3.2.
        rows.apply(&t, 1, Some(pay(&t, 1, 9, None)), 1);
        rows.apply(&t, 2, Some(pay(&t, 2, 12, None)), 2);
        let col = t.schema.column_index("order_id").unwrap();
        let point = ValueInterval::point(Value::Int(10));
        assert!(t.index_candidates(col, &point).unwrap().is_empty());
        let (prev, next) = t.index_neighbors(col, &point).unwrap();
        assert_eq!(prev, Some(Value::Int(9)));
        assert_eq!(next, Some(Value::Int(12)));
        // The widened gap covers 10 and 11 — the false-conflict interval.
        let gap = point.widen_to_gap(prev, next);
        assert!(gap.contains(&Value::Int(11)));
    }

    #[test]
    fn index_neighbors_open_ended() {
        let t = table();
        let mut rows = Rows::new();
        rows.apply(&t, 1, Some(pay(&t, 1, 9, None)), 1);
        let col = t.schema.column_index("order_id").unwrap();
        let point = ValueInterval::point(Value::Int(100));
        let (prev, next) = t.index_neighbors(col, &point).unwrap();
        assert_eq!(prev, Some(Value::Int(9)));
        assert_eq!(next, None); // the (latest, +inf) hot interval
    }

    #[test]
    fn index_tracks_updates_and_deletes() {
        let t = table();
        let mut rows = Rows::new();
        rows.apply(&t, 1, Some(pay(&t, 1, 9, None)), 1);
        let col = t.schema.column_index("order_id").unwrap();
        let all = ValueInterval::all();
        assert_eq!(t.index_candidates(col, &all).unwrap(), vec![1]);
        // Update moves the key.
        rows.apply(&t, 1, Some(pay(&t, 1, 20, None)), 2);
        let point9 = ValueInterval::point(Value::Int(9));
        assert!(t.index_candidates(col, &point9).unwrap().is_empty());
        let point20 = ValueInterval::point(Value::Int(20));
        assert_eq!(t.index_candidates(col, &point20).unwrap(), vec![1]);
        // Delete clears it.
        rows.apply(&t, 1, None, 3);
        assert!(t.index_candidates(col, &all).unwrap().is_empty());
    }

    #[test]
    fn unique_checks() {
        let t = table();
        let mut rows = Rows::new();
        rows.apply(&t, 1, Some(pay(&t, 1, 9, Some("tok-a"))), 1);
        // Same token, different row: violation.
        let dup = pay(&t, 2, 12, Some("tok-a"));
        assert!(matches!(
            t.check_unique(&dup, None),
            Err(DbError::UniqueViolation { .. })
        ));
        // Same row updating itself: fine.
        t.check_unique(&dup, Some(1)).unwrap();
        // NULL tokens never collide.
        let n1 = pay(&t, 3, 13, None);
        t.check_unique(&n1, None).unwrap();
        // Non-unique index never complains.
        let same_order = pay(&t, 4, 9, Some("tok-b"));
        t.check_unique(&same_order, None).unwrap();
    }

    #[test]
    fn auto_id_skips_explicit_ids() {
        let t = table();
        let mut rows = Rows::new();
        assert_eq!(t.alloc_id(), 1);
        rows.apply(&t, 10, Some(pay(&t, 10, 9, None)), 1);
        assert_eq!(t.alloc_id(), 11);
    }

    #[test]
    fn clear_index_resets_everything() {
        let t = table();
        let mut rows = Rows::new();
        rows.apply(&t, 10, Some(pay(&t, 10, 9, None)), 1);
        t.clear_index();
        assert!(t.all_ids().is_empty());
        let col = t.schema.column_index("order_id").unwrap();
        assert!(t
            .index_candidates(col, &ValueInterval::all())
            .unwrap()
            .is_empty());
        assert_eq!(t.alloc_id(), 1);
    }

    #[test]
    fn missing_index_errors() {
        let t = table();
        // "id" has no secondary index; candidates on it should error.
        let id_col = t.schema.column_index("id").unwrap();
        assert!(matches!(
            t.index_candidates(id_col, &ValueInterval::all()),
            Err(DbError::NoIndex { .. })
        ));
    }
}
