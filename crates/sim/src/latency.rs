//! Named physical costs charged by the substrates.
//!
//! §5.1 of the paper: "Disk I/Os and network round trips are the decisive
//! factors" behind the order-of-magnitude latency differences between lock
//! implementations. The substrates charge these costs at exactly the points
//! where the real systems pay them:
//!
//! * the KV client charges `kv_round_trip` once per command;
//! * the SQL session charges `sql_round_trip` once per statement issued by a
//!   remote client;
//! * a durable commit charges `durable_flush` (the `DB` lock's table write);
//! * in-process work charges `in_memory_op` (close to zero).

use crate::clock::Clock;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Cost constants for one deployment scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// One application-server → Redis → application-server round trip.
    pub kv_round_trip: Duration,
    /// One application-server → RDBMS → application-server round trip.
    pub sql_round_trip: Duration,
    /// Synchronous log/data flush performed by a durable commit.
    pub durable_flush: Duration,
    /// An in-process operation (map lookup, mutex acquire). Usually zero;
    /// non-zero values model very slow machines in tests.
    pub in_memory_op: Duration,
    /// One client → application-service → client request round trip (the
    /// wire cost in front of any substrate work the handler then performs).
    pub service_round_trip: Duration,
}

impl LatencyModel {
    /// All costs zero: unit tests that only care about interleavings.
    pub fn zero() -> Self {
        Self {
            kv_round_trip: Duration::ZERO,
            sql_round_trip: Duration::ZERO,
            durable_flush: Duration::ZERO,
            in_memory_op: Duration::ZERO,
            service_round_trip: Duration::ZERO,
        }
    }

    /// The deployment the paper evaluates: applications, Redis and the RDBMS
    /// on separate machines connected by a 1 Gbit/s LAN, RDBMS flushing to
    /// disk on commit. Round trips are a few hundred microseconds and a
    /// durable flush costs milliseconds; these match the bands visible in
    /// the paper's Figure 2 (in-memory locks ≪ 1 µs, KV/SFU locks around a
    /// millisecond, DB-table lock tens of milliseconds).
    pub fn paper() -> Self {
        Self {
            kv_round_trip: Duration::from_micros(250),
            sql_round_trip: Duration::from_micros(300),
            durable_flush: Duration::from_millis(10),
            in_memory_op: Duration::ZERO,
            service_round_trip: Duration::from_micros(500),
        }
    }

    /// A scaled-down variant for wall-clock benchmarks that need many
    /// iterations: same *ratios* as [`LatencyModel::paper`], ten times
    /// smaller absolute values.
    pub fn paper_scaled_down() -> Self {
        let p = Self::paper();
        Self {
            kv_round_trip: p.kv_round_trip / 10,
            sql_round_trip: p.sql_round_trip / 10,
            durable_flush: p.durable_flush / 10,
            in_memory_op: Duration::ZERO,
            service_round_trip: p.service_round_trip / 10,
        }
    }

    /// Charge a cost onto a clock (blocking or advancing virtual time).
    pub fn charge(&self, clock: &dyn Clock, cost: Cost) {
        let d = self.duration_of(cost);
        if !d.is_zero() {
            clock.sleep(d);
        }
    }

    /// Look up the duration of a named cost.
    pub fn duration_of(&self, cost: Cost) -> Duration {
        match cost {
            Cost::KvRoundTrip => self.kv_round_trip,
            Cost::SqlRoundTrip => self.sql_round_trip,
            Cost::DurableFlush => self.durable_flush,
            Cost::InMemoryOp => self.in_memory_op,
            Cost::ServiceRoundTrip => self.service_round_trip,
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::zero()
    }
}

/// The named cost categories charged by substrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cost {
    /// One application ↔ KV-store network round trip.
    KvRoundTrip,
    /// One application ↔ RDBMS network round trip.
    SqlRoundTrip,
    /// A synchronous durable flush at commit.
    DurableFlush,
    /// An in-process operation (usually free).
    InMemoryOp,
    /// One client ↔ application-service request round trip.
    ServiceRoundTrip,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    #[test]
    fn paper_model_orders_costs_as_figure2_expects() {
        let m = LatencyModel::paper();
        assert!(m.in_memory_op < m.kv_round_trip);
        assert!(m.kv_round_trip < m.durable_flush);
        assert!(m.sql_round_trip < m.durable_flush);
        // The flush is at least an order of magnitude above a round trip.
        assert!(m.durable_flush >= m.sql_round_trip * 10);
    }

    #[test]
    fn charge_advances_virtual_clock() {
        let clock = VirtualClock::new();
        let m = LatencyModel::paper();
        m.charge(&clock, Cost::KvRoundTrip);
        assert_eq!(clock.now(), m.kv_round_trip);
        m.charge(&clock, Cost::DurableFlush);
        assert_eq!(clock.now(), m.kv_round_trip + m.durable_flush);
    }

    #[test]
    fn zero_model_charges_nothing() {
        let clock = VirtualClock::new();
        let m = LatencyModel::zero();
        for c in [
            Cost::KvRoundTrip,
            Cost::SqlRoundTrip,
            Cost::DurableFlush,
            Cost::InMemoryOp,
            Cost::ServiceRoundTrip,
        ] {
            m.charge(&clock, c);
        }
        assert_eq!(clock.now(), Duration::ZERO);
    }

    #[test]
    fn scaled_model_preserves_ratios() {
        let p = LatencyModel::paper();
        let s = LatencyModel::paper_scaled_down();
        assert_eq!(p.kv_round_trip.as_nanos() / s.kv_round_trip.as_nanos(), 10);
        assert_eq!(p.durable_flush.as_nanos() / s.durable_flush.as_nanos(), 10);
    }
}
