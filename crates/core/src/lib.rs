//! The ad hoc transaction toolkit — the paper's findings turned into a
//! library.
//!
//! The paper's closing discussion (§6) argues that "new abstractions and
//! tools are needed" because developers keep hand-rolling coordination in
//! application code. This crate is that toolkit, built from the paper's own
//! catalog:
//!
//! * [`taxonomy`] — the study's classification vocabulary (pessimistic vs
//!   optimistic, lock/validation implementations, coordination
//!   granularities, failure-handling strategies, issue categories), shared
//!   with the `adhoc-study` corpus.
//! * [`locks`] — all **seven** lock implementations found in the wild
//!   (§3.2.1, Figure 2): `SYNC`, `MEM`, `MEM-LRU`, `KV-SETNX`, `KV-MULTI`,
//!   `SFU`, and `DB`, behind one [`locks::AdHocLock`] trait. Every bug the
//!   paper found in these primitives (§4.1.1) is available as an explicit
//!   fault-injection switch, off by default.
//! * [`validation`] — the two validation-procedure implementations
//!   (§3.2.2): ORM-assisted (atomic) and hand-crafted (atomic or, as found
//!   in Discourse/SCM Suite, non-atomic).
//! * [`optimistic`] — the §6 proposal made concrete: an ORM-layer
//!   optimistic transaction with tracked read/write sets, atomic
//!   validate-and-commit, and save/restore *continuations* for
//!   multi-request interactions (§3.1.2).
//! * [`hints`] — the §6 "proxy module for existing hints": one interface
//!   over explicit user/row/table locks with a database-table fallback when
//!   the engine lacks advisory locks (Table 7).
//! * [`checker`] — the periodic consistency checker ("fsck for the
//!   database") the paper observed applications running (§3.4.2).
//! * [`monitor`] — a runtime hazard detector (the §6 "development support
//!   tools"): flags lock-after-read RMWs, expired-lease releases and
//!   mixed-coordination tables as they happen.
//! * [`saga`] — the classic Sagas alternative to multi-request ad hoc
//!   transactions (§3.1.2), for the semantic comparison the paper draws.
//! * [`retry`] — one [`retry::RetryPolicy`] behind every coordination
//!   path's retry loop (§3.4.1), with a toolkit-wide [`retry::Retryable`]
//!   classification replacing each site's hand-rolled backoff arithmetic.

#![warn(missing_docs)]

pub mod checker;
pub mod error;
pub mod hints;
pub mod locks;
pub mod monitor;
pub mod optimistic;
pub mod resilience;
pub mod retry;
pub mod saga;
pub mod taxonomy;
pub mod validation;

pub use error::ToolkitError;
pub use locks::{AdHocLock, Guard, LockError};
pub use resilience::{FrontDoor, Rejected, Workload};
pub use retry::{BackoffPolicy, RetryObserver, RetryPolicy, Retryable};

/// Result alias for toolkit operations.
pub type Result<T> = std::result::Result<T, ToolkitError>;
pub use taxonomy::*;
