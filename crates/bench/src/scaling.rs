//! Engine-scaling microbenchmarks: commit throughput vs thread count.
//!
//! The paper's §5 performance story is that coordination which *could* be
//! avoided shows up as lost scalability under contention. These sweeps
//! measure the two substrate spines directly:
//!
//! * [`commit_scaling`] — storage-engine commit throughput, N threads each
//!   committing single-row update transactions, on **disjoint** keys (no
//!   two threads ever touch the same row) vs one **same** hot key. With a
//!   sharded commit path, disjoint-key throughput should scale with
//!   threads; same-key throughput is bounded by the row's record lock
//!   whatever the engine does.
//! * [`kv_scaling`] — KV store command throughput, N threads each running
//!   `WATCH`-style CAS loops (version read + `EXEC`) on disjoint vs shared
//!   keys. With a striped store, disjoint-key commands never share a lock.
//!
//! Every row reports throughput and abort rate, and renders to the
//! machine-readable `BENCH_fig2.json` / `BENCH_fig3.json` via
//! [`render_json`] / [`bench_json`] (consumed by `tools/bench.sh` and the
//! CI smoke gate).

use adhoc_kv::Store;
use adhoc_storage::{
    Column, ColumnType, Database, DbConfig, EngineProfile, IsolationLevel, Schema,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which key pattern the worker threads use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyPattern {
    /// Every thread owns a private key range: zero logical conflicts.
    Disjoint,
    /// Every thread hammers one shared hot key: maximal conflicts.
    SameKey,
}

impl KeyPattern {
    /// JSON/label name.
    pub fn label(self) -> &'static str {
        match self {
            KeyPattern::Disjoint => "disjoint",
            KeyPattern::SameKey => "same_key",
        }
    }
}

/// One measured (threads, pattern) cell.
#[derive(Debug, Clone)]
pub struct ScalingCell {
    /// Worker thread count.
    pub threads: usize,
    /// Key pattern.
    pub pattern: KeyPattern,
    /// Committed operations per second.
    pub throughput_ops: f64,
    /// Aborted-attempt fraction (aborts / attempts), 0.0 when nothing
    /// retried.
    pub abort_rate: f64,
}

/// Rows per thread in the disjoint workload (each thread cycles through
/// its own private ids).
const ROWS_PER_THREAD: i64 = 16;

/// Durability mode of one WAL-ablation cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalMode {
    /// No write-ahead log at all.
    Off,
    /// Per-commit fsync (`WalSyncPolicy::OnCommit`): the safe policy,
    /// paid on every commit.
    OnCommit,
    /// Group commit (`WalSyncPolicy::GroupCommit`): still acked ⇒ durable,
    /// but concurrent commits share one leader fsync.
    GroupCommit,
}

impl WalMode {
    /// JSON/label name.
    pub fn label(self) -> &'static str {
        match self {
            WalMode::Off => "off",
            WalMode::OnCommit => "on_commit",
            WalMode::GroupCommit => "group_commit",
        }
    }

    /// Whether a log exists at all.
    pub fn enabled(self) -> bool {
        self != WalMode::Off
    }
}

/// Build the bench table and seed every row the sweep will touch.
/// `wal` selects the write-ahead-log policy so the same workload measures
/// durability overhead.
fn seed_db(threads_max: usize, wal: WalMode) -> Database {
    let cfg = DbConfig::in_memory(EngineProfile::PostgresLike);
    let db = Database::new(match wal {
        WalMode::Off => cfg,
        WalMode::OnCommit => cfg.with_wal(),
        WalMode::GroupCommit => cfg.with_wal_group_commit(),
    });
    db.create_table(
        Schema::new(
            "bench_rows",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("val", ColumnType::Int),
            ],
            "id",
        )
        .expect("schema"),
    )
    .expect("create");
    let rows = (threads_max as i64) * ROWS_PER_THREAD + 1;
    for id in 0..rows {
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.insert("bench_rows", &[("id", id.into()), ("val", 0.into())])
        })
        .expect("seed");
    }
    db
}

/// Measure one (threads, pattern) cell for `window` on a fresh database.
fn measure_commits(threads: usize, pattern: KeyPattern, window: Duration) -> ScalingCell {
    measure_commits_wal(threads, pattern, window, WalMode::Off)
}

/// Warmup slice run before the measured window of each cell: lets thread
/// spawn cost, allocator steady state, and (with batching) the first
/// timestamp-block grants settle before counting starts. The counters are
/// zeroed at the warmup/measure boundary.
fn warmup_of(window: Duration) -> Duration {
    window / 4
}

/// Like [`measure_commits`], with the WAL switchable on.
fn measure_commits_wal(
    threads: usize,
    pattern: KeyPattern,
    window: Duration,
    wal: WalMode,
) -> ScalingCell {
    let db = seed_db(threads, wal);
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    let attempts = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for t in 0..threads {
            let db = db.clone();
            let stop = Arc::clone(&stop);
            let committed = Arc::clone(&committed);
            let attempts = Arc::clone(&attempts);
            s.spawn(move || {
                let base = match pattern {
                    KeyPattern::Disjoint => 1 + (t as i64) * ROWS_PER_THREAD,
                    KeyPattern::SameKey => 0,
                };
                let mut i: i64 = 0;
                while !stop.load(Ordering::Relaxed) {
                    let id = match pattern {
                        KeyPattern::Disjoint => base + (i % ROWS_PER_THREAD),
                        KeyPattern::SameKey => 0,
                    };
                    attempts.fetch_add(1, Ordering::Relaxed);
                    let ok = db
                        .run_with_retries(IsolationLevel::ReadCommitted, 64, |txn| {
                            txn.update("bench_rows", id, &[("val", i.into())])
                        })
                        .is_ok();
                    if ok {
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                    i += 1;
                }
            });
        }
        std::thread::sleep(warmup_of(window));
        committed.store(0, Ordering::Relaxed);
        attempts.store(0, Ordering::Relaxed);
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    let stats = db.stats();
    let attempts = attempts.load(Ordering::Relaxed).max(1);
    ScalingCell {
        threads,
        pattern,
        throughput_ops: committed.load(Ordering::Relaxed) as f64 / window.as_secs_f64(),
        // `aborts` counts every rolled-back transaction (retried or not).
        abort_rate: stats.aborts as f64 / (attempts + stats.aborts) as f64,
    }
}

/// Storage-engine commit-throughput sweep over `thread_counts`.
pub fn commit_scaling(thread_counts: &[usize], window: Duration) -> Vec<ScalingCell> {
    let mut out = Vec::new();
    for &threads in thread_counts {
        for pattern in [KeyPattern::Disjoint, KeyPattern::SameKey] {
            out.push(measure_commits(threads, pattern, window));
        }
    }
    out
}

/// Measure one KV cell: CAS loops (version read + watched `EXEC`) per
/// second; an `EXEC` that validates against a moved version counts as an
/// abort.
fn measure_kv(threads: usize, pattern: KeyPattern, window: Duration) -> ScalingCell {
    use adhoc_kv::{SetMode, WriteOp};
    let store = Store::new();
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    let attempts = Arc::new(AtomicU64::new(0));
    let t0 = Duration::ZERO;
    std::thread::scope(|s| {
        for t in 0..threads {
            let store = store.clone();
            let stop = Arc::clone(&stop);
            let committed = Arc::clone(&committed);
            let attempts = Arc::clone(&attempts);
            s.spawn(move || {
                use std::fmt::Write;
                // Precompute the key set and reuse one watched tuple + one
                // buffered op: the steady-state loop then allocates nothing,
                // so the sweep measures the store, not the workload's
                // formatting.
                let keys: Vec<String> = match pattern {
                    KeyPattern::Disjoint => (0..16).map(|k| format!("k:{t}:{k}")).collect(),
                    KeyPattern::SameKey => vec!["hot".to_string()],
                };
                let mut watched = vec![(String::new(), 0u64)];
                let mut ops = vec![WriteOp::Set {
                    key: String::new(),
                    value: String::new(),
                    mode: SetMode::Always,
                    ttl: None,
                }];
                let mut i: u64 = 0;
                while !stop.load(Ordering::Relaxed) {
                    let key = &keys[(i as usize) % keys.len()];
                    attempts.fetch_add(1, Ordering::Relaxed);
                    let ver = store.version(key, t0);
                    watched[0].0.clear();
                    watched[0].0.push_str(key);
                    watched[0].1 = ver;
                    if let WriteOp::Set {
                        key: k, value: v, ..
                    } = &mut ops[0]
                    {
                        k.clear();
                        k.push_str(key);
                        v.clear();
                        let _ = write!(v, "{i}");
                    }
                    let applied = store.exec(&watched, &ops, t0).expect("exec");
                    if applied {
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                    i += 1;
                }
            });
        }
        std::thread::sleep(warmup_of(window));
        committed.store(0, Ordering::Relaxed);
        attempts.store(0, Ordering::Relaxed);
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    let attempts = attempts.load(Ordering::Relaxed).max(1);
    let ok = committed.load(Ordering::Relaxed);
    ScalingCell {
        threads,
        pattern,
        throughput_ops: ok as f64 / window.as_secs_f64(),
        abort_rate: (attempts - ok.min(attempts)) as f64 / attempts as f64,
    }
}

/// KV-store command-throughput sweep over `thread_counts`.
pub fn kv_scaling(thread_counts: &[usize], window: Duration) -> Vec<ScalingCell> {
    let mut out = Vec::new();
    for &threads in thread_counts {
        for pattern in [KeyPattern::Disjoint, KeyPattern::SameKey] {
            out.push(measure_kv(threads, pattern, window));
        }
    }
    out
}

/// One WAL-ablation cell: the commit workload under one durability mode.
#[derive(Debug, Clone)]
pub struct WalCell {
    /// Durability mode of this cell.
    pub mode: WalMode,
    /// The measured cell.
    pub cell: ScalingCell,
}

/// Durability-overhead sweep: the fig-2 commit workload under WAL off,
/// per-commit fsync, and group commit, over `thread_counts`. WAL-off
/// cells double as the regression guard that `wal: None` keeps the
/// sharded commit path free of durability cost; the group-commit column
/// shows how much of the per-commit-fsync tax amortization recovers.
pub fn wal_commit_scaling(thread_counts: &[usize], window: Duration) -> Vec<WalCell> {
    let mut out = Vec::new();
    for &threads in thread_counts {
        for pattern in [KeyPattern::Disjoint, KeyPattern::SameKey] {
            for mode in [WalMode::Off, WalMode::OnCommit, WalMode::GroupCommit] {
                out.push(WalCell {
                    mode,
                    cell: measure_commits_wal(threads, pattern, window, mode),
                });
            }
        }
    }
    out
}

/// Render the WAL ablation as `BENCH_wal.json`: same row shape as fig 2
/// plus a `"wal"` flag and a `"policy"` label, so the modes sit side by
/// side in one file.
pub fn render_wal_json(cells: &[WalCell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"storage_commit_wal_overhead\",\n");
    out.push_str("  \"unit\": \"ops_per_sec\",\n");
    out.push_str("  \"rows\": [\n");
    for (i, w) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"pattern\": \"{}\", \"wal\": {}, \"policy\": \"{}\", \"throughput_ops\": {:.1}, \"abort_rate\": {:.6}}}{}\n",
            w.cell.threads,
            w.cell.pattern.label(),
            w.mode.enabled(),
            w.mode.label(),
            w.cell.throughput_ops,
            w.cell.abort_rate,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render a sweep as the machine-readable JSON the CI/bench tooling
/// consumes: `{"bench": ..., "rows": [{"threads", "pattern",
/// "throughput_ops", "abort_rate"}, ...]}`. `baseline` (if any) is a
/// pre-recorded JSON object spliced in verbatim under `"baseline"` so one
/// file carries before/after.
pub fn render_json(bench: &str, cells: &[ScalingCell], baseline: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{bench}\",\n"));
    out.push_str("  \"unit\": \"ops_per_sec\",\n");
    out.push_str("  \"rows\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"pattern\": \"{}\", \"throughput_ops\": {:.1}, \"abort_rate\": {:.6}}}{}\n",
            c.threads,
            c.pattern.label(),
            c.throughput_ops,
            c.abort_rate,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]");
    if let Some(b) = baseline {
        out.push_str(",\n  \"baseline\": ");
        out.push_str(b.trim());
    }
    out.push_str("\n}\n");
    out
}

/// The standard thread sweep.
pub fn default_threads() -> Vec<usize> {
    vec![1, 2, 4, 8]
}

/// Duty cycle per cell: `BENCH_SCALE=smoke` keeps the whole sweep under a
/// couple of seconds for CI; anything else runs the full window.
pub fn window_from_env() -> Duration {
    match std::env::var("BENCH_SCALE").as_deref() {
        Ok("smoke") => Duration::from_millis(25),
        _ => Duration::from_millis(200),
    }
}

/// Convenience used by `paper-eval bench-json`: run both sweeps and return
/// `(fig2_json, fig3_json)`.
pub fn bench_json(baseline_fig2: Option<&str>, baseline_fig3: Option<&str>) -> (String, String) {
    let threads = default_threads();
    let window = window_from_env();
    let fig2 = commit_scaling(&threads, window);
    let fig3 = kv_scaling(&threads, window);
    (
        render_json("storage_commit_scaling", &fig2, baseline_fig2),
        render_json("kv_command_scaling", &fig3, baseline_fig3),
    )
}

/// Convenience used by `paper-eval bench-json`: run the WAL ablation and
/// return the `BENCH_wal.json` body.
pub fn wal_bench_json() -> String {
    render_wal_json(&wal_commit_scaling(&default_threads(), window_from_env()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_sweep_smoke() {
        let _serial = crate::SERIAL_MEASUREMENTS.lock();
        let cells = commit_scaling(&[1, 2], Duration::from_millis(20));
        assert_eq!(cells.len(), 4);
        for c in &cells {
            assert!(c.throughput_ops > 0.0, "{c:?}");
            assert!((0.0..=1.0).contains(&c.abort_rate), "{c:?}");
        }
        let kv = kv_scaling(&[2], Duration::from_millis(20));
        assert_eq!(kv.len(), 2);
        let json = render_json("storage_commit_scaling", &cells, Some("{\"note\": 1}"));
        assert!(json.contains("\"threads\": 1"));
        assert!(json.contains("\"baseline\""));
    }

    #[test]
    fn wal_ablation_smoke() {
        let _serial = crate::SERIAL_MEASUREMENTS.lock();
        let cells = wal_commit_scaling(&[2], Duration::from_millis(20));
        assert_eq!(cells.len(), 6); // 2 patterns x {off, on_commit, group_commit}
        for w in &cells {
            assert!(w.cell.throughput_ops > 0.0, "{w:?}");
        }
        let json = render_wal_json(&cells);
        assert!(json.contains("\"wal\": true"));
        assert!(json.contains("\"wal\": false"));
        assert!(json.contains("\"policy\": \"group_commit\""));
    }
}
