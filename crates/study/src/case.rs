//! Case records and the application enumeration.

use adhoc_core::taxonomy::{CcAlgorithm, FailureHandling, IssueCategory, LockImpl, ValidationImpl};

/// The eight studied applications (Table 2), in the paper's row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum App {
    /// Discourse (forum).
    Discourse,
    /// Mastodon (social network).
    Mastodon,
    /// Spree (e-commerce).
    Spree,
    /// Redmine (project management).
    Redmine,
    /// Broadleaf Commerce (e-commerce).
    Broadleaf,
    /// SCM Biz Suite (supply chain).
    ScmSuite,
    /// JumpServer (access control).
    JumpServer,
    /// Saleor (e-commerce).
    Saleor,
}

impl App {
    /// All eight applications, in Table 2's row order.
    pub fn all() -> [App; 8] {
        [
            App::Discourse,
            App::Mastodon,
            App::Spree,
            App::Redmine,
            App::Broadleaf,
            App::ScmSuite,
            App::JumpServer,
            App::Saleor,
        ]
    }

    /// Display name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            App::Discourse => "Discourse",
            App::Mastodon => "Mastodon",
            App::Spree => "Spree",
            App::Redmine => "Redmine",
            App::Broadleaf => "Broadleaf",
            App::ScmSuite => "SCM Suite",
            App::JumpServer => "JumpServer",
            App::Saleor => "Saleor",
        }
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One studied ad hoc transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Case {
    /// Stable identifier, `app/api-slug`.
    pub id: &'static str,
    /// The application the case was found in.
    pub app: App,
    /// What the coordinated business logic does.
    pub api: &'static str,
    /// Pessimistic (lock-based) or optimistic (validation-based), §3.
    pub cc: CcAlgorithm,
    /// Lock implementation (pessimistic cases), §3.2.1.
    pub lock_impl: Option<LockImpl>,
    /// Validation implementation (optimistic cases), §3.2.2.
    pub validation_impl: Option<ValidationImpl>,
    /// Lives in a core API of the application (Table 3).
    pub critical: bool,
    /// Coordinates only a portion of the database operations in its scope
    /// (§3.1.1).
    pub partial_coordination: bool,
    /// Coordinates operations across multiple HTTP requests (§3.1.2).
    pub multi_request: bool,
    /// Coordinates non-database operations too (§3.1.3).
    pub non_db_ops: bool,
    /// Pessimistic cases: a single lock (vs. multiple locks acquired in a
    /// consistent order), §3.4.1.
    pub single_lock: bool,
    /// Exploits the read–modify–write pattern (§3.3.1).
    pub rmw: bool,
    /// Exploits the associated-access pattern (§3.3.1).
    pub associated_access: bool,
    /// Column-based fine-grained coordination (§3.3.2).
    pub column_based: bool,
    /// Predicate-based fine-grained coordination (§3.3.2).
    pub predicate_based: bool,
    /// Failure-handling strategy (optimistic cases), §3.4.1.
    pub failure_handling: Option<FailureHandling>,
    /// Correctness issues found (empty = correct), §4.
    pub issues: &'static [IssueCategory],
    /// Known severe real-world consequence (Table 5b), when any.
    pub severe_consequence: Option<&'static str>,
    /// Issue-report id this case was included in, when reported.
    pub report: Option<&'static str>,
    /// Whether that report was acknowledged by developers.
    pub acknowledged: bool,
}

impl Case {
    /// Does this case have at least one correctness issue?
    pub fn is_buggy(&self) -> bool {
        !self.issues.is_empty()
    }

    /// Coarse-grained coordination: one lock covering multiple accesses
    /// via the RMW or associated-access pattern (§3.3.1).
    pub fn coarse_grained(&self) -> bool {
        self.rmw || self.associated_access
    }

    /// Fine-grained coordination: column- or predicate-based (§3.3.2).
    pub fn fine_grained(&self) -> bool {
        self.column_based || self.predicate_based
    }

    /// Number of distinct issue *categories* on this case (Table 5a counts
    /// cases once per category).
    pub fn issue_categories(&self) -> usize {
        let mut cats: Vec<IssueCategory> = self.issues.to_vec();
        cats.sort_by_key(|c| format!("{c:?}"));
        cats.dedup();
        cats.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_core::taxonomy::IssueCategory::*;

    fn blank() -> Case {
        Case {
            id: "test/none",
            app: App::Discourse,
            api: "",
            cc: CcAlgorithm::Pessimistic,
            lock_impl: Some(LockImpl::Mem),
            validation_impl: None,
            critical: false,
            partial_coordination: false,
            multi_request: false,
            non_db_ops: false,
            single_lock: true,
            rmw: false,
            associated_access: false,
            column_based: false,
            predicate_based: false,
            failure_handling: None,
            issues: &[],
            severe_consequence: None,
            report: None,
            acknowledged: false,
        }
    }

    #[test]
    fn buggy_and_granularity_helpers() {
        let mut c = blank();
        assert!(!c.is_buggy());
        assert!(!c.coarse_grained());
        assert!(!c.fine_grained());
        c.issues = &[IncorrectLockPrimitive, IncorrectLockPrimitive];
        assert!(c.is_buggy());
        assert_eq!(c.issue_categories(), 1);
        c.rmw = true;
        c.predicate_based = true;
        assert!(c.coarse_grained());
        assert!(c.fine_grained());
    }

    #[test]
    fn app_enumeration_is_complete_and_ordered() {
        assert_eq!(App::all().len(), 8);
        assert_eq!(App::Discourse.to_string(), "Discourse");
        assert_eq!(App::ScmSuite.name(), "SCM Suite");
    }
}
