//! The §3.1.2 saga alternative on a realistic flow: a Saleor-style
//! checkout decomposed into reserve-stock → capture-payment steps with
//! compensations, executed by the toolkit's saga engine against the
//! application schema.

use adhoc_transactions::apps::{saleor, Mode};
use adhoc_transactions::core::locks::MemLock;
use adhoc_transactions::core::saga::{Saga, SagaOutcome};
use adhoc_transactions::storage::{Database, EngineProfile};
use std::sync::Arc;

fn checkout_saga(stock_id: i64, order_id: i64, qty: i64, price: i64) -> Saga {
    Saga::new()
        .step(
            "reserve-stock",
            move |t| {
                // FOR UPDATE: each step is its own transaction, so the RMW
                // must lock the row against concurrent sagas.
                t.find_for_update("stocks", stock_id)?;
                let available = t.find_required("stocks", stock_id)?.get_int("qty")?;
                t.raw()
                    .update("stocks", stock_id, &[("qty", (available - qty).into())])?;
                Ok(())
            },
            move |t| {
                t.find_for_update("stocks", stock_id)?;
                let available = t.find_required("stocks", stock_id)?.get_int("qty")?;
                t.raw()
                    .update("stocks", stock_id, &[("qty", (available + qty).into())])?;
                Ok(())
            },
        )
        .step(
            "capture-payment",
            move |t| {
                // Fails naturally when no capture row exists for the order
                // (the payment gateway refused the authorization).
                t.find_for_update("captures", order_id)?;
                let captured = t
                    .find_required("captures", order_id)?
                    .get_int("captured_cents")?;
                t.raw().update(
                    "captures",
                    order_id,
                    &[("captured_cents", (captured + price).into())],
                )?;
                Ok(())
            },
            move |t| {
                t.find_for_update("captures", order_id)?;
                let captured = t
                    .find_required("captures", order_id)?
                    .get_int("captured_cents")?;
                t.raw().update(
                    "captures",
                    order_id,
                    &[("captured_cents", (captured - price).into())],
                )?;
                Ok(())
            },
        )
}

fn fixture() -> saleor::Saleor {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = saleor::setup(&db).unwrap();
    saleor::Saleor::new(orm, Arc::new(MemLock::new()), Mode::AdHoc)
}

#[test]
fn successful_checkout_commits_every_step() {
    let app = fixture();
    app.seed_stock(1, 10).unwrap();
    app.seed_capture(1, 500).unwrap();
    let outcome = checkout_saga(1, 1, 2, 300).run(app.orm()).unwrap();
    assert_eq!(outcome, SagaOutcome::Completed { steps: 2 });
    assert_eq!(app.stock_qty(1).unwrap(), 8);
    assert_eq!(
        app.orm()
            .find_required("captures", 1)
            .unwrap()
            .get_int("captured_cents")
            .unwrap(),
        300
    );
}

#[test]
fn failed_capture_compensates_the_reservation() {
    let app = fixture();
    app.seed_stock(1, 10).unwrap();
    // No capture row: the payment step fails after stock was reserved.
    let outcome = checkout_saga(1, 1, 2, 300).run(app.orm()).unwrap();
    match outcome {
        SagaOutcome::Compensated {
            failed_step,
            compensated,
        } => {
            assert_eq!(failed_step, "capture-payment");
            assert_eq!(compensated, vec!["reserve-stock".to_string()]);
        }
        other => panic!("expected compensation, got {other:?}"),
    }
    assert_eq!(app.stock_qty(1).unwrap(), 10, "reservation undone");
}

#[test]
fn concurrent_sagas_interleave_but_conserve_stock() {
    // The defining saga property the paper contrasts with DBTs: no
    // long-lived transaction, so steps of different sagas interleave —
    // yet compensations keep the net effect of failed checkouts at zero.
    let app = Arc::new(fixture());
    app.seed_stock(1, 100).unwrap();
    app.seed_capture(1, 100_000).unwrap(); // order 1 captures succeed
    let completed: usize = std::thread::scope(|s| {
        (0..6)
            .map(|i| {
                let app = Arc::clone(&app);
                s.spawn(move || {
                    // Even workers check out order 1 (succeeds); odd ones
                    // order 2 (no capture row — always compensates).
                    let order = 1 + (i % 2);
                    let saga = checkout_saga(1, order, 1, 10);
                    let mut done = 0;
                    for _ in 0..5 {
                        match saga.run(app.orm()).unwrap() {
                            SagaOutcome::Completed { .. } => done += 1,
                            SagaOutcome::Compensated { .. } => {}
                        }
                    }
                    done
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    assert_eq!(completed, 15, "each even worker's five checkouts complete");
    assert_eq!(
        app.stock_qty(1).unwrap(),
        100 - 15,
        "only completed sagas consume stock"
    );
}
