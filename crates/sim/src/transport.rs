//! The shared simulated-wire shim.
//!
//! Every remote substrate in this workspace pays the same sequence for a
//! round trip: *admission* (deadline, then circuit breaker — both fail fast
//! without touching the wire or the deterministic scheduler), then the
//! *wire* itself (a scheduler yield point, a round-trip counter bump, and a
//! latency charge against the shared clock), then *outcome bookkeeping*
//! (feeding the breaker). `adhoc-kv`'s client grew this sequence first; the
//! service layer needs the identical discipline in front of its request
//! handlers. [`Transport`] is that sequence extracted once, parameterized by
//! which [`Cost`] the wire charges and which [`SchedPoint`] it yields at.
//!
//! The shim deliberately does *not* own fault injection: what a lost
//! request means (apply vs skip, ambiguous replies) is substrate-specific,
//! so callers run their own fault plan between [`Transport::pay`] and
//! [`Transport::record_outcome`].

use crate::clock::SharedClock;
use crate::latency::{Cost, LatencyModel};
use crate::resilience::{CircuitBreaker, Deadline};
use crate::sched::{self, SchedPoint};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fail-fast admission errors: the request never left the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The caller's deadline had already passed — unambiguous, retry-safe
    /// against a fresh deadline because nothing reached the server.
    DeadlineExceeded,
    /// The circuit breaker is open — rejected locally, no wire paid.
    CircuitOpen,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::DeadlineExceeded => write!(f, "deadline exceeded before the wire"),
            TransportError::CircuitOpen => write!(f, "circuit breaker open"),
        }
    }
}

impl std::error::Error for TransportError {}

/// One simulated connection: clock + latency cost + shared round-trip
/// counter, with optional deadline and circuit-breaker admission.
///
/// Clones share the counter and breaker (they model one process talking to
/// one server, possibly from several threads).
#[derive(Clone)]
pub struct Transport {
    clock: SharedClock,
    latency: LatencyModel,
    cost: Cost,
    sched_point: SchedPoint,
    round_trips: Arc<AtomicU64>,
    deadline: Option<Deadline>,
    breaker: Option<Arc<CircuitBreaker>>,
}

impl Transport {
    /// A transport charging `latency.duration_of(cost)` per round trip onto
    /// `clock`, yielding at `sched_point` under the deterministic scheduler.
    pub fn new(
        clock: SharedClock,
        latency: LatencyModel,
        cost: Cost,
        sched_point: SchedPoint,
    ) -> Self {
        Self {
            clock,
            latency,
            cost,
            sched_point,
            round_trips: Arc::new(AtomicU64::new(0)),
            deadline: None,
            breaker: None,
        }
    }

    /// The KV-client wiring: [`Cost::KvRoundTrip`] / [`SchedPoint::KvRoundTrip`].
    pub fn kv(clock: SharedClock, latency: LatencyModel) -> Self {
        Self::new(clock, latency, Cost::KvRoundTrip, SchedPoint::KvRoundTrip)
    }

    /// The service front-door wiring: [`Cost::ServiceRoundTrip`] /
    /// [`SchedPoint::ServiceRequest`].
    pub fn service(clock: SharedClock, latency: LatencyModel) -> Self {
        Self::new(
            clock,
            latency,
            Cost::ServiceRoundTrip,
            SchedPoint::ServiceRequest,
        )
    }

    /// Attach an absolute deadline: once the clock passes it, [`admit`]
    /// fails fast with [`TransportError::DeadlineExceeded`].
    ///
    /// [`admit`]: Transport::admit
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Wrap the connection in a circuit breaker consulted by [`admit`] and
    /// fed by [`record_outcome`]. Share one breaker (via the `Arc`) across
    /// every clone talking to one server.
    ///
    /// [`admit`]: Transport::admit
    /// [`record_outcome`]: Transport::record_outcome
    pub fn with_breaker(mut self, breaker: Arc<CircuitBreaker>) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// The clock this transport charges latency against.
    pub fn clock(&self) -> SharedClock {
        self.clock.clone()
    }

    /// Current instant on the transport's clock.
    pub fn now(&self) -> Duration {
        self.clock.now()
    }

    /// Sleep on the transport's clock (blocking or advancing virtual time) —
    /// used by substrate fault paths that stall a command in flight.
    pub fn sleep(&self, d: Duration) {
        self.clock.sleep(d);
    }

    /// The latency model in force.
    pub fn latency(&self) -> LatencyModel {
        self.latency
    }

    /// The attached deadline, when any.
    pub fn deadline(&self) -> Option<&Deadline> {
        self.deadline.as_ref()
    }

    /// The attached breaker, when any.
    pub fn breaker(&self) -> Option<&Arc<CircuitBreaker>> {
        self.breaker.as_ref()
    }

    /// Round trips this transport (and its clones) have paid so far.
    pub fn round_trips(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    /// Fail-fast admission: deadline first, then breaker — in that order,
    /// because an expired caller should see its own timeout rather than the
    /// server's health. Neither check pays the wire or yields to the
    /// scheduler, so opting in never perturbs pinned schedules.
    pub fn admit(&self) -> Result<(), TransportError> {
        if let Some(deadline) = &self.deadline {
            if deadline.expired(&*self.clock) {
                return Err(TransportError::DeadlineExceeded);
            }
        }
        if let Some(breaker) = &self.breaker {
            if !breaker.allow(self.clock.now()) {
                return Err(TransportError::CircuitOpen);
            }
        }
        Ok(())
    }

    /// Pay one wire hop: a scheduler yield point, a counter bump, the
    /// latency charge. Returns the server-side arrival instant.
    pub fn pay(&self) -> Duration {
        // Every simulated round trip is a potential preemption point under
        // the deterministic scheduler (no-op otherwise).
        sched::yield_point(self.sched_point);
        // Relaxed: a pure occurrence counter — nothing is published through
        // it, and SeqCst here puts a full fence on every simulated wire hop.
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        self.latency.charge(&*self.clock, self.cost);
        self.clock.now()
    }

    /// Feed the breaker with the round trip's outcome: `lost = true` for a
    /// connection-level failure (counts toward opening), anything else —
    /// including server-side errors that prove the connection works —
    /// counts as success.
    pub fn record_outcome(&self, lost: bool) {
        if let Some(breaker) = &self.breaker {
            if lost {
                breaker.record_failure(self.clock.now());
            } else {
                breaker.record_success();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, VirtualClock};

    fn transport() -> (Arc<VirtualClock>, Transport) {
        let clock = Arc::new(VirtualClock::new());
        let t = Transport::kv(clock.clone(), LatencyModel::paper());
        (clock, t)
    }

    #[test]
    fn pay_charges_latency_and_counts() {
        let (clock, t) = transport();
        let arrival = t.pay();
        assert_eq!(arrival, LatencyModel::paper().kv_round_trip);
        assert_eq!(clock.now(), arrival);
        assert_eq!(t.round_trips(), 1);
    }

    #[test]
    fn service_wiring_charges_the_service_cost() {
        let clock = Arc::new(VirtualClock::new());
        let t = Transport::service(clock.clone(), LatencyModel::paper());
        t.pay();
        assert_eq!(clock.now(), LatencyModel::paper().service_round_trip);
    }

    #[test]
    fn clones_share_the_counter() {
        let (_clock, t) = transport();
        let u = t.clone();
        t.pay();
        u.pay();
        assert_eq!(t.round_trips(), 2);
        assert_eq!(u.round_trips(), 2);
    }

    #[test]
    fn admit_is_free_and_checks_deadline_first() {
        let clock = Arc::new(VirtualClock::new());
        let breaker = Arc::new(CircuitBreaker::new(1, Duration::from_secs(10)));
        let t = Transport::kv(clock.clone(), LatencyModel::zero())
            .with_deadline(Deadline::after(&*clock, Duration::from_secs(1)))
            .with_breaker(breaker.clone());
        assert_eq!(t.admit(), Ok(()));
        // Trip the breaker AND expire the deadline: the deadline wins.
        breaker.record_failure(clock.now());
        clock.advance(Duration::from_secs(2));
        assert_eq!(t.admit(), Err(TransportError::DeadlineExceeded));
        assert_eq!(t.round_trips(), 0, "admission never pays the wire");
    }

    #[test]
    fn breaker_opens_via_record_outcome_and_recovers() {
        let clock = Arc::new(VirtualClock::new());
        let breaker = Arc::new(CircuitBreaker::new(2, Duration::from_secs(5)));
        let t = Transport::kv(clock.clone(), LatencyModel::zero()).with_breaker(breaker.clone());
        t.record_outcome(true);
        t.record_outcome(true);
        assert_eq!(t.admit(), Err(TransportError::CircuitOpen));
        // Cooldown: one probe is admitted; its success closes the circuit.
        clock.advance(Duration::from_secs(5));
        assert_eq!(t.admit(), Ok(()));
        t.record_outcome(false);
        assert_eq!(t.admit(), Ok(()));
        assert_eq!(breaker.times_opened(), 1);
    }
}
