//! Table schemas and rows.

use crate::error::DbError;
pub use crate::value::ColumnType;
use crate::value::Value;
use crate::Result;

/// A column declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: ColumnType,
    /// Whether NULL is permitted.
    pub nullable: bool,
}

impl Column {
    /// A non-nullable column.
    pub fn new(name: &str, ty: ColumnType) -> Self {
        Self {
            name: name.to_string(),
            ty,
            nullable: false,
        }
    }

    /// Permit NULL values.
    pub fn nullable(mut self) -> Self {
        self.nullable = true;
        self
    }
}

/// A table schema: named columns, an integer primary key, and ordered
/// secondary indexes (non-unique unless marked).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Table name.
    pub table: String,
    /// Column declarations, in storage order.
    pub columns: Vec<Column>,
    /// Index into `columns` of the integer primary key.
    pub primary_key: usize,
    /// Secondary indexes: (column index, unique?).
    pub indexes: Vec<(usize, bool)>,
}

impl Schema {
    /// Build a schema. The primary key column must exist and be `Int`.
    pub fn new(table: &str, columns: Vec<Column>, primary_key: &str) -> Result<Self> {
        let pk = columns
            .iter()
            .position(|c| c.name == primary_key)
            .ok_or_else(|| DbError::NoSuchColumn {
                table: table.to_string(),
                column: primary_key.to_string(),
            })?;
        if columns[pk].ty != ColumnType::Int {
            return Err(DbError::TypeMismatch {
                table: table.to_string(),
                column: primary_key.to_string(),
                expected: ColumnType::Int,
                found: Some(columns[pk].ty),
            });
        }
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.as_str()) {
                return Err(DbError::DuplicateColumn {
                    table: table.to_string(),
                    column: c.name.clone(),
                });
            }
        }
        Ok(Self {
            table: table.to_string(),
            columns,
            primary_key: pk,
            indexes: Vec::new(),
        })
    }

    /// Add a non-unique ordered secondary index.
    pub fn with_index(mut self, column: &str) -> Result<Self> {
        let idx = self.column_index(column)?;
        self.indexes.push((idx, false));
        Ok(self)
    }

    /// Add a unique secondary index.
    pub fn with_unique_index(mut self, column: &str) -> Result<Self> {
        let idx = self.column_index(column)?;
        self.indexes.push((idx, true));
        Ok(self)
    }

    /// Position of a named column.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| DbError::NoSuchColumn {
                table: self.table.clone(),
                column: name.to_string(),
            })
    }

    /// Validate a full row against the schema (arity, types, nullability).
    pub fn validate_row(&self, row: &Row) -> Result<()> {
        if row.values.len() != self.columns.len() {
            return Err(DbError::ArityMismatch {
                table: self.table.clone(),
                expected: self.columns.len(),
                found: row.values.len(),
            });
        }
        for (col, val) in self.columns.iter().zip(&row.values) {
            match val.column_type() {
                None if col.nullable => {}
                None => {
                    return Err(DbError::NotNullViolation {
                        table: self.table.clone(),
                        column: col.name.clone(),
                    })
                }
                Some(t) if t == col.ty => {}
                Some(t) => {
                    return Err(DbError::TypeMismatch {
                        table: self.table.clone(),
                        column: col.name.clone(),
                        expected: col.ty,
                        found: Some(t),
                    })
                }
            }
        }
        Ok(())
    }
}

/// A materialized row. Values are positional; use the schema for names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Column values in schema order.
    pub values: Vec<Value>,
}

impl Row {
    /// A row from positional values (validated by the schema on write).
    pub fn new(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// Value at a column position.
    pub fn at(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Value of a named column (resolved through the schema).
    pub fn get<'a>(&'a self, schema: &Schema, column: &str) -> Result<&'a Value> {
        Ok(&self.values[schema.column_index(column)?])
    }

    /// Integer shorthand for `get`.
    pub fn get_int(&self, schema: &Schema, column: &str) -> Result<i64> {
        Ok(self.get(schema, column)?.as_int())
    }

    /// String shorthand for `get`.
    pub fn get_str(&self, schema: &Schema, column: &str) -> Result<String> {
        Ok(self.get(schema, column)?.as_str().to_string())
    }

    /// Boolean shorthand for `get`.
    pub fn get_bool(&self, schema: &Schema, column: &str) -> Result<bool> {
        Ok(self.get(schema, column)?.as_bool())
    }

    /// Copy with one named column replaced.
    pub fn with(&self, schema: &Schema, column: &str, value: Value) -> Result<Row> {
        let mut values = self.values.clone();
        values[schema.column_index(column)?] = value;
        Ok(Row::new(values))
    }
}

/// Build a row from `(column, value)` pairs in schema order; missing
/// nullable columns default to NULL.
pub fn row_from_pairs(schema: &Schema, pairs: &[(&str, Value)]) -> Result<Row> {
    let mut values = vec![Value::Null; schema.columns.len()];
    for (name, value) in pairs {
        let idx = schema.column_index(name)?;
        values[idx] = value.clone();
    }
    let row = Row::new(values);
    schema.validate_row(&row)?;
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(
            "skus",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("name", ColumnType::Str),
                Column::new("quantity", ColumnType::Int),
                Column::new("note", ColumnType::Str).nullable(),
            ],
            "id",
        )
        .unwrap()
        .with_index("quantity")
        .unwrap()
    }

    #[test]
    fn schema_resolves_columns() {
        let s = schema();
        assert_eq!(s.primary_key, 0);
        assert_eq!(s.column_index("quantity").unwrap(), 2);
        assert!(matches!(
            s.column_index("nope"),
            Err(DbError::NoSuchColumn { .. })
        ));
        assert_eq!(s.indexes, vec![(2, false)]);
    }

    #[test]
    fn non_int_primary_key_is_rejected() {
        let err = Schema::new("t", vec![Column::new("id", ColumnType::Str)], "id").unwrap_err();
        assert!(matches!(err, DbError::TypeMismatch { .. }));
    }

    #[test]
    fn duplicate_columns_are_rejected() {
        let err = Schema::new(
            "t",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("id", ColumnType::Int),
            ],
            "id",
        )
        .unwrap_err();
        assert!(matches!(err, DbError::DuplicateColumn { .. }));
    }

    #[test]
    fn validate_row_checks_arity_types_nulls() {
        let s = schema();
        let good = Row::new(vec![1.into(), "a".into(), 5.into(), Value::Null]);
        s.validate_row(&good).unwrap();

        let short = Row::new(vec![1.into()]);
        assert!(matches!(
            s.validate_row(&short),
            Err(DbError::ArityMismatch { .. })
        ));

        let bad_type = Row::new(vec![1.into(), "a".into(), "five".into(), Value::Null]);
        assert!(matches!(
            s.validate_row(&bad_type),
            Err(DbError::TypeMismatch { .. })
        ));

        let bad_null = Row::new(vec![1.into(), Value::Null, 5.into(), Value::Null]);
        assert!(matches!(
            s.validate_row(&bad_null),
            Err(DbError::NotNullViolation { .. })
        ));
    }

    #[test]
    fn row_accessors_and_with() {
        let s = schema();
        let r = row_from_pairs(
            &s,
            &[
                ("id", 1.into()),
                ("name", "x".into()),
                ("quantity", 9.into()),
            ],
        )
        .unwrap();
        assert_eq!(r.get_int(&s, "quantity").unwrap(), 9);
        assert_eq!(r.get_str(&s, "name").unwrap(), "x");
        assert!(r.get(&s, "note").unwrap().is_null());
        let r2 = r.with(&s, "quantity", 4.into()).unwrap();
        assert_eq!(r2.get_int(&s, "quantity").unwrap(), 4);
        assert_eq!(r.get_int(&s, "quantity").unwrap(), 9);
    }

    #[test]
    fn row_from_pairs_validates() {
        let s = schema();
        // Missing non-nullable "name" -> NULL -> violation.
        let err = row_from_pairs(&s, &[("id", 1.into()), ("quantity", 2.into())]).unwrap_err();
        assert!(matches!(err, DbError::NotNullViolation { .. }));
    }
}
