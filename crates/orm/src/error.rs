//! ORM error surface.

use adhoc_storage::DbError;
use std::fmt;

/// Every error the ORM can surface to application code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrmError {
    /// Underlying database error.
    Db(DbError),
    /// Optimistic-lock conflict: the row's `lock_version` moved underneath
    /// us (Active Record's `ActiveRecord::StaleObjectError`).
    StaleObject {
        /// Entity name.
        entity: String,
        /// Primary key of the stale object.
        id: i64,
    },
    /// An application-level `validates` rule failed.
    ValidationFailed {
        /// Entity name.
        entity: String,
        /// Column the rule applies to.
        column: String,
        /// The violated rule ("uniqueness", "presence", "non_negative").
        rule: &'static str,
    },
    /// Entity name not registered.
    UnknownEntity {
        /// The unknown name.
        entity: String,
    },
    /// `find` found nothing where a record was required.
    RecordNotFound {
        /// Entity name.
        entity: String,
        /// The missing primary key.
        id: i64,
    },
    /// Optimistic validation failed at commit: a field recorded in the
    /// read set changed (or the row appeared/vanished) between read and
    /// commit. Surfaced by [`OccTxn::commit`](crate::occ::OccTxn::commit);
    /// [`run_occ`](crate::occ::run_occ) retries it automatically.
    OccConflict {
        /// Entity name.
        entity: String,
        /// Primary key of the conflicting row.
        id: i64,
        /// First recorded column whose value moved (`"<row>"` when the
        /// row's very existence changed).
        column: String,
    },
    /// An automatic OCC retry loop exhausted its policy's budget.
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: usize,
    },
    /// A continuation id was not present in the
    /// [`ContinuationStore`](crate::occ::ContinuationStore) (expired,
    /// already consumed, or never issued).
    NoSuchContinuation {
        /// The unknown continuation id.
        id: u64,
    },
    /// A coordination request through [`coord`](crate::coord) failed on
    /// its backing mechanism.
    Coordination {
        /// Which mechanism failed ("kv-lease", "advisory",
        /// "db-table-fallback").
        mechanism: &'static str,
        /// Backend detail.
        detail: String,
    },
}

impl OrmError {
    /// Retryable in the database-driver sense (deadlock victim etc.).
    /// Stale objects are *application-level* conflicts: the caller decides
    /// whether to re-read and retry.
    pub fn is_retryable(&self) -> bool {
        matches!(self, OrmError::Db(e) if e.is_retryable())
    }
}

impl From<DbError> for OrmError {
    fn from(e: DbError) -> Self {
        OrmError::Db(e)
    }
}

impl fmt::Display for OrmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrmError::Db(e) => write!(f, "database error: {e}"),
            OrmError::StaleObject { entity, id } => {
                write!(f, "stale object: {entity} #{id} was updated concurrently")
            }
            OrmError::ValidationFailed {
                entity,
                column,
                rule,
            } => write!(f, "validation failed: {entity}.{column} violates {rule}"),
            OrmError::UnknownEntity { entity } => write!(f, "unknown entity {entity:?}"),
            OrmError::RecordNotFound { entity, id } => {
                write!(f, "record not found: {entity} #{id}")
            }
            OrmError::OccConflict { entity, id, column } => {
                write!(
                    f,
                    "occ conflict: {entity} #{id} field {column} changed between read and commit"
                )
            }
            OrmError::RetriesExhausted { attempts } => {
                write!(f, "occ retries exhausted after {attempts} attempts")
            }
            OrmError::NoSuchContinuation { id } => {
                write!(f, "no such continuation #{id}")
            }
            OrmError::Coordination { mechanism, detail } => {
                write!(f, "coordination failed via {mechanism}: {detail}")
            }
        }
    }
}

impl std::error::Error for OrmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OrmError::Db(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_follows_db_errors() {
        assert!(OrmError::Db(DbError::Deadlock { txn: 1 }).is_retryable());
        assert!(!OrmError::StaleObject {
            entity: "post".into(),
            id: 1
        }
        .is_retryable());
        assert!(!OrmError::ValidationFailed {
            entity: "sku".into(),
            column: "quantity".into(),
            rule: "non_negative"
        }
        .is_retryable());
    }

    #[test]
    fn display_and_source() {
        let e = OrmError::Db(DbError::Deadlock { txn: 3 });
        assert!(e.to_string().contains("deadlock"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(
            std::error::Error::source(&OrmError::UnknownEntity { entity: "x".into() }).is_none()
        );
    }
}
