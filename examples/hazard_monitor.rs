//! The §6 development-support tool in action: attach the runtime hazard
//! monitor to a database, run buggy and fixed flows, and print its report.
//!
//! Run with `cargo run --example hazard_monitor`.

use adhoc_transactions::apps::{discourse, spree, Mode};
use adhoc_transactions::core::locks::MemLock;
use adhoc_transactions::core::monitor::AccessMonitor;
use adhoc_transactions::storage::{Database, EngineProfile};
use std::sync::Arc;

fn main() {
    // ---- Discourse, buggy edit flow (issue [76]) under the monitor ----
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = discourse::setup(&db).expect("schema");
    let monitor = AccessMonitor::new();
    monitor.attach(&db);
    let lock = monitor.wrap_lock(Arc::new(MemLock::new()));
    let forum = discourse::Discourse::new(orm, lock, Mode::AdHoc).lock_after_read();
    forum.seed_topic(1).expect("seed");
    let post = forum.seed_post(1, "original", 0).expect("post");
    let token = forum.begin_edit(post).expect("begin");
    forum.commit_edit(&token, "edited").expect("commit");

    println!("After the buggy Discourse edit flow:");
    for hazard in monitor.hazards() {
        println!("  ! {hazard}");
    }

    // ---- Spree, forgotten JSON handler (issue [59]) ----
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = spree::setup(&db).expect("schema");
    let monitor = AccessMonitor::new();
    monitor.attach(&db);
    let lock = monitor.wrap_lock(Arc::new(MemLock::new()));
    let shop = spree::Spree::new(orm, lock, Mode::AdHoc);
    shop.seed_order(1).expect("seed");
    shop.seed_order(2).expect("seed");
    shop.add_payment(1).expect("html handler"); // coordinated
    shop.add_payment_json(2).expect("json handler"); // forgotten

    println!("\nAfter mixing Spree's HTML and JSON payment handlers:");
    for hazard in monitor.hazards() {
        println!("  ! {hazard}");
    }

    // ---- The fixed flows stay quiet ----
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = discourse::setup(&db).expect("schema");
    let monitor = AccessMonitor::new();
    monitor.attach(&db);
    let lock = monitor.wrap_lock(Arc::new(MemLock::new()));
    let forum = discourse::Discourse::new(orm, lock, Mode::AdHoc);
    forum.seed_topic(1).expect("seed");
    let post = forum.seed_post(1, "original", 0).expect("post");
    let token = forum.begin_edit(post).expect("begin");
    forum.commit_edit(&token, "edited").expect("commit");
    use adhoc_transactions::core::monitor::Hazard;
    let lock_after_read = monitor
        .hazards()
        .iter()
        .any(|h| matches!(h, Hazard::LockAfterRead { .. }));
    println!(
        "\nAfter the corrected Discourse edit flow: lock-after-read flagged: {lock_after_read}"
    );
    // The only remaining advisory is mixed coordination on `posts` — a
    // true observation: the view-count bump is *deliberately* outside the
    // critical section (§3.1.2), which is exactly the judgement call the
    // paper says such tools should surface to a human.
    for hazard in monitor.hazards() {
        println!("  (advisory) {hazard}");
    }
    assert!(!lock_after_read);
}
