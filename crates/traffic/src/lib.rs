//! Deterministic open-loop traffic: a million modeled users against the
//! service front door, on the virtual clock.
//!
//! * [`workload`] — the mixed request stream: zipfian clients (a
//!   million-user population), zipfian object keys, endpoints drawn by
//!   weight across all eight studied applications.
//! * [`harness`] — the open-loop tick loop: Poisson or bursty arrivals
//!   that do not slow down when the service falls behind, HDR latency
//!   histograms, goodput-within-SLO accounting, and the
//!   naive / breaker-only / full front-door ablation rendered to
//!   `BENCH_traffic.json`.
//!
//! Everything is seeded and clocked virtually: the same seed reproduces
//! the same arrival instants, the same request stream, and the same
//! latency curves, bit for bit.

#![warn(missing_docs)]

pub mod harness;
pub mod workload;

pub use harness::{
    render_traffic_json, run_cell, traffic_bench_json, traffic_sweep, ArrivalKind, TrafficRow,
    TrafficScale, SEED, SLO, TICK,
};
pub use workload::{average_cost_units, MixedWorkload, CLIENT_POPULATION};
