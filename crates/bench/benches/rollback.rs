//! Criterion bench regenerating Figure 4: shrink-image latency per
//! rollback strategy, with and without conflicting edit-post load.

use adhoc_bench::fig4::{run_rollback, strategies, strategy_label, Fig4Config};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_rollback(c: &mut Criterion) {
    for conflicts in [true, false] {
        let group_name = if conflicts {
            "figure4a_with_conflicts"
        } else {
            "figure4b_without_conflicts"
        };
        let mut group = c.benchmark_group(group_name);
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(100))
            .measurement_time(Duration::from_secs(3));
        for strategy in strategies() {
            group.bench_function(BenchmarkId::from_parameter(strategy_label(strategy)), |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let cfg = Fig4Config {
                            images: 2,
                            image_cost: Duration::from_millis(5),
                            conflicts,
                            ..Fig4Config::default()
                        };
                        let row = run_rollback(strategy, &cfg);
                        total += row.mean_latency;
                    }
                    total
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_rollback);
criterion_main!(benches);
