//! A tiny multiply-rotate hasher for the engine's interior hash maps.
//!
//! The commit hot path hashes small fixed-size keys — `(table, row)`
//! pairs, transaction ids, resource ids — several times per transaction.
//! SipHash's DoS resistance buys nothing there (keys are
//! engine-generated, not attacker-controlled), so these maps use the
//! classic Fx multiply-rotate mix instead: one rotate, one xor and one
//! multiply per word.
//!
//! Iteration order of a hash map must never be observable (the engine
//! already tolerates `RandomState`'s per-process seeding), so swapping
//! the hasher cannot perturb deterministic replay.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Fx mix (the Firefox/rustc hasher constant).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-word-at-a-time multiply-rotate hasher. Not DoS resistant — only
/// for engine-internal keys.
#[derive(Default)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_isize(&mut self, v: isize) {
        self.mix(v as u64);
    }
}

/// `HashMap` keyed by engine-internal values.
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` of engine-internal values.
pub type FastSet<K> = std::collections::HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn distinct_keys_hash_distinctly() {
        let build = BuildHasherDefault::<FastHasher>::default();
        let hash = |k: &(usize, i64)| build.hash_one(k);
        let mut seen = std::collections::HashSet::new();
        for t in 0..8usize {
            for id in -64i64..64 {
                assert!(seen.insert(hash(&(t, id))), "collision at ({t}, {id})");
            }
        }
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<(usize, i64), u32> = FastMap::default();
        for id in 0..100 {
            m.insert((1, id), id as u32);
        }
        assert_eq!(m.get(&(1, 42)), Some(&42));
        assert_eq!(m.len(), 100);
    }
}
