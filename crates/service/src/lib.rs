//! The thin service layer the traffic harness drives.
//!
//! The paper studies ad hoc transactions *inside* request handlers; this
//! crate supplies the request handlers — a front door over all eight
//! studied applications, shaped like the web tier those applications
//! actually sit behind:
//!
//! * [`Endpoint`] — one named request type per studied scenario, with a
//!   cost weight and a read/write classification, so a mixed workload can
//!   be composed from per-endpoint weights.
//! * [`SessionPool`] — a bounded pool of pooled connections, each a clone
//!   of the shared [`Transport`](adhoc_sim::Transport) shim (one service
//!   round trip per request).
//! * [`RateLimiter`] — per-client admission written both ways: the racy
//!   fixed-window counter over the KV store (two round trips, a
//!   check-then-act ad hoc transaction — catalog case) and the token
//!   bucket (one atomic in-process admission — the cure).
//! * [`Service`] — the queueing front door itself: rate limiting and
//!   queue-depth caps at arrival, deadline-aware shedding and bounded
//!   in-flight admission ([`adhoc_core::resilience::FrontDoor`]) at
//!   service, a [`RetryBudget`](adhoc_sim::RetryBudget) around handler
//!   retries, and a read-only degraded mode. [`StackConfig`] selects the
//!   naive / breaker-only / full ablation the metastability bench sweeps.
//!
//! Everything runs on the shared virtual clock and the deterministic
//! substrates, so a million-user traffic run — and any SLO violation it
//! surfaces — replays bit-for-bit from its seed.

#![warn(missing_docs)]

pub mod endpoint;
pub mod limiter;
pub mod pool;
mod service;

pub use endpoint::{Endpoint, Request};
pub use limiter::{FixedWindowLimiter, RateLimiter, TokenBucketLimiter};
pub use pool::{Session, SessionPool};
pub use service::{Completion, LimiterKind, Service, ServiceStats, StackConfig};

/// Why a request did not produce a successful application response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The per-client rate limiter refused the request at arrival.
    RateLimited,
    /// The arrival queue was at its depth cap.
    QueueFull,
    /// Deadline-aware shedding dropped the request before serving it (it
    /// had already waited past the point of being useful).
    Shed,
    /// The app's front door is in read-only degraded mode and the request
    /// carried a write.
    ReadOnly,
    /// The app's front door had no in-flight capacity left.
    Overloaded,
    /// The session pool had no free connection.
    PoolExhausted,
    /// The service-side circuit breaker is open.
    CircuitOpen,
    /// The handler failed in the backend and retries were exhausted (or
    /// the retry budget refused to fund another attempt).
    Backend(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::RateLimited => write!(f, "rate limited"),
            ServiceError::QueueFull => write!(f, "arrival queue full"),
            ServiceError::Shed => write!(f, "shed past deadline"),
            ServiceError::ReadOnly => write!(f, "write refused in read-only degraded mode"),
            ServiceError::Overloaded => write!(f, "front door at in-flight capacity"),
            ServiceError::PoolExhausted => write!(f, "session pool exhausted"),
            ServiceError::CircuitOpen => write!(f, "service circuit breaker open"),
            ServiceError::Backend(msg) => write!(f, "backend failure: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}
