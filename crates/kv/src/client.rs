//! The application-side client: one simulated network round trip per
//! command, plus a `WATCH`/`MULTI`/`EXEC` session that mirrors how
//! Discourse's Redis lock drives the protocol (§3.2.1 of the paper).

use crate::store::{KvError, SetMode, Store, Ttl, WriteOp};
use adhoc_sim::{
    CircuitBreaker, Deadline, FaultKind, FaultPlan, LatencyModel, OpClass, SharedClock, Transport,
};
use std::sync::Arc;
use std::time::Duration;

/// A connection to a [`Store`] that charges `kv_round_trip` per command.
///
/// The wire discipline (deadline/breaker admission, yield + count + latency
/// charge per hop) lives in the shared [`Transport`] shim; this client adds
/// the KV command surface and the §3.4 fault semantics on top of it.
///
/// Clones share the round-trip counter (they model one process talking to
/// one server, possibly from several threads).
#[derive(Clone)]
pub struct Client {
    store: Store,
    transport: Transport,
    faults: Option<FaultPlan>,
}

impl Client {
    /// Connect to `store`, charging `latency.kv_round_trip` per command
    /// onto `clock`.
    pub fn new(store: Store, clock: SharedClock, latency: LatencyModel) -> Self {
        Self {
            store,
            transport: Transport::kv(clock, latency),
            faults: None,
        }
    }

    /// Attach a fault plan: every fallible command consults it (class
    /// [`OpClass::KvCommand`]) and may lose its reply, lose its connection,
    /// partition, stall, skew the server clock, or find the store freshly
    /// restarted. Fault consultation charges no extra round trips.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Attach an absolute deadline: once the clock passes it, fallible
    /// commands fail fast with [`KvError::DeadlineExceeded`] *without*
    /// paying a round trip (the command never leaves the client, so the
    /// failure is unambiguous and retry-safe against a fresh deadline).
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.transport = self.transport.with_deadline(deadline);
        self
    }

    /// Wrap the connection in a circuit breaker: consecutive
    /// [`KvError::ConnectionLost`] outcomes open it, and while open,
    /// fallible commands fail fast with [`KvError::CircuitOpen`] without
    /// paying a round trip — the retry-storm dampener. Share one breaker
    /// (via the `Arc`) across every client clone talking to one server.
    pub fn with_breaker(mut self, breaker: Arc<CircuitBreaker>) -> Self {
        self.transport = self.transport.with_breaker(breaker);
        self
    }

    /// The underlying store (for assertions in tests).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The clock this connection charges latency against — shared with
    /// callers that need to evaluate [`Deadline`]s consistently.
    pub fn clock(&self) -> adhoc_sim::SharedClock {
        self.transport.clock()
    }

    /// Round trips this client (and its clones) have paid so far.
    pub fn round_trips(&self) -> u64 {
        self.transport.round_trips()
    }

    fn pay(&self) -> Duration {
        self.transport.pay()
    }

    /// One fault-eligible round trip: check deadline and breaker (both
    /// fail fast *without* paying the wire or yielding to the scheduler,
    /// so opting in never perturbs pinned schedules), pay, consult the
    /// plan, then run `apply` against the store at the (possibly delayed
    /// or skewed) server-side arrival time.
    ///
    /// * `ConnError` / `PartitionInbound` — the command never reaches the
    ///   server: `apply` is skipped and the caller sees
    ///   [`KvError::ConnectionLost`].
    /// * `ReplyLost` / `PartitionOutbound` — `apply` runs (the server did
    ///   the work) but the caller still sees [`KvError::ConnectionLost`]:
    ///   the ambiguous outcome of §3.4.1.
    /// * `LatencySpike` — the command stalls in flight for the injected
    ///   delay before being applied; with a virtual clock this is how a
    ///   holder overstays its lease.
    /// * `ReplyDelay` — the *reply* stalls: the server applies at the
    ///   original arrival instant, the client resumes late with a stale
    ///   answer (the asymmetric half of a partition).
    /// * `ClockSkew` — the server evaluates the command at a clock skewed
    ///   forward by the injected delay, so TTLs expire early there.
    /// * `StoreRestart` — the server bounces (volatile entries lost) just
    ///   before serving the command, which then succeeds normally.
    fn round_trip<R>(&self, apply: impl FnOnce(Duration) -> R) -> Result<R, KvError> {
        self.transport.admit()?;
        let result = self.round_trip_faulted(apply);
        self.transport
            .record_outcome(matches!(&result, Err(KvError::ConnectionLost)));
        result
    }

    fn round_trip_faulted<R>(&self, apply: impl FnOnce(Duration) -> R) -> Result<R, KvError> {
        let mut now = self.pay();
        if let Some(plan) = &self.faults {
            if let Some(fault) = plan.arm_at(OpClass::KvCommand, now) {
                match fault.kind {
                    FaultKind::ConnError | FaultKind::PartitionInbound => {
                        return Err(KvError::ConnectionLost)
                    }
                    FaultKind::ReplyLost | FaultKind::PartitionOutbound => {
                        apply(now);
                        return Err(KvError::ConnectionLost);
                    }
                    FaultKind::LatencySpike => {
                        self.transport.sleep(fault.delay);
                        now = self.transport.now();
                    }
                    FaultKind::ReplyDelay => {
                        let reply = apply(now);
                        self.transport.sleep(fault.delay);
                        return Ok(reply);
                    }
                    FaultKind::ClockSkew => now += fault.delay,
                    FaultKind::StoreRestart => self.store.restart(now),
                    // DbCommit/DbStatement kinds never arm on
                    // OpClass::KvCommand.
                    FaultKind::CommitFailed
                    | FaultKind::CrashAfterDurable
                    | FaultKind::CrashBeforeDurable
                    | FaultKind::TornWrite
                    | FaultKind::DbPartitioned => {}
                }
            }
        }
        Ok(apply(now))
    }

    /// `GET key`.
    pub fn get(&self, key: &str) -> Result<Option<String>, KvError> {
        self.round_trip(|now| self.store.get(key, now))?
    }

    /// `SET key value`.
    pub fn set(&self, key: &str, value: &str) -> Result<(), KvError> {
        self.round_trip(|now| self.store.set(key, value, SetMode::Always, None, now))??;
        Ok(())
    }

    /// `SET key value NX` — returns whether the key was acquired.
    pub fn set_nx(&self, key: &str, value: &str) -> Result<bool, KvError> {
        self.round_trip(|now| self.store.set(key, value, SetMode::IfAbsent, None, now))?
    }

    /// `SET key value NX PX ttl` — lease-style acquisition.
    pub fn set_nx_px(&self, key: &str, value: &str, ttl: Duration) -> Result<bool, KvError> {
        self.round_trip(|now| {
            self.store
                .set(key, value, SetMode::IfAbsent, Some(ttl), now)
        })?
    }

    /// `DEL key`; true when a live key was removed. Fault-eligible: on the
    /// lease-release path a lost reply means the caller cannot tell
    /// whether the lease is still held — treating it as released is the
    /// §3.4.1 bug.
    pub fn del(&self, key: &str) -> Result<bool, KvError> {
        self.round_trip(|now| self.store.del(key, now))
    }

    /// `EXISTS key`.
    pub fn exists(&self, key: &str) -> bool {
        let now = self.pay();
        self.store.exists(key, now)
    }

    /// `EXPIRE key ttl`; `Ok(false)` when the key is missing.
    /// Fault-eligible: a heartbeat that loses its reply has *not* provably
    /// extended the lease.
    pub fn expire(&self, key: &str, ttl: Duration) -> Result<bool, KvError> {
        self.round_trip(|now| self.store.expire(key, ttl, now))
    }

    /// Fenced lease acquisition: `SET key owner NX PX ttl` plus a
    /// monotonic fencing token, in one round trip (server-side this would
    /// be a small Lua script). `Ok(None)` means a live holder exists.
    pub fn acquire_lease(
        &self,
        key: &str,
        owner: &str,
        ttl: Duration,
    ) -> Result<Option<u64>, KvError> {
        self.round_trip(|now| self.store.acquire_lease(key, owner, ttl, now))
    }

    /// A guarded write validated against the key's fence floor:
    /// `Ok(false)` means `token` was stale (the lease was reaped and
    /// re-granted past this holder) and nothing was written.
    pub fn fenced_set(&self, key: &str, value: &str, token: u64) -> Result<bool, KvError> {
        self.round_trip(|now| self.store.fenced_set(key, value, token, now))
    }

    /// The fence floor of a guarded key (0 when never fenced-written).
    pub fn fence_floor(&self, key: &str) -> Result<u64, KvError> {
        self.round_trip(|_now| self.store.fence_floor(key))
    }

    /// The token of the live lease on `key` when held by `owner` — the
    /// readback that resolves an ambiguous [`acquire_lease`](Self::acquire_lease)
    /// reply (did my grant land before the connection dropped?).
    pub fn lease_token(&self, key: &str, owner: &str) -> Result<Option<u64>, KvError> {
        self.round_trip(|now| self.store.lease_token(key, owner, now))
    }

    /// `TTL key`.
    pub fn ttl(&self, key: &str) -> Ttl {
        let now = self.pay();
        self.store.ttl(key, now)
    }

    /// `INCR key`; creates the counter at 0.
    pub fn incr(&self, key: &str) -> Result<i64, KvError> {
        self.round_trip(|now| self.store.incr(key, now))?
    }

    /// `SADD key member`; true when newly added.
    pub fn sadd(&self, key: &str, member: &str) -> Result<bool, KvError> {
        self.round_trip(|now| self.store.sadd(key, member, now))?
    }

    /// `SREM key member`; true when removed.
    pub fn srem(&self, key: &str, member: &str) -> Result<bool, KvError> {
        self.round_trip(|now| self.store.srem(key, member, now))?
    }

    /// `SMEMBERS key` in sorted order.
    pub fn smembers(&self, key: &str) -> Result<Vec<String>, KvError> {
        self.round_trip(|now| self.store.smembers(key, now))?
    }

    /// `SISMEMBER key member`.
    pub fn sismember(&self, key: &str, member: &str) -> Result<bool, KvError> {
        self.round_trip(|now| self.store.sismember(key, member, now))?
    }

    /// Begin an optimistic transaction session (`WATCH`-based).
    pub fn session(&self) -> Session<'_> {
        Session {
            client: self,
            watched: Vec::new(),
            queued: Vec::new(),
            in_multi: false,
        }
    }
}

/// An in-flight `WATCH` … `MULTI` … `EXEC` conversation.
///
/// Each protocol step is a separate round trip, matching the paper's count
/// of Discourse's lock needing "six additional round trips" over a single
/// `SETNX`: `WATCH` + `GET` + `MULTI` + `SET` + `EXEC` (and the unlock side)
/// all pay the network individually.
pub struct Session<'a> {
    client: &'a Client,
    watched: Vec<(String, u64)>,
    queued: Vec<WriteOp>,
    in_multi: bool,
}

impl Session<'_> {
    /// `WATCH key`: snapshot the key's modification counter.
    pub fn watch(&mut self, key: &str) {
        let now = self.client.pay();
        let v = self.client.store.version(key, now);
        self.watched.push((key.to_string(), v));
    }

    /// `GET` inside the session (still a plain read, one round trip).
    pub fn get(&mut self, key: &str) -> Result<Option<String>, KvError> {
        self.client.get(key)
    }

    /// `MULTI`: subsequent writes are queued rather than applied.
    pub fn multi(&mut self) {
        self.client.pay();
        self.in_multi = true;
    }

    /// Queue `SET` (requires `multi()` first).
    pub fn set(&mut self, key: &str, value: &str) {
        assert!(self.in_multi, "SET queued outside MULTI");
        self.client.pay();
        self.queued.push(WriteOp::Set {
            key: key.to_string(),
            value: value.to_string(),
            mode: SetMode::Always,
            ttl: None,
        });
    }

    /// Queue `SET … PX ttl`.
    pub fn set_px(&mut self, key: &str, value: &str, ttl: Duration) {
        assert!(self.in_multi, "SET queued outside MULTI");
        self.client.pay();
        self.queued.push(WriteOp::Set {
            key: key.to_string(),
            value: value.to_string(),
            mode: SetMode::Always,
            ttl: Some(ttl),
        });
    }

    /// Queue `DEL`.
    pub fn del(&mut self, key: &str) {
        assert!(self.in_multi, "DEL queued outside MULTI");
        self.client.pay();
        self.queued.push(WriteOp::Del {
            key: key.to_string(),
        });
    }

    /// `EXEC`: atomically validate the watch set and apply the queue.
    /// Returns `true` when the transaction committed.
    pub fn exec(self) -> Result<bool, KvError> {
        let Session {
            client,
            watched,
            queued,
            ..
        } = self;
        client.round_trip(|now| client.store.exec(&watched, &queued, now))?
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_sim::{Clock, VirtualClock};

    fn client() -> Client {
        Client::new(Store::new(), VirtualClock::shared(), LatencyModel::paper())
    }

    #[test]
    fn every_command_costs_one_round_trip() {
        let c = client();
        c.set("a", "1").unwrap();
        c.get("a").unwrap();
        c.del("a").unwrap();
        assert_eq!(c.round_trips(), 3);
    }

    #[test]
    fn round_trips_advance_the_clock() {
        let clock = Arc::new(VirtualClock::new());
        let c = Client::new(Store::new(), clock.clone(), LatencyModel::paper());
        c.set("a", "1").unwrap();
        assert_eq!(clock.now(), LatencyModel::paper().kv_round_trip);
    }

    #[test]
    fn watch_multi_exec_costs_the_paper_round_trips() {
        let c = client();
        // The Discourse lock acquire sequence: WATCH, GET, MULTI, SET, EXEC.
        let mut s = c.session();
        s.watch("lock");
        s.get("lock").unwrap();
        s.multi();
        s.set("lock", "held");
        assert!(s.exec().unwrap());
        assert_eq!(c.round_trips(), 5);
    }

    #[test]
    fn session_aborts_on_conflict() {
        let c = client();
        let interloper = c.clone();
        let mut s = c.session();
        s.watch("lock");
        let existing = s.get("lock").unwrap();
        assert!(existing.is_none());
        interloper.set("lock", "stolen").unwrap();
        s.multi();
        s.set("lock", "mine");
        assert!(!s.exec().unwrap());
        assert_eq!(c.get("lock").unwrap(), Some("stolen".into()));
    }

    #[test]
    fn setnx_px_grants_leases() {
        let clock = Arc::new(VirtualClock::new());
        let c = Client::new(Store::new(), clock.clone(), LatencyModel::zero());
        assert!(c.set_nx_px("lease", "a", Duration::from_secs(5)).unwrap());
        assert!(!c.set_nx_px("lease", "b", Duration::from_secs(5)).unwrap());
        clock.advance(Duration::from_secs(6));
        assert!(c.set_nx_px("lease", "b", Duration::from_secs(5)).unwrap());
    }

    #[test]
    #[should_panic(expected = "outside MULTI")]
    fn queueing_before_multi_panics() {
        let c = client();
        let mut s = c.session();
        s.set("k", "v");
    }

    #[test]
    fn conn_error_applies_nothing() {
        use adhoc_sim::{FaultKind, FaultPlan, FaultRule};
        let plan = FaultPlan::new(1, vec![FaultRule::at_ops(FaultKind::ConnError, &[0])]);
        let c = client().with_faults(plan);
        assert_eq!(c.set("k", "v"), Err(KvError::ConnectionLost));
        assert_eq!(
            c.get("k").unwrap(),
            None,
            "command never reached the server"
        );
        assert_eq!(c.round_trips(), 2, "the failed attempt still paid the wire");
    }

    #[test]
    fn reply_lost_applies_but_errors() {
        use adhoc_sim::{FaultKind, FaultPlan, FaultRule};
        let plan = FaultPlan::new(1, vec![FaultRule::at_ops(FaultKind::ReplyLost, &[0])]);
        let c = client().with_faults(plan);
        assert_eq!(
            c.set_nx("lock", "me"),
            Err(KvError::ConnectionLost),
            "the acquirer cannot tell whether it holds the lock"
        );
        assert_eq!(
            c.get("lock").unwrap(),
            Some("me".into()),
            "but the server applied the SETNX"
        );
    }

    #[test]
    fn latency_spike_delays_server_arrival() {
        use adhoc_sim::{FaultKind, FaultPlan, FaultRule};
        let plan = FaultPlan::new(
            1,
            vec![FaultRule::at_ops(FaultKind::LatencySpike, &[1]).delay(Duration::from_secs(9))],
        );
        let clock = Arc::new(VirtualClock::new());
        let c = Client::new(Store::new(), clock.clone(), LatencyModel::zero()).with_faults(plan);
        assert!(c.set_nx_px("lease", "a", Duration::from_secs(5)).unwrap());
        // Op 1 stalls 9 virtual seconds in flight; by arrival the lease
        // from op 0 has already expired.
        assert!(c.set_nx_px("lease", "b", Duration::from_secs(5)).unwrap());
        assert_eq!(c.get("lease").unwrap(), Some("b".into()));
    }

    #[test]
    fn store_restart_loses_only_volatile_keys() {
        use adhoc_sim::{FaultKind, FaultPlan, FaultRule};
        let plan =
            FaultPlan::new_disabled(1, vec![FaultRule::at_ops(FaultKind::StoreRestart, &[0])]);
        let c = client().with_faults(plan.clone());
        c.set("durable", "v").unwrap();
        assert!(c.set_nx_px("lease", "a", Duration::from_secs(60)).unwrap());
        plan.enable();
        assert_eq!(c.get("lease").unwrap(), None, "lease gone after restart");
        assert_eq!(c.get("durable").unwrap(), Some("v".into()));
    }

    #[test]
    fn inbound_partition_drops_the_request() {
        use adhoc_sim::{FaultKind, FaultPlan, FaultRule};
        let plan = FaultPlan::new(
            1,
            vec![FaultRule::at_ops(FaultKind::PartitionInbound, &[0])],
        );
        let c = client().with_faults(plan);
        assert_eq!(c.set("k", "v"), Err(KvError::ConnectionLost));
        assert_eq!(c.get("k").unwrap(), None, "request never arrived");
    }

    #[test]
    fn outbound_partition_applies_but_drops_the_reply() {
        use adhoc_sim::{FaultKind, FaultPlan, FaultRule};
        let plan = FaultPlan::new(
            1,
            vec![FaultRule::at_ops(FaultKind::PartitionOutbound, &[0])],
        );
        let c = client().with_faults(plan);
        assert_eq!(c.del("k"), Err(KvError::ConnectionLost));
        // The one-way partition is indistinguishable from ReplyLost at the
        // client; the server-side effect is what the fault models.
        assert_eq!(c.set_nx("k", "v"), Ok(true), "DEL did apply server-side");
    }

    #[test]
    fn reply_delay_serves_at_the_original_instant() {
        use adhoc_sim::{FaultKind, FaultPlan, FaultRule};
        let plan = FaultPlan::new(
            1,
            vec![FaultRule::at_ops(FaultKind::ReplyDelay, &[1]).delay(Duration::from_secs(9))],
        );
        let clock = Arc::new(VirtualClock::new());
        let c = Client::new(Store::new(), clock.clone(), LatencyModel::zero()).with_faults(plan);
        assert!(c.set_nx_px("lease", "a", Duration::from_secs(5)).unwrap());
        // Op 1's *reply* stalls 9s: the server granted nothing (lease "a"
        // was live at arrival) and the client learns that 9s late — by
        // which time the lease has actually expired.
        assert!(!c.set_nx_px("lease", "b", Duration::from_secs(5)).unwrap());
        assert_eq!(clock.now(), Duration::from_secs(9));
        assert_eq!(c.get("lease").unwrap(), None, "lease expired mid-reply");
    }

    #[test]
    fn clock_skew_expires_ttls_early_on_the_server() {
        use adhoc_sim::{FaultKind, FaultPlan, FaultRule};
        let plan = FaultPlan::new(
            1,
            vec![FaultRule::at_ops(FaultKind::ClockSkew, &[1]).delay(Duration::from_secs(9))],
        );
        let clock = Arc::new(VirtualClock::new());
        let c = Client::new(Store::new(), clock.clone(), LatencyModel::zero()).with_faults(plan);
        assert!(c.set_nx_px("lease", "a", Duration::from_secs(5)).unwrap());
        // The server evaluates op 1 at now+9s, so the 5s lease looks
        // already expired there — a second holder is admitted while the
        // first still believes itself covered.
        assert!(c.set_nx_px("lease", "b", Duration::from_secs(5)).unwrap());
        assert_eq!(clock.now(), Duration::ZERO, "client clock never moved");
    }

    #[test]
    fn deadline_fails_fast_without_paying_the_wire() {
        let clock = Arc::new(VirtualClock::new());
        let deadline = Deadline::after(&*clock, Duration::from_secs(1));
        let c =
            Client::new(Store::new(), clock.clone(), LatencyModel::zero()).with_deadline(deadline);
        assert_eq!(c.set("k", "v"), Ok(()));
        clock.advance(Duration::from_secs(2));
        assert_eq!(c.set("k", "w"), Err(KvError::DeadlineExceeded));
        assert_eq!(c.round_trips(), 1, "the expired attempt never paid");
        assert_eq!(
            c.store().get("k", clock.now()).unwrap(),
            Some("v".into()),
            "nothing reached the server past the deadline"
        );
    }

    #[test]
    fn breaker_opens_after_consecutive_losses_and_recovers() {
        use adhoc_sim::{FaultKind, FaultPlan, FaultRule};
        let plan = FaultPlan::new(1, vec![FaultRule::at_ops(FaultKind::ConnError, &[0, 1, 2])]);
        let clock = Arc::new(VirtualClock::new());
        let breaker = Arc::new(CircuitBreaker::new(2, Duration::from_secs(10)));
        let c = Client::new(Store::new(), clock.clone(), LatencyModel::zero())
            .with_faults(plan)
            .with_breaker(breaker.clone());
        assert_eq!(c.set("k", "1"), Err(KvError::ConnectionLost));
        assert_eq!(c.set("k", "2"), Err(KvError::ConnectionLost));
        // Two consecutive losses tripped it: rejected locally, no wire.
        assert_eq!(c.set("k", "3"), Err(KvError::CircuitOpen));
        assert_eq!(c.round_trips(), 2);
        // After the cooldown one probe goes through; fault op 2 kills it
        // and re-opens the breaker.
        clock.advance(Duration::from_secs(10));
        assert_eq!(c.set("k", "4"), Err(KvError::ConnectionLost));
        assert_eq!(c.set("k", "5"), Err(KvError::CircuitOpen));
        // Next probe succeeds (plan exhausted) and the circuit closes.
        clock.advance(Duration::from_secs(10));
        assert_eq!(c.set("k", "6"), Ok(()));
        assert_eq!(c.get("k").unwrap(), Some("6".into()));
        assert_eq!(breaker.times_opened(), 2);
    }

    #[test]
    fn fenced_lease_round_trips_and_rejects_zombies() {
        let clock = Arc::new(VirtualClock::new());
        let c = Client::new(Store::new(), clock.clone(), LatencyModel::zero());
        let old = c
            .acquire_lease("lease", "a", Duration::from_secs(5))
            .unwrap()
            .unwrap();
        clock.advance(Duration::from_secs(6));
        let fresh = c
            .acquire_lease("lease", "b", Duration::from_secs(5))
            .unwrap()
            .unwrap();
        assert!(fresh > old);
        assert!(c.fenced_set("guarded", "b", fresh).unwrap());
        assert!(!c.fenced_set("guarded", "a", old).unwrap());
        assert_eq!(c.fence_floor("guarded").unwrap(), fresh);
        assert_eq!(c.get("guarded").unwrap(), Some("b".into()));
    }

    #[test]
    fn clones_share_round_trip_counter() {
        let c = client();
        let d = c.clone();
        c.set("a", "1").unwrap();
        d.set("b", "2").unwrap();
        assert_eq!(c.round_trips(), 2);
        assert_eq!(d.round_trips(), 2);
    }
}
