//! Summary statistics for the evaluation harness.
//!
//! The harness reports the same quantities the paper's figures plot:
//! latency distributions (Figures 2 and 4), throughput (Figure 3), and the
//! geometric mean of improvements quoted in §5.2.

use std::time::Duration;

/// Latency distribution summary over a batch of samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples summarized.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median (50th percentile).
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Smallest sample.
    pub min: Duration,
    /// Largest sample.
    pub max: Duration,
}

impl Summary {
    /// Summarize a set of samples. Returns `None` for an empty batch.
    pub fn from_samples(samples: &[Duration]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let total: Duration = sorted.iter().sum();
        let pick = |q: f64| -> Duration {
            let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
            sorted[idx]
        };
        Some(Self {
            count: sorted.len(),
            mean: total / sorted.len() as u32,
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
        })
    }
}

/// HDR-style log-linear latency histogram.
///
/// Values are bucketed by octave (power of two) with [`Histogram::SUB_BUCKETS`]
/// linear sub-buckets per octave, giving ≤ ~3% relative error at any
/// magnitude from nanoseconds to minutes in constant memory. Unlike
/// [`Summary::from_samples`] it never retains the raw samples, so the
/// open-loop traffic harness can record millions of latencies per load level
/// and still report p50/p99/p999 exactly the same way a production HDR
/// recorder would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    total_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Linear sub-buckets per power-of-two octave (32 ⇒ ~3% worst-case
    /// relative quantile error).
    pub const SUB_BUCKETS: usize = 32;
    const SUB_SHIFT: u32 = 5; // log2(SUB_BUCKETS)
                              // Octaves 0..=63 cover the whole u64 nanosecond range.
    const OCTAVES: usize = 64;

    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; Self::OCTAVES * Self::SUB_BUCKETS],
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    fn index_of(ns: u64) -> usize {
        if ns < Self::SUB_BUCKETS as u64 {
            // First octave is exact: one bucket per nanosecond.
            return ns as usize;
        }
        let octave = 63 - ns.leading_zeros();
        let sub = (ns >> (octave - Self::SUB_SHIFT)) as usize & (Self::SUB_BUCKETS - 1);
        // Octave SUB_SHIFT lands at the start of the table by construction.
        ((octave - Self::SUB_SHIFT + 1) as usize) * Self::SUB_BUCKETS + sub
    }

    /// Lowest value mapping to bucket `idx` (the reported quantile value).
    fn value_of(idx: usize) -> u64 {
        if idx < Self::SUB_BUCKETS {
            return idx as u64;
        }
        let octave = (idx / Self::SUB_BUCKETS) as u32 + Self::SUB_SHIFT - 1;
        let sub = (idx % Self::SUB_BUCKETS) as u64;
        (1u64 << octave) + (sub << (octave - Self::SUB_SHIFT))
    }

    /// Record one latency sample.
    pub fn record(&mut self, value: Duration) {
        let ns = u64::try_from(value.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[Self::index_of(ns)] += 1;
        self.count += 1;
        self.total_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (zero when empty).
    pub fn min(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(self.min_ns)
        }
    }

    /// Largest recorded sample (zero when empty).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Arithmetic mean of the recorded samples (exact, not bucketed).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.total_ns / self.count as u128) as u64)
    }

    /// The value at quantile `q` in `[0, 1]`, within one bucket (~3%).
    ///
    /// Returns the exact recorded extreme for `q` at or beyond the ends.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        if q >= 1.0 {
            return self.max();
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Duration::from_nanos(Self::value_of(idx).max(self.min_ns));
            }
        }
        self.max()
    }

    /// Median.
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// 99.9th percentile — the tail the SLO gate watches.
    pub fn p999(&self) -> Duration {
        self.quantile(0.999)
    }

    /// Fold another histogram into this one (for merging per-scenario or
    /// per-worker recorders into a run total).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Requests per second given a completed-request count and elapsed time.
pub fn throughput(completed: usize, elapsed: Duration) -> f64 {
    if elapsed.is_zero() {
        return f64::INFINITY;
    }
    completed as f64 / elapsed.as_secs_f64()
}

/// Geometric mean of a set of ratios (e.g., AHT/DBT speedups).
///
/// Returns `None` when the input is empty or contains a non-positive ratio.
pub fn geometric_mean(ratios: &[f64]) -> Option<f64> {
    if ratios.is_empty() || ratios.iter().any(|r| *r <= 0.0) {
        return None;
    }
    let log_sum: f64 = ratios.iter().map(|r| r.ln()).sum();
    Some((log_sum / ratios.len() as f64).exp())
}

/// Render a duration the way the harness tables print it: µs below 1 ms,
/// ms below 1 s, seconds above.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.2} us")
    } else if us < 1_000_000.0 {
        format!("{:.2} ms", us / 1000.0)
    } else {
        format!("{:.2} s", us / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::from_samples(&[]).is_none());
    }

    #[test]
    fn summary_basics() {
        let samples: Vec<Duration> = (1..=100).map(ms).collect();
        let s = Summary::from_samples(&samples).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, ms(1));
        assert_eq!(s.max, ms(100));
        assert_eq!(s.mean, Duration::from_micros(50_500));
        assert_eq!(s.p50, ms(51)); // round((99)*0.5)=50 -> sorted[50]=51ms
        assert_eq!(s.p99, ms(99));
    }

    #[test]
    fn summary_is_order_insensitive() {
        let a = Summary::from_samples(&[ms(3), ms(1), ms(2)]).unwrap();
        let b = Summary::from_samples(&[ms(1), ms(2), ms(3)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn throughput_computes_rps() {
        assert_eq!(throughput(500, Duration::from_secs(5)), 100.0);
        assert!(throughput(1, Duration::ZERO).is_infinite());
    }

    #[test]
    fn geometric_mean_matches_paper_usage() {
        // Four equal speedups: the geomean is the speedup itself.
        let g = geometric_mean(&[1.3, 1.3, 1.3, 1.3]).unwrap();
        assert!((g - 1.3).abs() < 1e-12);
        // Mixed: geomean of 2 and 0.5 is 1.
        let g = geometric_mean(&[2.0, 0.5]).unwrap();
        assert!((g - 1.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_none());
        assert!(geometric_mean(&[1.0, -2.0]).is_none());
    }

    #[test]
    fn fmt_duration_picks_scales() {
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }

    #[test]
    fn histogram_empty_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), Duration::ZERO);
        assert_eq!(h.p999(), Duration::ZERO);
        assert_eq!(h.min(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn histogram_single_sample_is_exact() {
        let mut h = Histogram::new();
        h.record(ms(7));
        assert_eq!(h.p50(), ms(7));
        assert_eq!(h.p999(), ms(7));
        assert_eq!(h.min(), ms(7));
        assert_eq!(h.max(), ms(7));
        assert_eq!(h.mean(), ms(7));
    }

    #[test]
    fn histogram_quantiles_within_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(Duration::from_micros(v));
        }
        for (q, exact_us) in [(0.50, 5_000.0), (0.99, 9_900.0), (0.999, 9_990.0)] {
            let got = h.quantile(q).as_secs_f64() * 1e6;
            let rel = (got - exact_us).abs() / exact_us;
            assert!(
                rel < 0.04,
                "q={q}: got {got} us vs exact {exact_us} us (rel err {rel:.4})"
            );
        }
        assert_eq!(h.min(), Duration::from_micros(1));
        assert_eq!(h.max(), Duration::from_micros(10_000));
    }

    #[test]
    fn histogram_matches_summary_on_shared_quantiles() {
        let samples: Vec<Duration> = (1..=1000).map(|v| Duration::from_micros(v * 37)).collect();
        let summary = Summary::from_samples(&samples).unwrap();
        let mut h = Histogram::new();
        for s in &samples {
            h.record(*s);
        }
        for (hq, sq) in [(h.p50(), summary.p50), (h.p99(), summary.p99)] {
            let rel = (hq.as_secs_f64() - sq.as_secs_f64()).abs() / sq.as_secs_f64();
            assert!(rel < 0.04, "histogram {hq:?} vs summary {sq:?}");
        }
    }

    #[test]
    fn histogram_merge_equals_union() {
        let mut all = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for v in 1..=500u64 {
            all.record(ms(v));
            left.record(ms(v));
        }
        for v in 501..=900u64 {
            all.record(ms(v));
            right.record(ms(v));
        }
        left.merge(&right);
        assert_eq!(left, all);
    }

    #[test]
    fn histogram_handles_extreme_magnitudes() {
        let mut h = Histogram::new();
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_secs(3600));
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Duration::from_nanos(1));
        // Bucket value of an hour is within 3% of an hour.
        let p = h.quantile(1.0).as_secs_f64();
        assert!((3500.0..=3600.0).contains(&p), "got {p}");
    }
}
