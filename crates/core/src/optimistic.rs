//! The §6 "OCC primitives" proposal, made concrete.
//!
//! The paper argues that since major engines are 2PL/MVCC, applications
//! needing optimistic coordination (notably multi-request interactions,
//! §3.1.2) are forced to hand-roll it — and proposes ORM-layer primitives
//! instead: an optimistic transaction declaration whose read/write sets the
//! framework tracks, with atomic validate-and-commit, plus *continuations*
//! (`save(trans)→tid` / `restore(tid)→trans`) so an optimistic transaction
//! can span HTTP requests without holding any lock in between.
//!
//! [`OptimisticTransaction`] is that declaration. Reads record value
//! snapshots; writes buffer; [`OptimisticTransaction::commit`] re-locks the
//! read rows, validates the snapshots, and applies the writes in one
//! database transaction. [`ContinuationStore`] is the save/restore side.

use crate::error::ToolkitError;
use crate::retry::{RetryObserver, RetryPolicy};
use crate::validation::CommitOutcome;
use crate::Result;
use adhoc_orm::{Obj, Orm};
use adhoc_storage::{Row, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A tracked read: the row as this transaction saw it.
#[derive(Debug, Clone)]
struct ReadRecord {
    entity: String,
    id: i64,
    snapshot: Row,
}

/// A buffered write.
#[derive(Debug, Clone)]
struct WriteRecord {
    entity: String,
    id: i64,
    pairs: Vec<(String, Value)>,
}

/// A buffered insert.
#[derive(Debug, Clone)]
struct InsertRecord {
    entity: String,
    pairs: Vec<(String, Value)>,
}

/// An ORM-layer optimistic transaction (the proposed
/// `@OptimisticallyTransactional`).
#[derive(Debug, Default, Clone)]
pub struct OptimisticTransaction {
    reads: Vec<ReadRecord>,
    writes: Vec<WriteRecord>,
    inserts: Vec<InsertRecord>,
}

impl OptimisticTransaction {
    /// An empty optimistic transaction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read a row, recording its value snapshot in the read set.
    pub fn read(&mut self, orm: &Orm, entity: &str, id: i64) -> Result<Option<Obj>> {
        let obj = orm.find(entity, id)?;
        if let Some(obj) = &obj {
            self.reads.push(ReadRecord {
                entity: entity.to_string(),
                id,
                snapshot: obj.row().clone(),
            });
        }
        Ok(obj)
    }

    /// Buffer an update to be applied at commit.
    pub fn write(&mut self, entity: &str, id: i64, pairs: &[(&str, Value)]) {
        self.writes.push(WriteRecord {
            entity: entity.to_string(),
            id,
            pairs: pairs
                .iter()
                .map(|(n, v)| (n.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Buffer an insert to be applied at commit.
    pub fn insert(&mut self, entity: &str, pairs: &[(&str, Value)]) {
        self.inserts.push(InsertRecord {
            entity: entity.to_string(),
            pairs: pairs
                .iter()
                .map(|(n, v)| (n.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Number of tracked reads (diagnostics).
    pub fn read_set_len(&self) -> usize {
        self.reads.len()
    }

    /// Validate the read set and apply the write set in one database
    /// transaction. Validation locks each read row and compares its
    /// current value against the recorded snapshot (value-based, so
    /// commutative updates to *other* columns of unread rows never
    /// conflict).
    pub fn commit(self, orm: &Orm) -> Result<CommitOutcome> {
        let outcome = orm.transaction(|t| {
            for read in &self.reads {
                let current = t.raw().get_for_update(&read.entity, read.id)?;
                match current {
                    Some(row) if row == read.snapshot => {}
                    _ => return Ok(CommitOutcome::Conflict),
                }
            }
            for w in &self.writes {
                let pairs: Vec<(&str, Value)> = w
                    .pairs
                    .iter()
                    .map(|(n, v)| (n.as_str(), v.clone()))
                    .collect();
                t.raw().update(&w.entity, w.id, &pairs)?;
            }
            for ins in &self.inserts {
                let pairs: Vec<(&str, Value)> = ins
                    .pairs
                    .iter()
                    .map(|(n, v)| (n.as_str(), v.clone()))
                    .collect();
                t.raw().insert(&ins.entity, &pairs)?;
            }
            Ok(CommitOutcome::Committed)
        });
        match outcome {
            Ok(o) => Ok(o),
            Err(e) => Err(e.into()),
        }
    }
}

/// Internal error type for the [`run_optimistic`] retry loop: a validation
/// conflict is always retryable; toolkit errors keep their own
/// classification.
enum OccFailure {
    Conflict,
    Other(ToolkitError),
}

/// Run a whole optimistic transaction — build, read, write, commit — under
/// `policy`, retrying on validation [`CommitOutcome::Conflict`] (and on
/// retryable engine errors) instead of hand-rolling the
/// build-commit-check-loop every call site used to carry.
///
/// `body` is invoked with a fresh [`OptimisticTransaction`] per attempt, so
/// its reads re-snapshot current values. Gives up with
/// [`ToolkitError::RetriesExhausted`] once the policy's budget or deadline
/// is spent.
pub fn run_optimistic<T>(
    orm: &Orm,
    policy: &RetryPolicy,
    observer: Option<&dyn RetryObserver>,
    mut body: impl FnMut(&mut OptimisticTransaction) -> Result<T>,
) -> Result<T> {
    let retryable = |e: &OccFailure| match e {
        OccFailure::Conflict => true,
        OccFailure::Other(e) => e.is_retryable(),
    };
    policy
        .run("occ", observer, retryable, |_attempt| {
            let mut txn = OptimisticTransaction::new();
            let value = body(&mut txn).map_err(OccFailure::Other)?;
            match txn.commit(orm).map_err(OccFailure::Other)? {
                CommitOutcome::Committed => Ok(value),
                CommitOutcome::Conflict => Err(OccFailure::Conflict),
            }
        })
        .map_err(|give_up| match give_up.error {
            OccFailure::Other(e) if !give_up.retryable => e,
            _ => ToolkitError::RetriesExhausted {
                attempts: give_up.attempts,
            },
        })
}

/// Saved optimistic transactions, keyed by continuation id — the proposed
/// `save(trans) → tid` / `restore(tid) → trans` pair for multi-request
/// interactions. Unlike the long-lived database transactions of §3.1.2,
/// nothing is locked while a continuation is parked.
#[derive(Debug, Default)]
pub struct ContinuationStore {
    slots: Mutex<HashMap<u64, OptimisticTransaction>>,
    counter: AtomicU64,
}

impl ContinuationStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Park a transaction; returns the continuation id to embed in the
    /// response (the Discourse edit-post flow embeds a version the same
    /// way).
    pub fn save(&self, txn: OptimisticTransaction) -> u64 {
        let id = self.counter.fetch_add(1, Ordering::SeqCst) + 1;
        self.slots.lock().insert(id, txn);
        id
    }

    /// Resume a parked transaction.
    pub fn restore(&self, id: u64) -> Result<OptimisticTransaction> {
        self.slots
            .lock()
            .remove(&id)
            .ok_or(ToolkitError::NoSuchContinuation { id })
    }

    /// Parked continuations (diagnostics).
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// True when no continuations are parked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_orm::{EntityDef, Registry};
    use adhoc_storage::{Column, ColumnType, Database, EngineProfile, Schema};

    fn fixture() -> Orm {
        let db = Database::in_memory(EngineProfile::PostgresLike);
        db.create_table(
            Schema::new(
                "posts",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("content", ColumnType::Str),
                    Column::new("view_cnt", ColumnType::Int),
                ],
                "id",
            )
            .unwrap(),
        )
        .unwrap();
        let orm = Orm::new(db, Registry::new().register(EntityDef::new("posts")));
        orm.create(
            "posts",
            &[
                ("id", 1.into()),
                ("content", "v0".into()),
                ("view_cnt", 0.into()),
            ],
        )
        .unwrap();
        orm
    }

    #[test]
    fn commit_applies_buffered_writes() {
        let orm = fixture();
        let mut txn = OptimisticTransaction::new();
        let post = txn.read(&orm, "posts", 1).unwrap().unwrap();
        assert_eq!(post.get_str("content").unwrap(), "v0");
        txn.write("posts", 1, &[("content", "edited".into())]);
        txn.insert(
            "posts",
            &[
                ("id", 2.into()),
                ("content", "new".into()),
                ("view_cnt", 0.into()),
            ],
        );
        assert_eq!(txn.commit(&orm).unwrap(), CommitOutcome::Committed);
        assert_eq!(
            orm.find_required("posts", 1)
                .unwrap()
                .get_str("content")
                .unwrap(),
            "edited"
        );
        assert!(orm.find("posts", 2).unwrap().is_some());
    }

    #[test]
    fn conflicting_write_is_detected() {
        let orm = fixture();
        let mut txn = OptimisticTransaction::new();
        txn.read(&orm, "posts", 1).unwrap().unwrap();
        txn.write("posts", 1, &[("content", "mine".into())]);
        // Interloper commits first.
        orm.transaction(|t| {
            t.raw()
                .update("posts", 1, &[("content", "theirs".into())])?;
            Ok(())
        })
        .unwrap();
        assert_eq!(txn.commit(&orm).unwrap(), CommitOutcome::Conflict);
        assert_eq!(
            orm.find_required("posts", 1)
                .unwrap()
                .get_str("content")
                .unwrap(),
            "theirs",
            "conflict must leave the interloper's write intact"
        );
    }

    #[test]
    fn deleted_read_row_conflicts() {
        let orm = fixture();
        let mut txn = OptimisticTransaction::new();
        txn.read(&orm, "posts", 1).unwrap().unwrap();
        orm.delete("posts", 1).unwrap();
        txn.write("posts", 1, &[("content", "mine".into())]);
        assert_eq!(txn.commit(&orm).unwrap(), CommitOutcome::Conflict);
    }

    #[test]
    fn continuations_span_requests() {
        // The §3.1.2 edit-post flow: request 1 reads and parks; request 2
        // restores, validates, writes.
        let orm = fixture();
        let store = ContinuationStore::new();

        // Request 1.
        let tid = {
            let mut txn = OptimisticTransaction::new();
            txn.read(&orm, "posts", 1).unwrap().unwrap();
            store.save(txn)
        };
        assert_eq!(store.len(), 1);

        // Between requests: a *commutative* change to an unread row would
        // not interfere; here nothing changes, so the edit lands.
        let mut txn = store.restore(tid).unwrap();
        txn.write("posts", 1, &[("content", "edited across requests".into())]);
        assert_eq!(txn.commit(&orm).unwrap(), CommitOutcome::Committed);
        assert!(store.is_empty());
        assert!(matches!(
            store.restore(tid),
            Err(ToolkitError::NoSuchContinuation { .. })
        ));
    }

    #[test]
    fn continuation_conflict_on_concurrent_edit() {
        let orm = fixture();
        let store = ContinuationStore::new();
        let tid = {
            let mut txn = OptimisticTransaction::new();
            txn.read(&orm, "posts", 1).unwrap().unwrap();
            store.save(txn)
        };
        // Someone else edits between the requests.
        orm.transaction(|t| {
            t.raw()
                .update("posts", 1, &[("content", "sniped".into())])?;
            Ok(())
        })
        .unwrap();
        let mut txn = store.restore(tid).unwrap();
        txn.write("posts", 1, &[("content", "mine".into())]);
        assert_eq!(txn.commit(&orm).unwrap(), CommitOutcome::Conflict);
    }

    #[test]
    fn read_of_missing_row_returns_none_and_tracks_nothing() {
        let orm = fixture();
        let mut txn = OptimisticTransaction::new();
        assert!(txn.read(&orm, "posts", 99).unwrap().is_none());
        assert_eq!(txn.read_set_len(), 0);
    }

    #[test]
    fn empty_transaction_commits_trivially() {
        let orm = fixture();
        let txn = OptimisticTransaction::new();
        assert_eq!(txn.commit(&orm).unwrap(), CommitOutcome::Committed);
    }

    #[test]
    fn concurrent_commits_serialize_correctly() {
        // Many optimistic increments under the unified retry policy: none
        // lost. (This loop used to be hand-rolled; run_optimistic owns the
        // retry arithmetic now.)
        let orm = fixture();
        let threads = 6;
        let per = 20;
        let policy = RetryPolicy::exponential(
            1000,
            std::time::Duration::from_micros(20),
            std::time::Duration::from_micros(500),
        );
        std::thread::scope(|s| {
            for _ in 0..threads {
                let orm = orm.clone();
                let policy = &policy;
                s.spawn(move || {
                    for _ in 0..per {
                        run_optimistic(&orm, policy, None, |txn| {
                            let post = txn.read(&orm, "posts", 1)?.unwrap();
                            let v = post.get_int("view_cnt").unwrap();
                            txn.write("posts", 1, &[("view_cnt", (v + 1).into())]);
                            Ok(())
                        })
                        .unwrap();
                    }
                });
            }
        });
        assert_eq!(
            orm.find_required("posts", 1)
                .unwrap()
                .get_int("view_cnt")
                .unwrap(),
            (threads * per) as i64
        );
    }

    #[test]
    fn run_optimistic_gives_up_when_conflicts_never_stop() {
        // A body that always loses validation must exhaust the budget, not
        // spin forever.
        let orm = fixture();
        let policy =
            RetryPolicy::exponential(3, std::time::Duration::ZERO, std::time::Duration::ZERO);
        let mut round = 0;
        let result = run_optimistic(&orm, &policy, None, |txn| {
            txn.read(&orm, "posts", 1)?.unwrap();
            // Sabotage our own snapshot before commit (a fresh value each
            // attempt, so every validation fails).
            round += 1;
            let sabotage = format!("moved-{round}");
            orm.transaction(|t| {
                t.raw()
                    .update("posts", 1, &[("content", sabotage.as_str().into())])?;
                Ok(())
            })?;
            txn.write("posts", 1, &[("content", "mine".into())]);
            Ok(())
        });
        assert_eq!(
            result.unwrap_err(),
            ToolkitError::RetriesExhausted { attempts: 3 }
        );
    }

    #[test]
    fn run_optimistic_passes_hard_errors_through() {
        let orm = fixture();
        let policy =
            RetryPolicy::exponential(5, std::time::Duration::ZERO, std::time::Duration::ZERO);
        let mut calls = 0;
        let result = run_optimistic(&orm, &policy, None, |txn| {
            calls += 1;
            txn.read(&orm, "no_such_entity", 1)?;
            Ok(())
        });
        assert!(result.is_err());
        assert_eq!(calls, 1, "a non-retryable error must not be re-attempted");
    }
}
