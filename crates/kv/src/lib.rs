//! A Redis-like key–value store, as used by the studied applications.
//!
//! Discourse, Mastodon, JumpServer and Saleor all build ad hoc transaction
//! locks on top of Redis (§3.2.1 of the paper), and Mastodon additionally
//! keeps timeline sets in Redis next to post rows in the RDBMS (§3.1.3).
//! This crate reproduces the subset of Redis those usages rely on:
//!
//! * string values with `GET`/`SET`/`SETNX`/`DEL`/`INCR`;
//! * key expiry (`PX` TTLs, `EXPIRE`, `TTL`) driven by a [`Clock`] — the
//!   lease semantics behind the Mastodon early-expiry bug (§4.1.1);
//! * sets (`SADD`/`SREM`/`SMEMBERS`/`SISMEMBER`) for timelines;
//! * `WATCH`/`MULTI`/`EXEC` optimistic transactions — the primitive behind
//!   Discourse's lock, which costs "six additional round trips" compared to
//!   Mastodon's single `SETNX` (§3.2.1);
//! * a [`Client`] that charges one simulated network round trip per command,
//!   so the Figure 2 latency reproduction sees the same decisive costs the
//!   paper measured.
//!
//! [`Clock`]: adhoc_sim::Clock
//!
//! # Example
//!
//! ```
//! use adhoc_kv::{Client, Store};
//! use adhoc_sim::{LatencyModel, VirtualClock};
//! use std::time::Duration;
//!
//! let client = Client::new(Store::new(), VirtualClock::shared(), LatencyModel::zero());
//! // A lease-style lock entry, Figure 1b's `SETNX`:
//! assert!(client.set_nx_px("redeem:1", "owner-a", Duration::from_secs(5))?);
//! assert!(!client.set_nx_px("redeem:1", "owner-b", Duration::from_secs(5))?);
//! client.del("redeem:1")?;
//! # Ok::<(), adhoc_kv::KvError>(())
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod store;

pub use client::Client;
pub use store::{stripe_of, KvError, KvStats, SetMode, Store, Ttl, Value, WriteOp, STRIPE_COUNT};
