//! Summary statistics for the evaluation harness.
//!
//! The harness reports the same quantities the paper's figures plot:
//! latency distributions (Figures 2 and 4), throughput (Figure 3), and the
//! geometric mean of improvements quoted in §5.2.

use std::time::Duration;

/// Latency distribution summary over a batch of samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples summarized.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median (50th percentile).
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Smallest sample.
    pub min: Duration,
    /// Largest sample.
    pub max: Duration,
}

impl Summary {
    /// Summarize a set of samples. Returns `None` for an empty batch.
    pub fn from_samples(samples: &[Duration]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let total: Duration = sorted.iter().sum();
        let pick = |q: f64| -> Duration {
            let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
            sorted[idx]
        };
        Some(Self {
            count: sorted.len(),
            mean: total / sorted.len() as u32,
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
        })
    }
}

/// Requests per second given a completed-request count and elapsed time.
pub fn throughput(completed: usize, elapsed: Duration) -> f64 {
    if elapsed.is_zero() {
        return f64::INFINITY;
    }
    completed as f64 / elapsed.as_secs_f64()
}

/// Geometric mean of a set of ratios (e.g., AHT/DBT speedups).
///
/// Returns `None` when the input is empty or contains a non-positive ratio.
pub fn geometric_mean(ratios: &[f64]) -> Option<f64> {
    if ratios.is_empty() || ratios.iter().any(|r| *r <= 0.0) {
        return None;
    }
    let log_sum: f64 = ratios.iter().map(|r| r.ln()).sum();
    Some((log_sum / ratios.len() as f64).exp())
}

/// Render a duration the way the harness tables print it: µs below 1 ms,
/// ms below 1 s, seconds above.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.2} us")
    } else if us < 1_000_000.0 {
        format!("{:.2} ms", us / 1000.0)
    } else {
        format!("{:.2} s", us / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::from_samples(&[]).is_none());
    }

    #[test]
    fn summary_basics() {
        let samples: Vec<Duration> = (1..=100).map(ms).collect();
        let s = Summary::from_samples(&samples).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, ms(1));
        assert_eq!(s.max, ms(100));
        assert_eq!(s.mean, Duration::from_micros(50_500));
        assert_eq!(s.p50, ms(51)); // round((99)*0.5)=50 -> sorted[50]=51ms
        assert_eq!(s.p99, ms(99));
    }

    #[test]
    fn summary_is_order_insensitive() {
        let a = Summary::from_samples(&[ms(3), ms(1), ms(2)]).unwrap();
        let b = Summary::from_samples(&[ms(1), ms(2), ms(3)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn throughput_computes_rps() {
        assert_eq!(throughput(500, Duration::from_secs(5)), 100.0);
        assert!(throughput(1, Duration::ZERO).is_infinite());
    }

    #[test]
    fn geometric_mean_matches_paper_usage() {
        // Four equal speedups: the geomean is the speedup itself.
        let g = geometric_mean(&[1.3, 1.3, 1.3, 1.3]).unwrap();
        assert!((g - 1.3).abs() < 1e-12);
        // Mixed: geomean of 2 and 0.5 is 1.
        let g = geometric_mean(&[2.0, 0.5]).unwrap();
        assert!((g - 1.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_none());
        assert!(geometric_mean(&[1.0, -2.0]).is_none());
    }

    #[test]
    fn fmt_duration_picks_scales() {
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
