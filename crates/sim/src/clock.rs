//! Time sources.
//!
//! Everything in the workspace that needs "now" or "wait" goes through a
//! [`Clock`] so that tests and latency microbenchmarks can run on virtual
//! time while throughput benchmarks run on the wall clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source.
///
/// `now()` is an offset from an arbitrary per-clock epoch. Implementations
/// must be thread-safe; clocks are shared freely across worker threads.
pub trait Clock: Send + Sync + 'static {
    /// Current time since this clock's epoch.
    fn now(&self) -> Duration;

    /// Block (or virtually advance) for `d`.
    fn sleep(&self, d: Duration);

    /// True when `sleep` advances time without blocking the thread.
    ///
    /// Latency benchmarks use this to decide whether measured durations are
    /// virtual or real.
    fn is_virtual(&self) -> bool {
        false
    }
}

/// Shared, dynamically-dispatched clock handle.
pub type SharedClock = Arc<dyn Clock>;

/// Wall-clock time with a sleep that stays accurate at microsecond scale
/// without hogging the CPU.
///
/// `std::thread::sleep` routinely overshoots sub-millisecond requests by the
/// timer slack, which would flatten the latency differences Figure 2 depends
/// on — but busy-spinning (`spin_loop`) starves every other thread on small
/// machines (a preempted spinner burns a whole scheduling quantum). Short
/// waits therefore *yield* in a loop: accurate when the core is free,
/// cooperative when it is not.
#[derive(Debug)]
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    /// Waits longer than this go to the OS timer; shorter ones yield-loop.
    const YIELD_THRESHOLD: Duration = Duration::from_micros(500);

    /// A clock whose epoch is the moment of construction.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }

    /// Convenience: a shared handle.
    pub fn shared() -> SharedClock {
        Arc::new(Self::new())
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, d: Duration) {
        if d.is_zero() {
            return;
        }
        let deadline = Instant::now() + d;
        if d > Self::YIELD_THRESHOLD {
            std::thread::sleep(d - Self::YIELD_THRESHOLD);
        }
        while Instant::now() < deadline {
            std::thread::yield_now();
        }
    }
}

/// Deterministic virtual time: `sleep` advances an atomic counter.
///
/// Suitable for single-logical-timeline measurements (the Figure 2 latency
/// microbenchmark charges costs onto one virtual timeline) and for tests
/// that exercise TTL expiry without real waiting.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience: a shared handle.
    pub fn shared() -> SharedClock {
        Arc::new(Self::new())
    }

    /// Advance time without going through `sleep` (e.g., "two hours pass").
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }

    fn is_virtual(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_starts_at_zero_and_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.sleep(Duration::from_millis(5));
        assert_eq!(c.now(), Duration::from_millis(5));
        c.advance(Duration::from_secs(1));
        assert_eq!(c.now(), Duration::from_millis(1005));
        assert!(c.is_virtual());
    }

    #[test]
    fn virtual_clock_is_thread_safe() {
        let c = Arc::new(VirtualClock::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.sleep(Duration::from_nanos(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now(), Duration::from_nanos(8000));
    }

    #[test]
    fn real_clock_monotonic_and_sleeps() {
        let c = RealClock::new();
        let t0 = c.now();
        c.sleep(Duration::from_micros(200));
        let t1 = c.now();
        assert!(t1 >= t0 + Duration::from_micros(200));
        assert!(!c.is_virtual());
    }

    #[test]
    fn real_clock_short_sleep_does_not_overshoot_wildly() {
        let c = RealClock::new();
        let start = Instant::now();
        c.sleep(Duration::from_micros(100));
        // Spinning keeps us within a generous factor of the request.
        assert!(start.elapsed() < Duration::from_millis(20));
    }

    #[test]
    fn zero_sleep_is_free() {
        let c = RealClock::new();
        let start = Instant::now();
        for _ in 0..1000 {
            c.sleep(Duration::ZERO);
        }
        assert!(start.elapsed() < Duration::from_millis(50));
    }
}
