//! The open-loop tick harness and the front-door ablation sweep.
//!
//! **Open loop** is the operative phrase: arrivals are fixed by a
//! Poisson (or bursty) process on the virtual clock and do not slow down
//! when the service falls behind — exactly the regime where a web tier
//! either sheds load deliberately or collapses into serving only stale
//! work. Each run drives one [`Service`] configuration at one offered
//! load; the sweep crosses the three front-door arms
//! ([`StackConfig::naive`] / [`StackConfig::breaker_only`] /
//! [`StackConfig::full`]) with load levels below and past saturation.
//!
//! The reproduction target is the *shape*, not absolute numbers: below
//! saturation all three arms meet the latency SLO; past saturation the
//! full front door plateaus at capacity (refusing and shedding the
//! excess at the edge) while the naive stack's goodput — completions
//! *within the SLO* — decays toward zero even though it is still "doing
//! work", and a breaker alone does not save it, because breakers guard a
//! failing backend, not a healthy backend drowning in queued work.
//! Rendered to `BENCH_traffic.json` by `paper-eval bench-json`.

use crate::workload::{average_cost_units, MixedWorkload, CLIENT_POPULATION};
use adhoc_service::{Service, ServiceError, StackConfig};
use adhoc_sim::rng::{BurstyProcess, PoissonProcess};
use adhoc_sim::{Clock, Histogram, VirtualClock};
use std::sync::Arc;
use std::time::Duration;

/// Workspace-wide reproduction seed.
pub const SEED: u64 = 0x5157_4d0d_2022_0612;
/// Tick length: the service drains its queue once per tick.
pub const TICK: Duration = Duration::from_millis(10);
/// The latency SLO a completion must meet to count as goodput.
pub const SLO: Duration = Duration::from_millis(200);

/// How an offered-load level generates arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Memoryless Poisson arrivals at the level's mean rate.
    Poisson,
    /// Phase-modulated bursts: quiet troughs, 4x peaks, same mean.
    Bursty,
}

impl ArrivalKind {
    fn label(self) -> &'static str {
        match self {
            ArrivalKind::Poisson => "poisson",
            ArrivalKind::Bursty => "bursty",
        }
    }
}

enum Arrivals {
    Poisson(PoissonProcess),
    Bursty(BurstyProcess),
}

impl Arrivals {
    fn new(kind: ArrivalKind, seed: u64, mean_rps: f64) -> Self {
        match kind {
            ArrivalKind::Poisson => Arrivals::Poisson(PoissonProcess::new(seed, mean_rps)),
            ArrivalKind::Bursty => {
                // burst_fraction 0.25 at 4x the trough rate gives the same
                // mean: 0.25*4r + 0.75*(4r/7)*... — solved directly below.
                // mean = f*burst + (1-f)*base with burst = 4*base:
                // mean = base*(0.25*4 + 0.75) = 1.75*base.
                let base = mean_rps / 1.75;
                Arrivals::Bursty(BurstyProcess::new(
                    seed,
                    base,
                    4.0 * base,
                    Duration::from_millis(200),
                    0.25,
                ))
            }
        }
    }

    fn drain_until(&mut self, now: Duration) -> Vec<Duration> {
        match self {
            Arrivals::Poisson(p) => p.drain_until(now),
            Arrivals::Bursty(b) => b.drain_until(now),
        }
    }
}

/// Run sizing: ticks, measurement window, seeded rows, load levels.
#[derive(Debug, Clone)]
pub struct TrafficScale {
    /// Total ticks per run.
    pub ticks: u64,
    /// Tick index measurement starts at (everything before is warm-up —
    /// long enough for an overloaded naive queue to outgrow the SLO).
    pub measure_from: u64,
    /// Seeded rows per application (object population).
    pub objects: u64,
    /// Service capacity per tick, in endpoint cost units.
    pub capacity_units: u32,
    /// Offered load levels as multiples of the saturation rate.
    pub levels: Vec<f64>,
}

impl TrafficScale {
    /// The paper-scale sweep (seconds of virtual time per run).
    pub fn paper() -> Self {
        Self {
            ticks: 300,
            measure_from: 100,
            objects: 128,
            capacity_units: 64,
            levels: vec![0.5, 0.9, 1.5, 2.0],
        }
    }

    /// CI smoke: two levels either side of saturation, shorter runs.
    pub fn smoke() -> Self {
        Self {
            ticks: 120,
            measure_from: 60,
            objects: 32,
            capacity_units: 64,
            levels: vec![0.5, 2.0],
        }
    }

    /// `BENCH_SCALE=smoke` selects the smoke sizing.
    pub fn from_env() -> Self {
        match std::env::var("BENCH_SCALE").as_deref() {
            Ok("smoke") => Self::smoke(),
            _ => Self::paper(),
        }
    }

    /// Requests per second at which offered work equals service capacity.
    pub fn saturation_rps(&self) -> f64 {
        let per_tick = f64::from(self.capacity_units) / average_cost_units();
        per_tick * (1.0 / TICK.as_secs_f64())
    }
}

/// One measured (config, load level, arrival kind) cell.
#[derive(Debug, Clone)]
pub struct TrafficRow {
    /// Front-door arm (`naive`, `breaker_only`, `full`).
    pub config: &'static str,
    /// Offered load as a multiple of saturation.
    pub load_x: f64,
    /// Arrival process label.
    pub arrivals: &'static str,
    /// Requests offered per second inside the measurement window.
    pub offered_rps: f64,
    /// Completions *within the SLO* per second inside the window.
    pub goodput_rps: f64,
    /// Requests served to a successful response in the window.
    pub served: u64,
    /// Served responses that met the SLO.
    pub good: u64,
    /// Latency quantiles of served responses (milliseconds).
    pub p50_ms: f64,
    /// 99th percentile latency (ms).
    pub p99_ms: f64,
    /// 99.9th percentile latency (ms).
    pub p999_ms: f64,
    /// Refused by the per-client rate limiter in the window.
    pub rate_limited: u64,
    /// Refused at the arrival-queue cap in the window.
    pub queue_full: u64,
    /// Shed past patience in the window.
    pub shed: u64,
    /// Backend failures (retries exhausted) in the window.
    pub failed: u64,
    /// Arrival-queue depth when the run ended.
    pub end_queue: usize,
}

/// Run one (config, level, arrival-kind) cell.
pub fn run_cell(
    config: StackConfig,
    load_x: f64,
    kind: ArrivalKind,
    scale: &TrafficScale,
) -> TrafficRow {
    let clock = Arc::new(VirtualClock::new());
    let service = Service::new(clock.clone(), config, scale.objects);
    let mean_rps = load_x * scale.saturation_rps();
    let mut arrivals = Arrivals::new(kind, SEED ^ (load_x.to_bits()), mean_rps);
    let mut mix = MixedWorkload::new(
        SEED.wrapping_add(load_x.to_bits()),
        CLIENT_POPULATION,
        scale.objects,
    );

    let window_start = TICK * u32::try_from(scale.measure_from).expect("ticks fit u32");
    let mut hist = Histogram::new();
    let mut offered = 0u64;
    let mut served = 0u64;
    let mut good = 0u64;
    let mut rate_limited = 0u64;
    let mut queue_full = 0u64;
    let mut shed = 0u64;
    let mut failed = 0u64;

    for tick in 0..scale.ticks {
        clock.advance(TICK);
        let now = clock.now();
        let in_window = tick >= scale.measure_from;
        for arrived in arrivals.drain_until(now) {
            let req = mix.next_request(arrived);
            if in_window {
                offered += 1;
            }
            match service.offer(req) {
                Ok(()) => {}
                Err(e) if in_window => match e {
                    ServiceError::RateLimited => rate_limited += 1,
                    ServiceError::QueueFull => queue_full += 1,
                    _ => failed += 1,
                },
                Err(_) => {}
            }
        }
        for done in service.run_tick(now, scale.capacity_units) {
            if done.finished < window_start {
                continue;
            }
            match done.outcome {
                Ok(()) => {
                    served += 1;
                    let latency = done.finished.saturating_sub(done.request.arrived);
                    hist.record(latency);
                    if latency <= SLO {
                        good += 1;
                    }
                }
                Err(ServiceError::Shed) => shed += 1,
                Err(_) => failed += 1,
            }
        }
    }

    let window_secs = TICK.as_secs_f64() * (scale.ticks - scale.measure_from) as f64;
    let ms = |d: Duration| d.as_secs_f64() * 1000.0;
    TrafficRow {
        config: config.name,
        load_x,
        arrivals: kind.label(),
        offered_rps: offered as f64 / window_secs,
        goodput_rps: good as f64 / window_secs,
        served,
        good,
        p50_ms: ms(hist.p50()),
        p99_ms: ms(hist.p99()),
        p999_ms: ms(hist.p999()),
        rate_limited,
        queue_full,
        shed,
        failed,
        end_queue: service.queue_depth(),
    }
}

/// The full ablation: three arms × every load level, plus a bursty cell
/// at nominal load for each arm.
pub fn traffic_sweep(scale: &TrafficScale) -> Vec<TrafficRow> {
    let configs = [
        StackConfig::naive(),
        StackConfig::breaker_only(),
        StackConfig::full(),
    ];
    let mut rows = Vec::new();
    for config in configs {
        for &level in &scale.levels {
            rows.push(run_cell(config, level, ArrivalKind::Poisson, scale));
        }
        rows.push(run_cell(config, 1.0, ArrivalKind::Bursty, scale));
    }
    rows
}

/// Render the sweep as `BENCH_traffic.json`.
pub fn render_traffic_json(rows: &[TrafficRow], scale: &TrafficScale) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"traffic_slo\",\n");
    out.push_str("  \"unit\": \"goodput_rps\",\n");
    out.push_str(&format!("  \"slo_ms\": {},\n", SLO.as_millis()));
    out.push_str(&format!("  \"tick_ms\": {},\n", TICK.as_millis()));
    out.push_str(&format!("  \"clients\": {CLIENT_POPULATION},\n"));
    out.push_str(&format!(
        "  \"saturation_rps\": {:.1},\n",
        scale.saturation_rps()
    ));
    out.push_str(&format!(
        "  \"window_ticks\": [{}, {}],\n",
        scale.measure_from, scale.ticks
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"config\": \"{}\", \"load_x\": {:.2}, \"arrivals\": \"{}\", \"offered_rps\": {:.1}, \"goodput_rps\": {:.1}, \"served\": {}, \"good\": {}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2}, \"p999_ms\": {:.2}, \"rate_limited\": {}, \"queue_full\": {}, \"shed\": {}, \"failed\": {}, \"end_queue\": {}}}{}\n",
            r.config,
            r.load_x,
            r.arrivals,
            r.offered_rps,
            r.goodput_rps,
            r.served,
            r.good,
            r.p50_ms,
            r.p99_ms,
            r.p999_ms,
            r.rate_limited,
            r.queue_full,
            r.shed,
            r.failed,
            r.end_queue,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Convenience used by `paper-eval bench-json` (`BENCH_SCALE` aware).
pub fn traffic_bench_json() -> String {
    let scale = TrafficScale::from_env();
    render_traffic_json(&traffic_sweep(&scale), &scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(config: StackConfig, load_x: f64) -> TrafficRow {
        run_cell(config, load_x, ArrivalKind::Poisson, &TrafficScale::smoke())
    }

    #[test]
    fn sub_saturation_meets_the_slo_on_every_arm() {
        for config in [
            StackConfig::naive(),
            StackConfig::breaker_only(),
            StackConfig::full(),
        ] {
            let row = cell(config, 0.5);
            assert!(
                row.p99_ms <= SLO.as_millis() as f64,
                "{}: p99 {}ms",
                row.config,
                row.p99_ms
            );
            assert!(
                row.goodput_rps >= 0.8 * row.offered_rps,
                "{}: goodput {} of offered {}",
                row.config,
                row.goodput_rps,
                row.offered_rps
            );
        }
    }

    #[test]
    fn full_plateaus_past_saturation_naive_collapses() {
        let full_sub = cell(StackConfig::full(), 0.5);
        let full_over = cell(StackConfig::full(), 2.0);
        let naive_sub = cell(StackConfig::naive(), 0.5);
        let naive_over = cell(StackConfig::naive(), 2.0);
        let breaker_over = cell(StackConfig::breaker_only(), 2.0);
        assert!(
            full_over.goodput_rps >= 0.5 * full_sub.goodput_rps,
            "full collapsed: {} vs {}",
            full_over.goodput_rps,
            full_sub.goodput_rps
        );
        assert!(
            naive_over.goodput_rps <= 0.15 * naive_sub.goodput_rps,
            "naive did not collapse: {} vs {}",
            naive_over.goodput_rps,
            naive_sub.goodput_rps
        );
        assert!(
            breaker_over.goodput_rps <= 0.15 * naive_sub.goodput_rps,
            "a breaker alone should not rescue overload: {}",
            breaker_over.goodput_rps
        );
        // The naive stack is still *busy* — it serves plenty, all late.
        assert!(naive_over.served > 0);
        assert!(naive_over.end_queue > full_over.end_queue);
    }

    #[test]
    fn same_seed_reproduces_identical_json() {
        let scale = TrafficScale::smoke();
        let a = render_traffic_json(&traffic_sweep(&scale), &scale);
        let b = render_traffic_json(&traffic_sweep(&scale), &scale);
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_json_is_well_formed() {
        let scale = TrafficScale::smoke();
        let json = render_traffic_json(&traffic_sweep(&scale), &scale);
        assert!(json.contains("\"traffic_slo\""));
        assert!(json.contains("\"full\""));
        assert!(json.contains("\"breaker_only\""));
        assert!(json.contains("\"naive\""));
        assert!(json.contains("\"bursty\""));
    }
}
