//! WAL format fuzzing: encode/decode round-trips exactly, and recovery's
//! decode never invents data — any truncation or single-byte corruption of
//! a valid stream yields a strict prefix of the original records.
//!
//! The group-commit properties drive the real `Wal` under
//! `WalSyncPolicy::GroupCommit`: a batch of streamed appends produces a
//! byte stream identical to reference framing (so every format property
//! above transfers to batched frames verbatim), one `ensure_durable` at
//! the batch's end LSN makes the whole group durable with a single sync,
//! and truncating the group's bytes anywhere still yields a record prefix.

use adhoc_sim::RealClock;
use adhoc_storage::wal::{crc32, decode_payload, decode_stream, encode_payload, Wal};
use adhoc_storage::{Value, WalRecord, WalSyncPolicy, WalTail, WalWrite};
use proptest::prelude::*;

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        (0usize..4, any::<u16>()).prop_map(|(len, salt)| {
            // Short strings incl. empty and multi-byte UTF-8.
            let alphabet = ["", "x", "payments", "état-à"];
            Value::Str(format!("{}{}", alphabet[len], salt % 7))
        }),
    ]
}

fn wal_write() -> impl Strategy<Value = WalWrite> {
    (
        0usize..3,
        any::<i64>(),
        prop_oneof![
            Just(None),
            proptest::collection::vec(value(), 0..5).prop_map(Some),
        ],
    )
        .prop_map(|(table, id, row)| WalWrite {
            table: ["orders", "payments", "t"][table].to_string(),
            id,
            row,
        })
}

fn wal_record() -> impl Strategy<Value = WalRecord> {
    (any::<u64>(), proptest::collection::vec(wal_write(), 0..6))
        .prop_map(|(commit_ts, writes)| WalRecord { commit_ts, writes })
}

/// Frame a record exactly the way `Wal::append` does:
/// `[payload_len: u32 LE][crc32: u32 LE][payload]`.
fn frame(record: &WalRecord, buf: &mut Vec<u8>) {
    let payload = encode_payload(record);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(&payload).to_le_bytes());
    buf.extend_from_slice(&payload);
}

fn assert_prefix(decoded: &[WalRecord], original: &[WalRecord]) {
    assert!(
        decoded.len() <= original.len(),
        "decoded more records than were written"
    );
    for (d, o) in decoded.iter().zip(original) {
        assert_eq!(d, o, "recovery must never alter a surviving record");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Payload serialization is lossless for every representable record.
    #[test]
    fn payload_roundtrip_is_exact(record in wal_record()) {
        let payload = encode_payload(&record);
        prop_assert_eq!(decode_payload(&payload), Some(record));
    }

    /// A whole stream of frames decodes back to exactly the records that
    /// were appended, with a clean tail.
    #[test]
    fn stream_roundtrip_is_exact(records in proptest::collection::vec(wal_record(), 0..8)) {
        let mut buf = Vec::new();
        for r in &records {
            frame(r, &mut buf);
        }
        let image = decode_stream(&buf);
        prop_assert_eq!(image.tail, WalTail::Clean);
        prop_assert_eq!(image.records, records);
    }

    /// Torn-tail rule: cutting the stream at ANY byte offset yields a
    /// prefix of the original records — intact frames before the cut all
    /// survive, nothing after the cut is ever (mis)decoded.
    #[test]
    fn truncation_at_any_offset_yields_a_record_prefix(
        records in proptest::collection::vec(wal_record(), 1..6),
        cut_frac in 0u32..=1000,
    ) {
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &records {
            frame(r, &mut buf);
            boundaries.push(buf.len());
        }
        let cut = (buf.len() as u64 * cut_frac as u64 / 1000) as usize;
        let image = decode_stream(&buf[..cut]);
        assert_prefix(&image.records, &records);
        // Exactly the frames wholly before the cut survive.
        let intact = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        prop_assert_eq!(image.records.len(), intact);
        if boundaries.contains(&cut) {
            prop_assert_eq!(image.tail, WalTail::Clean);
        } else {
            prop_assert_eq!(image.tail, WalTail::Torn { at: boundaries[intact] });
        }
    }

    /// Bit-rot rule: flipping ANY single byte of a valid stream still
    /// decodes to a prefix of the original records (CRC or framing stops
    /// the scan; later in-tact-looking bytes are never trusted).
    #[test]
    fn single_byte_corruption_yields_a_record_prefix(
        records in proptest::collection::vec(wal_record(), 1..5),
        pos_frac in 0u32..1000,
        flip in 1u8..=255,
    ) {
        let mut buf = Vec::new();
        for r in &records {
            frame(r, &mut buf);
        }
        let pos = (buf.len() as u64 * pos_frac as u64 / 1000) as usize % buf.len();
        buf[pos] ^= flip;
        let image = decode_stream(&buf);
        assert_prefix(&image.records, &records);
    }

    /// A group-commit batch — streamed appends with no inline sync, then
    /// one `ensure_durable` at the batch's end — produces byte-for-byte the
    /// reference framing, becomes durable as a whole with exactly one
    /// sync, and round-trips to exactly the appended records.
    #[test]
    fn group_commit_batch_roundtrips_with_one_sync(
        records in proptest::collection::vec(wal_record(), 1..8),
    ) {
        let wal = Wal::new(WalSyncPolicy::GroupCommit, RealClock::shared());
        let mut end = 0;
        for r in &records {
            let a = wal.append_streamed(r.commit_ts, |enc| {
                for w in &r.writes {
                    enc.write(&w.table, w.id, w.row.as_deref());
                }
            });
            prop_assert!(!a.durable, "GroupCommit must never sync inline");
            end = a.end;
        }
        prop_assert_eq!(wal.stats().syncs, 0);
        prop_assert_eq!(wal.durable_bytes().len(), 0);
        wal.ensure_durable(end);
        prop_assert_eq!(wal.stats().syncs, 1, "one leader sync per batch");
        let mut reference = Vec::new();
        for r in &records {
            frame(r, &mut reference);
        }
        prop_assert_eq!(wal.durable_bytes(), reference);
        let image = decode_stream(&wal.durable_bytes());
        prop_assert_eq!(image.tail, WalTail::Clean);
        prop_assert_eq!(image.records, records);
    }

    /// Truncating a group-commit batch's bytes at ANY offset still yields
    /// a record prefix — a crash mid-group loses a suffix of the batch,
    /// never a middle record and never garbage.
    #[test]
    fn group_commit_truncation_is_a_batch_record_prefix(
        records in proptest::collection::vec(wal_record(), 1..6),
        cut_frac in 0u32..=1000,
    ) {
        let wal = Wal::new(WalSyncPolicy::GroupCommit, RealClock::shared());
        for r in &records {
            wal.append_streamed(r.commit_ts, |enc| {
                for w in &r.writes {
                    enc.write(&w.table, w.id, w.row.as_deref());
                }
            });
        }
        let buf = wal.all_bytes();
        let cut = (buf.len() as u64 * cut_frac as u64 / 1000) as usize;
        let image = decode_stream(&buf[..cut]);
        assert_prefix(&image.records, &records);
    }
}
