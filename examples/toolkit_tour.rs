//! The §6 tour: every development-support facility the paper argues
//! ecosystems should provide, driven end to end on one small shop.
//!
//! 1. Coordination hints (Table 7) — a user lock replacing a hand-rolled
//!    lock, and a per-operation isolation hint taking dashboard reads out
//!    of serializable certification.
//! 2. The deadlock watchdog — restoring the engine's victim-abort contract
//!    to application locks (§3.3.1 / Finding 5).
//! 3. OCC continuations — a multi-request edit without holding anything.
//! 4. A saga — the §3.1.2 alternative, with compensation on failure.
//! 5. The consistency checker — the "fsck" style periodic repair (§3.4.2).
//!
//! Run with `cargo run --example toolkit_tour`.

use adhoc_transactions::core::checker::{column_invariant, ConsistencyChecker};
use adhoc_transactions::core::hints::HintProxy;
use adhoc_transactions::core::locks::{AdHocLock, LockError, WatchdogLock};
use adhoc_transactions::core::optimistic::{ContinuationStore, OptimisticTransaction};
use adhoc_transactions::core::saga::{Saga, SagaOutcome};
use adhoc_transactions::core::validation::CommitOutcome;
use adhoc_transactions::orm::{EntityDef, Orm, Registry};
use adhoc_transactions::storage::{
    Column, ColumnType, Database, EngineProfile, IsolationLevel, Predicate, Schema,
};
use std::sync::Arc;

fn shop() -> (Database, Orm) {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    db.create_table(
        Schema::new(
            "items",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("stock", ColumnType::Int),
                Column::new("price", ColumnType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        Schema::new(
            "ledger",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("amount", ColumnType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    let orm = Orm::new(
        db.clone(),
        Registry::new()
            .register(EntityDef::new("items"))
            .register(EntityDef::new("ledger")),
    );
    orm.create(
        "items",
        &[("id", 1.into()), ("stock", 10.into()), ("price", 25.into())],
    )
    .unwrap();
    (db, orm)
}

fn main() {
    let (db, orm) = shop();

    // -----------------------------------------------------------------
    println!("1. Coordination hints (Table 7)");
    let proxy = HintProxy::new(db.clone());
    // A user lock stands in for any hand-rolled SETNX/synchronized lock.
    let guard = proxy.user_lock("restock:item=1").expect("user lock");
    orm.transaction(|t| {
        t.raw().update("items", 1, &[("stock", 12.into())])?;
        Ok(())
    })
    .expect("restock");
    guard.unlock().expect("unlock");
    // Per-op isolation: inside a serializable transaction, read the price
    // board at Read Committed so it never drags us into certification.
    db.run(IsolationLevel::Serializable, |t| {
        let latest = proxy
            .read_committed_read(t, "items", 1)
            .expect("hint supported")
            .expect("row");
        let schema = db.schema("items")?;
        println!(
            "   user lock held + dashboard read at RC saw stock = {}",
            latest.get_int(&schema, "stock")?
        );
        Ok(())
    })
    .expect("hinted txn");

    // -----------------------------------------------------------------
    println!("2. Deadlock watchdog (§3.3.1 / Finding 5)");
    let lock = Arc::new(WatchdogLock::new());
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let victims: usize = std::thread::scope(|s| {
        [("item:1", "item:2"), ("item:2", "item:1")]
            .into_iter()
            .map(|(a, b)| {
                let lock = Arc::clone(&lock);
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    let g1 = lock.lock(a).unwrap();
                    barrier.wait();
                    // The winner's second guard (and both firsts) release
                    // on drop; the loser gets the deadlock verdict.
                    let victim = matches!(lock.lock(b), Err(LockError::Deadlock { .. }));
                    drop(g1);
                    victim as usize
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    println!("   opposite-order acquisition: {victims} victim aborted instantly, no stall");

    // -----------------------------------------------------------------
    println!("3. OCC continuation across requests (§6)");
    let store = ContinuationStore::new();
    let mut txn = OptimisticTransaction::new();
    txn.read(&orm, "items", 1).expect("request 1 read");
    let tid = store.save(txn);
    // ... the user thinks; nothing is locked ...
    let mut txn = store.restore(tid).expect("request 2 restore");
    txn.write("items", 1, &[("price", 30.into())]);
    let outcome = txn.commit(&orm).expect("commit");
    println!("   price edit across two requests: {outcome:?}");
    assert_eq!(outcome, CommitOutcome::Committed);

    // -----------------------------------------------------------------
    println!("4. Saga with compensation (§3.1.2)");
    let saga = Saga::new()
        .step(
            "reserve",
            |t| {
                t.find_for_update("items", 1)?;
                let stock = t.find_required("items", 1)?.get_int("stock")?;
                t.raw()
                    .update("items", 1, &[("stock", (stock - 1).into())])?;
                Ok(())
            },
            |t| {
                t.find_for_update("items", 1)?;
                let stock = t.find_required("items", 1)?.get_int("stock")?;
                t.raw()
                    .update("items", 1, &[("stock", (stock + 1).into())])?;
                Ok(())
            },
        )
        .step(
            "charge",
            |t| {
                // Fails: ledger row 99 does not exist (gateway refused).
                t.find_required("ledger", 99)?;
                Ok(())
            },
            |_| Ok(()),
        );
    match saga.run(&orm).expect("saga engine") {
        SagaOutcome::Compensated {
            failed_step,
            compensated,
        } => println!("   '{failed_step}' failed; compensated {compensated:?} — stock restored"),
        other => panic!("expected compensation, got {other:?}"),
    }
    assert_eq!(
        orm.find_required("items", 1)
            .unwrap()
            .get_int("stock")
            .unwrap(),
        12
    );

    // -----------------------------------------------------------------
    println!("5. Consistency checker (§3.4.2)");
    // Corrupt the shop the way a crashed ad hoc transaction would.
    orm.transaction(|t| {
        t.raw().update("items", 1, &[("stock", (-3).into())])?;
        Ok(())
    })
    .expect("inject");
    let checker = ConsistencyChecker::new().rule(column_invariant(
        "items",
        "stock-non-negative",
        Predicate::ge("stock", 0),
        "stock must be >= 0",
    ));
    let report = checker.run(&db);
    println!(
        "   checker found {} violation(s): {}",
        report.violations.len(),
        report.violations[0].message
    );
    assert!(!report.is_clean());

    println!("\nToolkit tour complete.");
}
