//! Escrow reservations: coordination-avoiding enforcement of budget
//! invariants (`stock >= 0`, `redeemed <= max`).
//!
//! The invariant `column >= 0` is not invariant-confluent — two
//! uncoordinated decrements can jointly overdraw a budget that either
//! alone would respect — but it admits *escrow*: split the committed
//! budget into local reservations granted off one atomic counter, and
//! only serialize contenders when the remaining budget is nearly
//! exhausted. The fast path is a single `fetch_sub`; no record lock, no
//! read-validate-write, no abort/retry loop.
//!
//! The ledger is volatile server memory (like the lock table): a crash
//! forgets every outstanding reservation, and entries lazily re-init
//! from the committed column value. Committed state is only ever moved
//! by the reservation's transaction (a commutative delta, see
//! [`Transaction::add_delta`](crate::txn::Transaction::add_delta)), so
//! crash recovery needs no escrow-specific repair.
//!
//! Discipline (enforced by convention, checked by the confluence
//! oracle): an escrow-managed column is decremented only through
//! [`Database::escrow_reserve`] + [`EscrowReservation::confirm`], and
//! incremented only through [`Database::escrow_deposit`]. Writes that
//! bypass the ledger desynchronize `available` from the committed value
//! until the next restart.

use crate::db::Database;
use crate::error::DbError;
use crate::fasthash::FastMap;
use crate::value::ColumnType;
use crate::Result;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// `(table_id, row_id, column_index)` — one escrow-managed cell.
type EscrowKey = (usize, i64, usize);

/// Per-cell escrow state.
struct EscrowEntry {
    /// Remaining budget: committed column value minus outstanding
    /// reservations. Granting a reservation is one lock-free
    /// `fetch_sub`; releasing is one `fetch_add`.
    available: AtomicI64,
    /// The escalation point: a reservation that finds the fast path
    /// overdrawn serializes here, so contenders racing over the last few
    /// units coordinate instead of live-locking each other — the
    /// "coordinate only near exhaustion" half of the escrow bargain.
    slow: Mutex<()>,
}

/// The per-database escrow ledger: lazily populated, cleared on crash
/// and reset (reservations are volatile intents, never durable state).
#[derive(Default)]
pub(crate) struct EscrowLedger {
    entries: Mutex<FastMap<EscrowKey, Arc<EscrowEntry>>>,
}

impl EscrowLedger {
    /// Forget every entry and outstanding reservation (crash/reset):
    /// entries re-init from committed state on next use. Guards still
    /// holding an `Arc` to a detached entry settle against it harmlessly.
    pub(crate) fn clear(&self) {
        self.entries.lock().clear();
    }
}

/// A granted escrow reservation of `amount` units of one budget column.
///
/// Lifecycle: hold it across the transaction that consumes the budget
/// (which must stage `add_delta(column, -amount)`), then settle it:
///
/// * [`confirm`](Self::confirm) after the transaction commits — the
///   budget is permanently consumed, `available` already reflects it.
/// * drop (or [`release`](Self::release)) when the transaction aborts —
///   the reserved units return to the budget.
/// * [`abandon`](Self::abandon) when the commit outcome is *ambiguous*
///   (`ConnectionLost`, §3.4.2): the units are conservatively treated as
///   consumed. The budget may undersell until the next restart re-derives
///   the ledger, but can never oversell.
#[derive(Debug)]
pub struct EscrowReservation {
    entry: Arc<EscrowEntry>,
    table: String,
    column: String,
    id: i64,
    amount: i64,
    settled: bool,
}

impl std::fmt::Debug for EscrowEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EscrowEntry")
            .field("available", &self.available.load(Ordering::Relaxed))
            .finish()
    }
}

impl EscrowReservation {
    /// The reserved amount.
    pub fn amount(&self) -> i64 {
        self.amount
    }

    /// The table the reservation draws from.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The budget column.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// The reserved row.
    pub fn id(&self) -> i64 {
        self.id
    }

    /// Settle after the consuming transaction committed: the units are
    /// gone from the committed value and from the outstanding set at
    /// once, so `available` is untouched.
    pub fn confirm(mut self) {
        self.settled = true;
    }

    /// Settle after the consuming transaction *aborted*: return the
    /// units to the budget. Dropping the guard does the same.
    pub fn release(self) {
        drop(self);
    }

    /// Settle an *ambiguous* outcome (the §3.4.2 lost-commit-ack): the
    /// commit may or may not be durable, so the units are conservatively
    /// kept out of the budget. Never oversells; a restart re-derives the
    /// true budget from committed state.
    pub fn abandon(mut self) {
        self.settled = true;
    }
}

impl Drop for EscrowReservation {
    fn drop(&mut self) {
        if !self.settled {
            self.entry
                .available
                .fetch_add(self.amount, Ordering::AcqRel);
        }
    }
}

impl Database {
    /// Resolve (or lazily initialize) the escrow entry for one cell. The
    /// first use reads the committed column value under the row's shard
    /// lock while holding the ledger lock, so no deposit or reservation
    /// can interleave with initialization (both resolve the entry first).
    fn escrow_entry(
        &self,
        table: &str,
        id: i64,
        column: &str,
    ) -> Result<(Arc<EscrowEntry>, usize)> {
        let t = self.resolve_table(table)?;
        let col = t.schema.column_index(column)?;
        if t.schema.columns[col].ty != ColumnType::Int {
            return Err(DbError::TypeMismatch {
                table: table.to_string(),
                column: column.to_string(),
                expected: ColumnType::Int,
                found: Some(t.schema.columns[col].ty),
            });
        }
        let key = (t.id, id, col);
        let mut entries = self.inner.escrow.entries.lock();
        if let Some(entry) = entries.get(&key) {
            return Ok((Arc::clone(entry), col));
        }
        let committed = self.with_chain(t.id, id, |c| {
            c.and_then(|c| c.latest()).map(|row| row.at(col).as_int())
        });
        let Some(committed) = committed else {
            return Err(DbError::NoSuchRow {
                table: table.to_string(),
                id,
            });
        };
        let entry = Arc::new(EscrowEntry {
            available: AtomicI64::new(committed),
            slow: Mutex::new(()),
        });
        entries.insert(key, Arc::clone(&entry));
        Ok((entry, col))
    }

    /// Reserve `amount` units of the budget column `table.column` on row
    /// `id`, without taking any record lock or read footprint. Fast path:
    /// one atomic `fetch_sub`. When the budget is nearly exhausted the
    /// request escalates to the entry's slow path (serializing
    /// contenders) and retries once; a budget still short of `amount`
    /// fails with [`DbError::EscrowExhausted`].
    ///
    /// The caller's consuming transaction must stage the matching
    /// `add_delta(column, -amount)` and settle the guard per its commit
    /// outcome (see [`EscrowReservation`]).
    pub fn escrow_reserve(
        &self,
        table: &str,
        id: i64,
        column: &str,
        amount: i64,
    ) -> Result<EscrowReservation> {
        assert!(amount >= 0, "escrow reservations are non-negative");
        let (entry, _) = self.escrow_entry(table, id, column)?;
        let grant = |entry: &EscrowEntry| {
            let prev = entry.available.fetch_sub(amount, Ordering::AcqRel);
            if prev >= amount {
                true
            } else {
                entry.available.fetch_add(amount, Ordering::AcqRel);
                false
            }
        };
        if !grant(&entry) {
            // Escalate: serialize near-exhaustion contenders, then make
            // one coordinated final attempt.
            let _slow = entry.slow.lock();
            if !grant(&entry) {
                let available = entry.available.load(Ordering::Acquire);
                return Err(DbError::EscrowExhausted {
                    table: table.to_string(),
                    column: column.to_string(),
                    id,
                    requested: amount,
                    available,
                });
            }
        }
        Ok(EscrowReservation {
            entry,
            table: table.to_string(),
            column: column.to_string(),
            id,
            amount,
            settled: false,
        })
    }

    /// Deposit `amount` units into an escrow-managed budget column: one
    /// committed commutative delta plus the matching ledger credit. The
    /// entry is resolved *before* the transaction commits, so the credit
    /// is never double-counted against a lazy initialization.
    pub fn escrow_deposit(&self, table: &str, id: i64, column: &str, amount: i64) -> Result<()> {
        assert!(amount >= 0, "escrow deposits are non-negative");
        let (entry, _) = self.escrow_entry(table, id, column)?;
        self.run(crate::engine::IsolationLevel::ReadCommitted, |t| {
            t.add_delta(table, id, column, amount)
        })?;
        entry.available.fetch_add(amount, Ordering::AcqRel);
        Ok(())
    }

    /// The remaining budget of an escrow cell (committed value minus
    /// outstanding reservations), initializing the entry if needed.
    /// Oracle/introspection use.
    pub fn escrow_available(&self, table: &str, id: i64, column: &str) -> Result<i64> {
        let (entry, _) = self.escrow_entry(table, id, column)?;
        Ok(entry.available.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineProfile, IsolationLevel};
    use crate::schema::{Column, Schema};

    fn fixture(stock: i64) -> Database {
        let db = Database::in_memory(EngineProfile::PostgresLike);
        db.create_table(
            Schema::new(
                "stocks",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("qty", ColumnType::Int),
                ],
                "id",
            )
            .unwrap(),
        )
        .unwrap();
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.insert("stocks", &[("id", 1.into()), ("qty", stock.into())])
        })
        .unwrap();
        db
    }

    #[test]
    fn reserve_confirm_consumes_budget_exactly_once() {
        let db = fixture(10);
        let r = db.escrow_reserve("stocks", 1, "qty", 4).unwrap();
        assert_eq!(db.escrow_available("stocks", 1, "qty").unwrap(), 6);
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.add_delta("stocks", 1, "qty", -4)
        })
        .unwrap();
        r.confirm();
        assert_eq!(db.escrow_available("stocks", 1, "qty").unwrap(), 6);
        let committed = db.latest_committed("stocks", 1).unwrap().unwrap();
        assert_eq!(committed.values[1].as_int(), 6);
    }

    #[test]
    fn dropped_reservation_returns_units() {
        let db = fixture(5);
        {
            let _r = db.escrow_reserve("stocks", 1, "qty", 5).unwrap();
            assert_eq!(db.escrow_available("stocks", 1, "qty").unwrap(), 0);
        }
        assert_eq!(db.escrow_available("stocks", 1, "qty").unwrap(), 5);
    }

    #[test]
    fn exhaustion_fails_and_never_overdraws() {
        let db = fixture(3);
        let _a = db.escrow_reserve("stocks", 1, "qty", 2).unwrap();
        let err = db.escrow_reserve("stocks", 1, "qty", 2).unwrap_err();
        match err {
            DbError::EscrowExhausted {
                requested,
                available,
                ..
            } => {
                assert_eq!(requested, 2);
                assert_eq!(available, 1);
            }
            other => panic!("expected EscrowExhausted, got {other}"),
        }
        assert_eq!(db.escrow_available("stocks", 1, "qty").unwrap(), 1);
    }

    #[test]
    fn abandon_is_conservative_and_restart_rederives() {
        let db = fixture(10);
        let r = db.escrow_reserve("stocks", 1, "qty", 3).unwrap();
        // Ambiguous outcome: the delta never committed, but the client
        // cannot know that — abandon keeps the units out of the budget.
        r.abandon();
        assert_eq!(db.escrow_available("stocks", 1, "qty").unwrap(), 7);
        // A restart forgets the ledger and re-derives from committed state.
        db.simulate_crash();
        assert_eq!(db.escrow_available("stocks", 1, "qty").unwrap(), 10);
    }

    #[test]
    fn deposit_credits_ledger_and_committed_state() {
        let db = fixture(1);
        let _hold = db.escrow_reserve("stocks", 1, "qty", 1).unwrap();
        db.escrow_deposit("stocks", 1, "qty", 4).unwrap();
        assert_eq!(db.escrow_available("stocks", 1, "qty").unwrap(), 4);
        let committed = db.latest_committed("stocks", 1).unwrap().unwrap();
        assert_eq!(committed.values[1].as_int(), 5);
    }

    #[test]
    fn concurrent_reservations_never_oversell() {
        let db = fixture(100);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let db = db.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        match db.escrow_reserve("stocks", 1, "qty", 1) {
                            Ok(r) => {
                                db.run(IsolationLevel::ReadCommitted, |t| {
                                    t.add_delta("stocks", 1, "qty", -1)
                                })
                                .unwrap();
                                r.confirm();
                            }
                            Err(DbError::EscrowExhausted { .. }) => {}
                            Err(e) => panic!("reserve: {e}"),
                        }
                    }
                });
            }
        });
        let committed = db.latest_committed("stocks", 1).unwrap().unwrap();
        // 400 attempts against a budget of 100: exactly 100 succeed.
        assert_eq!(committed.values[1].as_int(), 0);
        assert_eq!(db.escrow_available("stocks", 1, "qty").unwrap(), 0);
    }
}
