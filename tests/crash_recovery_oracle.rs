//! Crash-recovery oracle: every app, every commit-adjacent crash point.
//!
//! The tentpole harness for the durability subsystem. For each of the
//! eight studied applications it runs a small WAL-backed workload and
//! crashes it at *every* commit-adjacent fault point, under every
//! crash-shaped fault kind:
//!
//! * `CommitFailed` — the commit never takes effect (clean rollback);
//! * `CrashAfterDurable` — the commit is durable but unacknowledged
//!   (§3.4.2's ambiguity);
//! * `CrashBeforeDurable` — the commit reached the page cache only;
//! * `TornWrite` — the crash tears the commit's log record in half.
//!
//! After each crash the engine is restarted: a fresh database, schema
//! setup, WAL replay ([`restart_from`]), then the app's
//! `recover_on_boot` boot-fsck pass. The oracle asserts:
//!
//! 1. **Durability** — every operation acknowledged before the crash is
//!    visible in the recovered database.
//! 2. **Atomicity + domain invariants** — after boot recovery, each
//!    app's own consistency checks hold, and its fsck detection pass is
//!    clean.
//! 3. **Serviceability** — the restarted process can resume the
//!    workload from the crashed operation without breaking invariants.
//!
//! The paper's stuck-partial-state bugs (Spree's `processing` payment,
//! Discourse's counters, JumpServer's unaudited rotation, Broadleaf's
//! cart total) surface as *named findings* — boot-fsck repairs with a
//! known rule name — and every point is replayable: set
//! `CRASH_ORACLE=app/kind/k` (e.g. `spree/crash-after-durable/3`) to
//! re-run one crash point in isolation.

use adhoc_transactions::apps::{
    broadleaf, discourse, jumpserver, mastodon, redmine, saleor, scm_suite, spree, Mode,
};
use adhoc_transactions::core::checker::Report;
use adhoc_transactions::core::locks::MemLock;
use adhoc_transactions::kv::{Client, Store};
use adhoc_transactions::sim::{
    FaultKind, FaultPlan, FaultRule, LatencyModel, OpClass, VirtualClock,
};
use adhoc_transactions::storage::{restart_from, Database, DbConfig, EngineProfile};
use std::sync::Arc;

const SEED: u64 = 0x5157_4d0d_2022_0612;

const CRASH_KINDS: &[FaultKind] = &[
    FaultKind::CommitFailed,
    FaultKind::CrashAfterDurable,
    FaultKind::CrashBeforeDurable,
    FaultKind::TornWrite,
];

fn wal_db() -> Database {
    Database::new(DbConfig::in_memory(EngineProfile::PostgresLike).with_wal())
}

/// One app's oracle hooks, bound to a concrete database instance.
struct Driver {
    /// Workload steps. `Ok(true)` = acknowledged with effect, `Ok(false)`
    /// = acknowledged no-op, `Err` = the injected crash surfaced.
    ops: Vec<Box<dyn Fn() -> Result<bool, String>>>,
    /// Is the durable effect of (acknowledged, effectful) op `i` present?
    visible: Box<dyn Fn(usize) -> bool>,
    /// Domain invariant names violated right now. `after_resume` relaxes
    /// checks that a legitimate at-least-once retry is allowed to move
    /// (e.g. exact conservation totals).
    invariants: Box<dyn Fn(bool) -> Vec<String>>,
    /// The app's boot-fsck pass in fix mode.
    recover: Box<dyn Fn() -> Report>,
}

/// Build an app's tables (+ optionally its seed data) on `db` and return
/// its oracle driver. Restarted databases are built with `seed = false`:
/// their rows come from WAL replay, not from re-seeding.
type Case = fn(&Database, bool) -> Driver;

fn int_field(db: &Database, table: &str, id: i64, col: &str) -> Option<i64> {
    let schema = db.schema(table).ok()?;
    db.latest_committed(table, id)
        .ok()?
        .and_then(|row| row.get_int(&schema, col).ok())
}

fn rows_where(db: &Database, table: &str, col: &str, val: i64) -> usize {
    let Ok(schema) = db.schema(table) else {
        return 0;
    };
    let Ok(rows) = db.dump_table(table) else {
        return 0;
    };
    rows.iter()
        .filter(|(_, row)| row.get_int(&schema, col).ok() == Some(val))
        .count()
}

fn fail(name: &str, violations: Vec<String>) -> Vec<String> {
    violations
        .into_iter()
        .map(|v| format!("{name}: {v}"))
        .collect()
}

// ---------------------------------------------------------------------------
// Per-app cases.
// ---------------------------------------------------------------------------

fn spree_case_in(db: &Database, seed: bool, mode: Mode) -> Driver {
    let orm = spree::setup(db).unwrap();
    let app = Arc::new(spree::Spree::new(orm, Arc::new(MemLock::new()), mode));
    if seed {
        app.seed_order(1).unwrap();
        app.seed_order(2).unwrap();
    }
    let db = db.clone();
    let (a, b, c) = (app.clone(), app.clone(), app.clone());
    Driver {
        ops: vec![
            Box::new(move || a.add_payment(1).map_err(|e| format!("{e:?}"))),
            Box::new(move || b.process_payment(1, false).map_err(|e| format!("{e:?}"))),
            Box::new(move || c.add_payment(2).map_err(|e| format!("{e:?}"))),
        ],
        visible: Box::new({
            let db = db.clone();
            move |i| match i {
                0 => rows_where(&db, "payments", "order_id", 1) >= 1,
                1 => {
                    let Ok(rows) = db.dump_table("payments") else {
                        return false;
                    };
                    let schema = db.schema("payments").unwrap();
                    rows.iter().any(|(_, r)| {
                        r.get_int(&schema, "order_id").ok() == Some(1)
                            && r.get_str(&schema, "state").ok().as_deref() == Some("completed")
                    })
                }
                _ => rows_where(&db, "payments", "order_id", 2) >= 1,
            }
        }),
        invariants: Box::new({
            let (app, db) = (app.clone(), db.clone());
            move |_| {
                let mut v = Vec::new();
                for order in [1, 2] {
                    if !app.one_payment_per_order(order).unwrap() {
                        v.push(format!("one_payment_per_order({order})"));
                    }
                }
                v.extend(fail(
                    "fsck",
                    spree::boot_fsck()
                        .check(&db)
                        .violations
                        .iter()
                        .map(|x| x.to_string())
                        .collect(),
                ));
                v
            }
        }),
        recover: Box::new(move || app.recover_on_boot()),
    }
}

fn spree_case(db: &Database, seed: bool) -> Driver {
    spree_case_in(db, seed, Mode::AdHoc)
}

fn spree_cured_case(db: &Database, seed: bool) -> Driver {
    spree_case_in(db, seed, Mode::Cured)
}

fn broadleaf_case_in(db: &Database, seed: bool, mode: Mode) -> Driver {
    let orm = broadleaf::setup(db).unwrap();
    let app = Arc::new(broadleaf::Broadleaf::new(
        orm,
        Arc::new(MemLock::new()),
        mode,
    ));
    if seed {
        app.seed_cart(1).unwrap();
        app.seed_sku(1, 100).unwrap();
    }
    let db = db.clone();
    let (a, b, c) = (app.clone(), app.clone(), app.clone());
    let price_row = {
        let db = db.clone();
        move |price: i64| {
            let Ok(schema) = db.schema("items") else {
                return false;
            };
            let Ok(rows) = db.dump_table("items") else {
                return false;
            };
            rows.iter().any(|(_, r)| {
                r.get_int(&schema, "cart_id").ok() == Some(1)
                    && r.get_int(&schema, "price").ok() == Some(price)
            })
        }
    };
    Driver {
        ops: vec![
            Box::new(move || {
                a.add_to_cart(1, 7, 2)
                    .map(|_| true)
                    .map_err(|e| format!("{e:?}"))
            }),
            Box::new(move || {
                b.add_to_cart(1, 5, 3)
                    .map(|_| true)
                    .map_err(|e| format!("{e:?}"))
            }),
            Box::new(move || c.check_out(1, 4).map_err(|e| format!("{e:?}"))),
        ],
        visible: Box::new({
            let db = db.clone();
            move |i| match i {
                0 => price_row(7),
                1 => price_row(5),
                _ => int_field(&db, "skus", 1, "sold") == Some(4),
            }
        }),
        invariants: Box::new({
            let (app, db) = (app.clone(), db.clone());
            move |_| {
                let mut v = Vec::new();
                if !app.cart_total_consistent(1).unwrap() {
                    v.push("cart_total_consistent(1)".into());
                }
                if !app.sku_conserved(1, 100).unwrap() {
                    v.push("sku_conserved(1)".into());
                }
                v.extend(fail(
                    "fsck",
                    broadleaf::boot_fsck()
                        .check(&db)
                        .violations
                        .iter()
                        .map(|x| x.to_string())
                        .collect(),
                ));
                v
            }
        }),
        recover: Box::new(move || app.recover_on_boot()),
    }
}

fn broadleaf_case(db: &Database, seed: bool) -> Driver {
    broadleaf_case_in(db, seed, Mode::AdHoc)
}

fn broadleaf_cured_case(db: &Database, seed: bool) -> Driver {
    broadleaf_case_in(db, seed, Mode::Cured)
}

fn discourse_case_in(db: &Database, seed: bool, mode: Mode) -> Driver {
    let orm = discourse::setup(db).unwrap();
    let app = Arc::new(discourse::Discourse::new(
        orm,
        Arc::new(MemLock::new()),
        mode,
    ));
    if seed {
        app.seed_topic(1).unwrap();
    }
    let db = db.clone();
    let (a, b, c) = (app.clone(), app.clone(), app.clone());
    Driver {
        ops: vec![
            Box::new(move || {
                a.create_post(1, "first")
                    .map(|_| true)
                    .map_err(|e| format!("{e:?}"))
            }),
            Box::new(move || {
                b.create_post(1, "second")
                    .map(|_| true)
                    .map_err(|e| format!("{e:?}"))
            }),
            Box::new(move || c.like_post(1).map(|_| true).map_err(|e| format!("{e:?}"))),
        ],
        visible: Box::new({
            let db = db.clone();
            move |i| match i {
                0 => rows_where(&db, "posts", "topic_id", 1) >= 1,
                1 => rows_where(&db, "posts", "topic_id", 1) >= 2,
                _ => int_field(&db, "posts", 1, "like_cnt") == Some(1),
            }
        }),
        invariants: Box::new({
            let (app, db) = (app.clone(), db.clone());
            move |_| {
                let mut v = Vec::new();
                if !app.topic_posts_consistent(1).unwrap() {
                    v.push("topic_posts_consistent(1)".into());
                }
                if !app.likes_consistent(1).unwrap() {
                    v.push("likes_consistent(1)".into());
                }
                v.extend(fail(
                    "fsck",
                    discourse::boot_fsck()
                        .check(&db)
                        .violations
                        .iter()
                        .map(|x| x.to_string())
                        .collect(),
                ));
                v
            }
        }),
        recover: Box::new(move || app.recover_on_boot()),
    }
}

fn discourse_case(db: &Database, seed: bool) -> Driver {
    discourse_case_in(db, seed, Mode::AdHoc)
}

fn discourse_cured_case(db: &Database, seed: bool) -> Driver {
    discourse_case_in(db, seed, Mode::Cured)
}

fn mastodon_case_in(db: &Database, seed: bool, mode: Mode) -> Driver {
    let orm = mastodon::setup(db).unwrap();
    let kv = Client::new(
        Store::new(),
        Arc::new(VirtualClock::new()),
        LatencyModel::zero(),
    );
    let app = Arc::new(mastodon::Mastodon::new(
        orm,
        kv,
        Arc::new(MemLock::new()),
        mode,
    ));
    if seed {
        app.seed_invite(1, 5).unwrap();
    }
    let db = db.clone();
    let (a, b, c) = (app.clone(), app.clone(), app.clone());
    Driver {
        ops: vec![
            Box::new(move || a.redeem_invite(1).map_err(|e| format!("{e:?}"))),
            // The *checked* variant re-reads the table, so an ambiguous
            // crash plus retry stays duplicate-free (contrast with the
            // volatile-marker finding test below).
            Box::new(move || {
                b.notify_unchecked(7, "follow")
                    .map_err(|e| format!("{e:?}"))
            }),
            Box::new(move || c.redeem_invite(1).map_err(|e| format!("{e:?}"))),
        ],
        visible: Box::new({
            let db = db.clone();
            move |i| match i {
                0 => int_field(&db, "invites", 1, "redeems") >= Some(1),
                1 => rows_where(&db, "notifications", "user_id", 7) == 1,
                _ => int_field(&db, "invites", 1, "redeems") == Some(2),
            }
        }),
        invariants: Box::new({
            let (app, db) = (app.clone(), db.clone());
            move |_| {
                let mut v = Vec::new();
                if !app.invite_within_limit(1).unwrap() {
                    v.push("invite_within_limit(1)".into());
                }
                if !app.notifications_unique(7).unwrap() {
                    v.push("notifications_unique(7)".into());
                }
                v.extend(fail(
                    "fsck",
                    mastodon::boot_fsck()
                        .check(&db)
                        .violations
                        .iter()
                        .map(|x| x.to_string())
                        .collect(),
                ));
                v
            }
        }),
        recover: Box::new(move || app.recover_on_boot()),
    }
}

fn mastodon_case(db: &Database, seed: bool) -> Driver {
    mastodon_case_in(db, seed, Mode::AdHoc)
}

fn mastodon_cured_case(db: &Database, seed: bool) -> Driver {
    mastodon_case_in(db, seed, Mode::Cured)
}

fn jumpserver_case_in(db: &Database, seed: bool, mode: Mode) -> Driver {
    let orm = jumpserver::setup(db).unwrap();
    let app = Arc::new(jumpserver::JumpServer::new(
        orm,
        Arc::new(MemLock::new()),
        mode,
    ));
    if seed {
        app.seed_credential(1, "s0").unwrap();
    }
    let db = db.clone();
    let (a, b) = (app.clone(), app.clone());
    Driver {
        ops: vec![
            // The split anti-pattern: credential bump and audit row in
            // separate commits — the crash between them is the finding.
            // The cured variant pairs them in one transaction, so its
            // sweep has nothing for boot-fsck to backfill.
            Box::new(move || {
                if mode == Mode::Cured {
                    a.rotate_credential(1, "s1")
                        .map(|_| true)
                        .map_err(|e| format!("{e:?}"))
                } else {
                    a.rotate_credential_split(1, "s1", false)
                        .map(|_| true)
                        .map_err(|e| format!("{e:?}"))
                }
            }),
            Box::new(move || {
                b.rotate_credential(1, "s2")
                    .map(|_| true)
                    .map_err(|e| format!("{e:?}"))
            }),
        ],
        visible: Box::new({
            let db = db.clone();
            move |i| match i {
                0 => int_field(&db, "credentials", 1, "version") >= Some(1),
                _ => int_field(&db, "credentials", 1, "version") == Some(2),
            }
        }),
        invariants: Box::new({
            let (app, db) = (app.clone(), db.clone());
            move |_| {
                let mut v = Vec::new();
                if !app.rotations_audited(1).unwrap() {
                    v.push("rotations_audited(1)".into());
                }
                v.extend(fail(
                    "fsck",
                    jumpserver::boot_fsck()
                        .check(&db)
                        .violations
                        .iter()
                        .map(|x| x.to_string())
                        .collect(),
                ));
                v
            }
        }),
        recover: Box::new(move || app.recover_on_boot()),
    }
}

fn jumpserver_case(db: &Database, seed: bool) -> Driver {
    jumpserver_case_in(db, seed, Mode::AdHoc)
}

fn jumpserver_cured_case(db: &Database, seed: bool) -> Driver {
    jumpserver_case_in(db, seed, Mode::Cured)
}

fn redmine_case_in(db: &Database, seed: bool, mode: Mode) -> Driver {
    let orm = redmine::setup(db).unwrap();
    let app = Arc::new(redmine::Redmine::new(orm, mode));
    if seed {
        app.seed_issue(1, "crash oracle").unwrap();
    }
    let db = db.clone();
    let (a, b, c) = (app.clone(), app.clone(), app.clone());
    Driver {
        ops: vec![
            Box::new(move || {
                a.add_attachment(1, "a.png")
                    .map(|_| true)
                    .map_err(|e| format!("{e:?}"))
            }),
            Box::new(move || {
                b.add_attachment(1, "b.png")
                    .map(|_| true)
                    .map_err(|e| format!("{e:?}"))
            }),
            Box::new(move || {
                c.advance_issue(1, 5, 50)
                    .map(|_| true)
                    .map_err(|e| format!("{e:?}"))
            }),
        ],
        visible: Box::new({
            let db = db.clone();
            move |i| match i {
                0 => rows_where(&db, "attachments", "issue_id", 1) >= 1,
                1 => rows_where(&db, "attachments", "issue_id", 1) >= 2,
                _ => int_field(&db, "issues", 1, "done_ratio") == Some(50),
            }
        }),
        invariants: Box::new({
            let (app, db) = (app.clone(), db.clone());
            move |_| {
                let mut v = Vec::new();
                if !app.attachments_consistent(1).unwrap() {
                    v.push("attachments_consistent(1)".into());
                }
                v.extend(fail(
                    "fsck",
                    redmine::boot_fsck()
                        .check(&db)
                        .violations
                        .iter()
                        .map(|x| x.to_string())
                        .collect(),
                ));
                v
            }
        }),
        recover: Box::new(move || app.recover_on_boot()),
    }
}

fn redmine_case(db: &Database, seed: bool) -> Driver {
    redmine_case_in(db, seed, Mode::AdHoc)
}

fn redmine_cured_case(db: &Database, seed: bool) -> Driver {
    redmine_case_in(db, seed, Mode::Cured)
}

fn saleor_case_in(db: &Database, seed: bool, mode: Mode) -> Driver {
    let orm = saleor::setup(db).unwrap();
    let app = Arc::new(saleor::Saleor::new(orm, Arc::new(MemLock::new()), mode));
    if seed {
        app.seed_stock(1, 10).unwrap();
        app.seed_allocation(1, 1, 2).unwrap();
        app.seed_capture(1, 1000).unwrap();
    }
    let db = db.clone();
    let (a, b, c) = (app.clone(), app.clone(), app.clone());
    Driver {
        ops: vec![
            Box::new(move || a.allocate(1).map_err(|e| format!("{e:?}"))),
            Box::new(move || b.capture_payment(1, 300).map_err(|e| format!("{e:?}"))),
            Box::new(move || c.capture_payment(1, 300).map_err(|e| format!("{e:?}"))),
        ],
        visible: Box::new({
            let db = db.clone();
            move |i| match i {
                0 => int_field(&db, "stocks", 1, "qty") == Some(8),
                1 => int_field(&db, "captures", 1, "captured_cents") >= Some(300),
                _ => int_field(&db, "captures", 1, "captured_cents") == Some(600),
            }
        }),
        invariants: Box::new({
            let (app, db) = (app.clone(), db.clone());
            move |_| {
                let mut v = Vec::new();
                if !app.capture_within_authorization(1).unwrap() {
                    v.push("capture_within_authorization(1)".into());
                }
                v.extend(fail(
                    "fsck",
                    saleor::boot_fsck()
                        .check(&db)
                        .violations
                        .iter()
                        .map(|x| x.to_string())
                        .collect(),
                ));
                v
            }
        }),
        recover: Box::new(move || app.recover_on_boot()),
    }
}

fn saleor_case(db: &Database, seed: bool) -> Driver {
    saleor_case_in(db, seed, Mode::AdHoc)
}

fn saleor_cured_case(db: &Database, seed: bool) -> Driver {
    saleor_case_in(db, seed, Mode::Cured)
}

fn scm_case_in(db: &Database, seed: bool, mode: Mode) -> Driver {
    let orm = scm_suite::setup(db).unwrap();
    let app = Arc::new(scm_suite::ScmSuite::new(
        orm,
        Arc::new(MemLock::new()),
        mode,
    ));
    if seed {
        app.seed_account(1, 100).unwrap();
        app.seed_account(2, 100).unwrap();
        app.seed_merchandise(1, 10).unwrap();
    }
    let db = db.clone();
    let (a, b, c) = (app.clone(), app.clone(), app.clone());
    Driver {
        ops: vec![
            Box::new(move || a.transfer(1, 2, 30).map_err(|e| format!("{e:?}"))),
            Box::new(move || {
                b.track_stock(1, -4, true)
                    .map(|o| o == adhoc_transactions::core::validation::CommitOutcome::Committed)
                    .map_err(|e| format!("{e:?}"))
            }),
            Box::new(move || c.adjust_balance(1, 10).map_err(|e| format!("{e:?}"))),
        ],
        visible: Box::new({
            let db = db.clone();
            move |i| match i {
                0 => int_field(&db, "accounts", 2, "balance") == Some(130),
                1 => int_field(&db, "merchandise", 1, "stock") == Some(6),
                _ => int_field(&db, "accounts", 1, "balance") == Some(80),
            }
        }),
        invariants: Box::new({
            let (app, db) = (app.clone(), db.clone());
            move |after_resume| {
                let mut v = Vec::new();
                // Money is conserved across the crash: the transfer is one
                // WAL-atomic commit, so the total is exactly the seeded 200
                // plus the idempotence-free +10 adjustment if it applied.
                // A resumed retry may legitimately re-apply the adjustment.
                if !after_resume {
                    let total = app.total_balance(&[1, 2]).unwrap();
                    if total != 200 && total != 210 {
                        v.push(format!("conservation: total = {total}"));
                    }
                }
                v.extend(fail(
                    "fsck",
                    scm_suite::boot_fsck()
                        .check(&db)
                        .violations
                        .iter()
                        .map(|x| x.to_string())
                        .collect(),
                ));
                v
            }
        }),
        recover: Box::new(move || app.recover_on_boot()),
    }
}

// ---------------------------------------------------------------------------
// The oracle loop.
// ---------------------------------------------------------------------------

fn scm_case(db: &Database, seed: bool) -> Driver {
    scm_case_in(db, seed, Mode::AdHoc)
}

fn scm_cured_case(db: &Database, seed: bool) -> Driver {
    scm_case_in(db, seed, Mode::Cured)
}

fn witness_filter() -> Option<(String, String, u64)> {
    let spec = std::env::var("CRASH_ORACLE").ok()?;
    let mut parts = spec.splitn(3, '/');
    Some((
        parts.next()?.to_string(),
        parts.next()?.to_string(),
        parts.next()?.parse().ok()?,
    ))
}

/// Fault-free baseline: runs the workload, asserts it is self-consistent,
/// and returns the number of commit-adjacent crash points it exposes.
fn baseline(name: &str, case: Case) -> u64 {
    let db = wal_db();
    let plan = FaultPlan::new_disabled(SEED, vec![]);
    db.inject_faults(plan.clone());
    let driver = case(&db, true);
    plan.enable();
    for (i, op) in driver.ops.iter().enumerate() {
        let acked = op().unwrap_or_else(|e| panic!("{name}: baseline op {i} failed: {e}"));
        assert!(acked, "{name}: baseline op {i} must take effect");
        assert!((driver.visible)(i), "{name}: baseline op {i} not visible");
    }
    // Snapshot the workload's commit count before the invariant probes run
    // their own (read-only) transactions and inflate it.
    let commits = plan.ops_seen(OpClass::DbCommit);
    plan.disable();
    let violations = (driver.invariants)(false);
    assert!(
        violations.is_empty(),
        "{name}: baseline violates {violations:?}"
    );
    assert!(
        commits >= driver.ops.len() as u64,
        "{name}: too few commits"
    );
    commits
}

/// Crash the workload at commit `k` with `kind`, restart, replay the WAL,
/// run boot-fsck, and assert the oracle's three properties. Returns the
/// boot report's repaired-rule names (the named findings).
fn crash_at(name: &str, case: Case, kind: FaultKind, k: u64) -> Vec<String> {
    let witness = format!("{name}/{}/{k}", kind.name());

    // --- The crashing run. -------------------------------------------------
    let db1 = wal_db();
    let plan = FaultPlan::new_disabled(SEED, vec![FaultRule::at_ops(kind, &[k])]);
    db1.inject_faults(plan.clone());
    let driver1 = case(&db1, true);
    plan.enable();
    let mut acked = Vec::new();
    let mut crashed_op = None;
    for (i, op) in driver1.ops.iter().enumerate() {
        match op() {
            Ok(effect) => acked.push((i, effect)),
            Err(_) => {
                crashed_op = Some(i);
                break;
            }
        }
    }
    assert_eq!(
        plan.fired(),
        1,
        "[{witness}] the fault must fire exactly once"
    );
    let crashed_op = crashed_op.expect("a fired crash fault surfaces as an op error");

    // --- Restart: fresh engine, schema setup, WAL replay, boot fsck. -------
    let db2 = wal_db();
    let driver2 = case(&db2, false);
    let report = restart_from(&db1, &db2)
        .unwrap_or_else(|e| panic!("[{witness}] recovery replay failed: {e}"));
    let boot = (driver2.recover)();

    // 1. Durability: every acknowledged effect survives the crash.
    for (i, effect) in &acked {
        if *effect {
            assert!(
                (driver2.visible)(*i),
                "[{witness}] acked op {i} lost in recovery ({report:?})"
            );
        }
    }

    // 2. Atomicity + domain invariants after boot recovery.
    let violations = (driver2.invariants)(false);
    assert!(
        violations.is_empty(),
        "[{witness}] invariants broken after recovery: {violations:?} (boot fixed {}, {report:?})",
        boot.fixed
    );

    // 3. Serviceability: the restarted process resumes the workload.
    for op in &driver2.ops[crashed_op..] {
        let _ = op(); // at-least-once delivery: the retry may ack or no-op
    }
    let violations = (driver2.invariants)(true);
    assert!(
        violations.is_empty(),
        "[{witness}] invariants broken after resume: {violations:?}"
    );

    // Unfixable findings must have been caught by the invariant pass above;
    // report the repaired ones as named findings.
    boot.violations
        .iter()
        .map(|v| format!("[{witness}] unfixed {v}"))
        .chain(
            (boot.fixed > 0)
                .then(|| format!("[{witness}] boot-fsck repaired {} state(s)", boot.fixed)),
        )
        .collect()
}

/// Sweep every crash kind × commit point for one app; returns all named
/// findings plus the set of fsck rules that fired, for expectation checks.
fn sweep(name: &str, case: Case) -> (Vec<String>, Vec<String>) {
    let commits = baseline(name, case);
    let filter = witness_filter();
    let mut findings = Vec::new();
    let mut fixed_rules = Vec::new();
    for &kind in CRASH_KINDS {
        for k in 0..commits {
            if let Some((app, kname, kk)) = &filter {
                if app != name || kname != kind.name() || *kk != k {
                    continue;
                }
            }
            findings.extend(crash_at(name, case, kind, k));
            // Re-derive which rules repaired state at this point: run the
            // crashing half again and inspect the boot report directly.
            // (Cheap: the sweep is the dominant cost and stays bounded.)
            if findings.last().is_some_and(|f| f.contains("repaired")) {
                fixed_rules.push(format!("{}@{k}", kind.name()));
            }
        }
    }
    for f in &findings {
        eprintln!("finding: {f}");
    }
    (findings, fixed_rules)
}

#[test]
fn spree_crash_sweep_surfaces_and_repairs_stuck_payments() {
    let (findings, fixed) = sweep("spree", spree_case);
    if witness_filter().is_none() {
        // §4.3: the crash between "processing" and "completed" must appear
        // as a repaired finding for the durable-crash kind.
        assert!(
            fixed.iter().any(|f| f.starts_with("crash-after-durable")),
            "expected a stuck-processing repair, findings: {findings:?}"
        );
    }
}

#[test]
fn broadleaf_crash_sweep_repairs_cart_totals() {
    let (findings, fixed) = sweep("broadleaf", broadleaf_case);
    if witness_filter().is_none() {
        assert!(
            fixed.iter().any(|f| f.starts_with("crash-after-durable")),
            "expected a cart-total repair, findings: {findings:?}"
        );
    }
}

#[test]
fn discourse_crash_sweep_repairs_counters() {
    let (findings, fixed) = sweep("discourse", discourse_case);
    if witness_filter().is_none() {
        assert!(
            fixed.iter().any(|f| f.starts_with("crash-after-durable")),
            "expected a counter repair, findings: {findings:?}"
        );
    }
}

#[test]
fn jumpserver_crash_sweep_backfills_rotation_audits() {
    let (findings, fixed) = sweep("jumpserver", jumpserver_case);
    if witness_filter().is_none() {
        assert!(
            fixed.iter().any(|f| f.starts_with("crash-after-durable")),
            "expected a rotation-audit backfill, findings: {findings:?}"
        );
    }
}

#[test]
fn mastodon_crash_sweep_is_clean_with_checked_delivery() {
    let (findings, _) = sweep("mastodon", mastodon_case);
    if witness_filter().is_none() {
        // Every Mastodon op in the sweep re-reads durable state before
        // writing, so no crash point needs a repair.
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }
}

#[test]
fn redmine_crash_sweep_is_clean_by_single_txn_discipline() {
    let (findings, _) = sweep("redmine", redmine_case);
    if witness_filter().is_none() {
        // Redmine pairs each counter bump with its row insert in ONE
        // transaction (the paper's only near-bug-free app): WAL atomicity
        // alone keeps every crash point clean.
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }
}

#[test]
fn saleor_crash_sweep_never_overcaptures() {
    let (findings, _) = sweep("saleor", saleor_case);
    if witness_filter().is_none() {
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }
}

#[test]
fn scm_crash_sweep_conserves_money() {
    let (findings, _) = sweep("scm_suite", scm_case);
    if witness_filter().is_none() {
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }
}

// ---------------------------------------------------------------------------
// Cured variants: the §7 layer must empty the catalog. Each sweep runs the
// same workload in `Mode::Cured` and asserts ZERO findings — no invariant
// violation at any crash point, no state for boot-fsck to repair (the
// repairs the ad hoc sweeps above rely on must simply never be needed).
// Every point stays replayable: `CRASH_ORACLE=spree_cured/torn-write/2`
// addresses the cured variants exactly like the ad hoc ones.
// ---------------------------------------------------------------------------

fn assert_cured_sweep_clean(name: &str, case: Case) {
    let (findings, fixed) = sweep(name, case);
    if witness_filter().is_none() {
        assert!(
            findings.is_empty() && fixed.is_empty(),
            "{name}: the cure layer left work for boot-fsck: {findings:?}"
        );
    }
}

#[test]
fn spree_cured_crash_sweep_has_zero_findings() {
    // §4.3 [60] cured: the payment state machine advances in one atomic
    // transaction, so no crash point can strand a `processing` row.
    assert_cured_sweep_clean("spree_cured", spree_cured_case);
}

#[test]
fn broadleaf_cured_crash_sweep_has_zero_findings() {
    // Figure 1a cured: item insert + total recompute commit together.
    assert_cured_sweep_clean("broadleaf_cured", broadleaf_cured_case);
}

#[test]
fn discourse_cured_crash_sweep_has_zero_findings() {
    // §4.2 cured: counter bumps ride the same commit as their rows.
    assert_cured_sweep_clean("discourse_cured", discourse_cured_case);
}

#[test]
fn mastodon_cured_crash_sweep_has_zero_findings() {
    assert_cured_sweep_clean("mastodon_cured", mastodon_cured_case);
}

#[test]
fn jumpserver_cured_crash_sweep_has_zero_findings() {
    // The rotation audit is written with the version bump, not after it —
    // nothing for the backfill rule to do at any crash point.
    assert_cured_sweep_clean("jumpserver_cured", jumpserver_cured_case);
}

#[test]
fn redmine_cured_crash_sweep_has_zero_findings() {
    assert_cured_sweep_clean("redmine_cured", redmine_cured_case);
}

#[test]
fn saleor_cured_crash_sweep_has_zero_findings() {
    assert_cured_sweep_clean("saleor_cured", saleor_cured_case);
}

#[test]
fn scm_cured_crash_sweep_has_zero_findings() {
    assert_cured_sweep_clean("scm_suite_cured", scm_cured_case);
}

// ---------------------------------------------------------------------------
// Named buggy-variant findings that the sweep's disciplined workloads avoid
// on purpose — each is the paper's failure shape, made deterministic.
// ---------------------------------------------------------------------------

/// Mastodon's `notify_once` keys its at-most-once guarantee on a volatile
/// SETNX marker. A restart loses the marker but keeps the durable row, so
/// an at-least-once redelivery duplicates the notification — and the boot
/// fsck's named rule (`mastodon:notifications-unique`) dedupes it.
#[test]
fn mastodon_volatile_marker_redelivery_is_found_and_deduped() {
    let db1 = wal_db();
    let orm = mastodon::setup(&db1).unwrap();
    let kv = Client::new(
        Store::new(),
        Arc::new(VirtualClock::new()),
        LatencyModel::zero(),
    );
    let app1 = Arc::new(mastodon::Mastodon::new(
        orm,
        kv,
        Arc::new(MemLock::new()),
        Mode::AdHoc,
    ));
    assert!(app1.notify_once(7, "follow").unwrap());

    // Crash-restart: the notification row replays from the WAL; the SETNX
    // marker lived in the volatile store and is gone.
    let db2 = wal_db();
    let orm2 = mastodon::setup(&db2).unwrap();
    let kv2 = Client::new(
        Store::new(),
        Arc::new(VirtualClock::new()),
        LatencyModel::zero(),
    );
    let app2 = Arc::new(mastodon::Mastodon::new(
        orm2,
        kv2,
        Arc::new(MemLock::new()),
        Mode::AdHoc,
    ));
    restart_from(&db1, &db2).unwrap();

    // The delivery queue redelivers; the marker race is lost.
    assert!(
        app2.notify_once(7, "follow").unwrap(),
        "marker was volatile"
    );
    assert!(
        !app2.notifications_unique(7).unwrap(),
        "duplicate delivered"
    );

    // The next boot's fsck repairs it under its named rule.
    let report = app2.recover_on_boot();
    assert_eq!(report.fixed, 1);
    assert!(report.violations.is_empty());
    assert!(app2.notifications_unique(7).unwrap());
}

/// Saleor's over-capture (Table 5b) is detection-only: `recover_on_boot`
/// reports it under its named rule and refuses to invent a repair.
#[test]
fn saleor_overcapture_is_reported_not_silently_fixed() {
    let db = wal_db();
    let orm = saleor::setup(&db).unwrap();
    let app = saleor::Saleor::new(orm, Arc::new(MemLock::new()), Mode::AdHoc);
    app.seed_capture(1, 1000).unwrap();
    // The state an expired-lease double capture leaves behind.
    db.run(
        adhoc_transactions::storage::IsolationLevel::ReadCommitted,
        |t| t.update("captures", 1, &[("captured_cents", 1200.into())]),
    )
    .unwrap();

    let report = app.recover_on_boot();
    assert_eq!(report.fixed, 0, "over-capture must not be auto-repaired");
    assert_eq!(report.violations.len(), 1);
    assert_eq!(
        report.violations[0].rule,
        "saleor:capture-within-authorization"
    );
    assert!(!app.capture_within_authorization(1).unwrap());
}

/// SCM Suite's oversold stock is likewise detection-only.
#[test]
fn scm_oversold_stock_is_reported_not_silently_fixed() {
    let db = wal_db();
    let orm = scm_suite::setup(&db).unwrap();
    let app = scm_suite::ScmSuite::new(orm, Arc::new(MemLock::new()), Mode::AdHoc);
    app.seed_merchandise(1, 10).unwrap();
    db.run(
        adhoc_transactions::storage::IsolationLevel::ReadCommitted,
        |t| t.update("merchandise", 1, &[("stock", (-3).into())]),
    )
    .unwrap();

    let report = app.recover_on_boot();
    assert_eq!(report.fixed, 0);
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].rule, "scm:stock-non-negative");
}
