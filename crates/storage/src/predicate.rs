//! Scan predicates and index intervals.
//!
//! Predicates are deliberately simple — equality, range, conjunction —
//! because that is what the studied applications issue (§3.3.2: "all based
//! on equality predicates" for predicate locking, plus ranges for
//! completeness). Intervals are the unit of gap locking and of SSI
//! predicate-read tracking.

use crate::schema::{Row, Schema};
use crate::value::Value;
use crate::Result;
use std::ops::Bound;

/// A row predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Every row.
    All,
    /// `column = value`.
    Eq(String, Value),
    /// `low <= column <= high` with optional open ends.
    Range {
        /// Column the range applies to.
        column: String,
        /// Lower bound.
        low: Bound<Value>,
        /// Upper bound.
        high: Bound<Value>,
    },
    /// Conjunction.
    And(Vec<Predicate>),
}

impl Predicate {
    /// `column = value` shorthand.
    pub fn eq(column: &str, value: impl Into<Value>) -> Self {
        Predicate::Eq(column.to_string(), value.into())
    }

    /// `column >= low` shorthand.
    pub fn ge(column: &str, low: impl Into<Value>) -> Self {
        Predicate::Range {
            column: column.to_string(),
            low: Bound::Included(low.into()),
            high: Bound::Unbounded,
        }
    }

    /// `low <= column <= high` shorthand.
    pub fn between(column: &str, low: impl Into<Value>, high: impl Into<Value>) -> Self {
        Predicate::Range {
            column: column.to_string(),
            low: Bound::Included(low.into()),
            high: Bound::Included(high.into()),
        }
    }

    /// Evaluate against a row.
    pub fn matches(&self, schema: &Schema, row: &Row) -> Result<bool> {
        match self {
            Predicate::All => Ok(true),
            Predicate::Eq(col, v) => Ok(row.get(schema, col)? == v),
            Predicate::Range { column, low, high } => {
                let v = row.get(schema, column)?;
                let lo_ok = match low {
                    Bound::Unbounded => true,
                    Bound::Included(b) => v >= b,
                    Bound::Excluded(b) => v > b,
                };
                let hi_ok = match high {
                    Bound::Unbounded => true,
                    Bound::Included(b) => v <= b,
                    Bound::Excluded(b) => v < b,
                };
                Ok(lo_ok && hi_ok)
            }
            Predicate::And(ps) => {
                for p in ps {
                    if !p.matches(schema, row)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
        }
    }

    /// The single column this predicate can be served by an index on, if
    /// any: `Eq`/`Range` directly, or the first indexable conjunct.
    pub fn index_column(&self) -> Option<(&str, ValueInterval)> {
        match self {
            Predicate::All => None,
            Predicate::Eq(col, v) => Some((col, ValueInterval::point(v.clone()))),
            Predicate::Range { column, low, high } => Some((
                column,
                ValueInterval {
                    low: low.clone(),
                    high: high.clone(),
                },
            )),
            Predicate::And(ps) => ps.iter().find_map(|p| p.index_column()),
        }
    }
}

/// A closed/open/unbounded interval over [`Value`]s — the footprint of a
/// predicate on an ordered index, and the unit of gap locking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueInterval {
    /// Lower bound.
    pub low: Bound<Value>,
    /// Upper bound.
    pub high: Bound<Value>,
}

impl ValueInterval {
    /// The degenerate interval containing exactly `v`.
    pub fn point(v: Value) -> Self {
        Self {
            low: Bound::Included(v.clone()),
            high: Bound::Included(v),
        }
    }

    /// The unbounded interval containing every value.
    pub fn all() -> Self {
        Self {
            low: Bound::Unbounded,
            high: Bound::Unbounded,
        }
    }

    /// Does the interval contain `v`?
    pub fn contains(&self, v: &Value) -> bool {
        let lo_ok = match &self.low {
            Bound::Unbounded => true,
            Bound::Included(b) => v >= b,
            Bound::Excluded(b) => v > b,
        };
        let hi_ok = match &self.high {
            Bound::Unbounded => true,
            Bound::Included(b) => v <= b,
            Bound::Excluded(b) => v < b,
        };
        lo_ok && hi_ok
    }

    /// Widen to the next-key envelope: given the nearest committed index
    /// keys strictly outside the requested interval, produce the gap-locked
    /// interval (exclusive of the neighbours themselves).
    ///
    /// This is how an InnoDB-style next-key scan over a non-unique index
    /// ends up covering `(prev_key, next_key)` — the §3.3.2 example where a
    /// search for `order_id = 10` with neighbours `{9, 12}` locks the whole
    /// gap `(9, 12)` and blocks an unrelated insert of `11`.
    pub fn widen_to_gap(&self, prev_key: Option<Value>, next_key: Option<Value>) -> ValueInterval {
        ValueInterval {
            low: match prev_key {
                Some(k) => Bound::Excluded(k),
                None => Bound::Unbounded,
            },
            high: match next_key {
                Some(k) => Bound::Excluded(k),
                None => Bound::Unbounded,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{row_from_pairs, Column, Schema};
    use crate::value::ColumnType;

    fn schema() -> Schema {
        Schema::new(
            "payments",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("order_id", ColumnType::Int),
                Column::new("state", ColumnType::Str),
            ],
            "id",
        )
        .unwrap()
    }

    fn row(id: i64, order: i64, state: &str) -> Row {
        row_from_pairs(
            &schema(),
            &[
                ("id", id.into()),
                ("order_id", order.into()),
                ("state", state.into()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn eq_and_all_match() {
        let s = schema();
        let r = row(1, 10, "new");
        assert!(Predicate::All.matches(&s, &r).unwrap());
        assert!(Predicate::eq("order_id", 10).matches(&s, &r).unwrap());
        assert!(!Predicate::eq("order_id", 11).matches(&s, &r).unwrap());
    }

    #[test]
    fn range_bounds_behave() {
        let s = schema();
        let r = row(1, 10, "new");
        assert!(Predicate::between("order_id", 5, 10)
            .matches(&s, &r)
            .unwrap());
        assert!(Predicate::ge("order_id", 10).matches(&s, &r).unwrap());
        assert!(!Predicate::ge("order_id", 11).matches(&s, &r).unwrap());
        let excl = Predicate::Range {
            column: "order_id".into(),
            low: Bound::Excluded(Value::Int(10)),
            high: Bound::Unbounded,
        };
        assert!(!excl.matches(&s, &r).unwrap());
    }

    #[test]
    fn and_is_conjunction() {
        let s = schema();
        let r = row(1, 10, "new");
        let p = Predicate::And(vec![
            Predicate::eq("order_id", 10),
            Predicate::eq("state", "new"),
        ]);
        assert!(p.matches(&s, &r).unwrap());
        let p2 = Predicate::And(vec![
            Predicate::eq("order_id", 10),
            Predicate::eq("state", "paid"),
        ]);
        assert!(!p2.matches(&s, &r).unwrap());
    }

    #[test]
    fn unknown_column_errors() {
        let s = schema();
        let r = row(1, 10, "new");
        assert!(Predicate::eq("ghost", 1).matches(&s, &r).is_err());
    }

    #[test]
    fn index_column_extraction() {
        let p = Predicate::eq("order_id", 10);
        let (col, iv) = p.index_column().unwrap();
        assert_eq!(col, "order_id");
        assert!(iv.contains(&Value::Int(10)));
        assert!(!iv.contains(&Value::Int(11)));
        assert!(Predicate::All.index_column().is_none());
        let and = Predicate::And(vec![Predicate::All, Predicate::eq("state", "new")]);
        assert_eq!(and.index_column().unwrap().0, "state");
    }

    #[test]
    fn widen_to_gap_covers_the_paper_example() {
        // Search order_id = 10 with committed neighbours {9, 12}: the gap is
        // (9, 12); an insert of 11 falls inside, 9 and 12 do not.
        let iv = ValueInterval::point(Value::Int(10));
        let gap = iv.widen_to_gap(Some(Value::Int(9)), Some(Value::Int(12)));
        assert!(gap.contains(&Value::Int(10)));
        assert!(gap.contains(&Value::Int(11)));
        assert!(!gap.contains(&Value::Int(9)));
        assert!(!gap.contains(&Value::Int(12)));
        // Open-ended: no next key -> infinity (the check-out hot interval).
        let gap = iv.widen_to_gap(Some(Value::Int(9)), None);
        assert!(gap.contains(&Value::Int(1_000_000)));
    }

    #[test]
    fn interval_all_contains_everything() {
        let iv = ValueInterval::all();
        assert!(iv.contains(&Value::Int(i64::MIN)));
        assert!(iv.contains(&Value::Str("zzz".into())));
    }
}
