//! Declarative optimistic concurrency control at the ORM layer — the
//! paper's first §7 cure.
//!
//! The studied applications hand-roll optimistic loops (read, compute,
//! `WHERE lock_version = ?`, retry) and get them subtly wrong: stale
//! validation scopes, forgotten retries, critical sections spanning HTTP
//! requests with nothing revalidated on resume. This module packages the
//! whole pattern once, correctly:
//!
//! * **Field-granular read footprints.** [`OccTxn::read_fields`] records
//!   only the columns a request actually depends on; commit-time
//!   validation compares exactly those values under `FOR UPDATE`.
//!   Concurrent writes to *other* columns of the same row do not
//!   conflict — strictly fewer aborts than `lock_version`, which
//!   invalidates on any write.
//! * **Validate-on-save.** [`OccTxn::stage_save`] buffers an [`Obj`]'s
//!   dirty columns; at commit they are applied through the ORM's own
//!   [`save`](crate::OrmTxn::save), so `validates` rules, timestamps, and
//!   touch cascades all still run — inside the same atomic commit as the
//!   validation.
//! * **Automatic retry.** [`run_occ`] re-executes the request body under
//!   the unified [`RetryPolicy`] whenever validation fails, reporting
//!   every decision to the standard [`RetryObserver`].
//! * **Continuations.** An [`OccTxn`] is plain data — no open database
//!   transaction, no held locks — so [`ContinuationStore`] can park it
//!   between simulated HTTP requests (the §3.1.2 multi-request edit
//!   flow) and the restored transaction still validates its entire read
//!   set at final commit.
//! * **Footprints.** [`OccTxn::footprint`] projects the read/write sets
//!   onto the engine's commit shards (the PR-3 [`Footprint`] plumbing),
//!   so upper layers can reason about which optimistic requests can
//!   possibly contend.

use crate::entity::Obj;
use crate::error::OrmError;
use crate::orm::Orm;
use crate::Result;
use adhoc_sim::{RetryObserver, RetryPolicy};
use adhoc_storage::{Footprint, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// One recorded read: the fields of `(entity, id)` this transaction's
/// outcome depends on, at the values observed. `found: false` records a
/// dependency on the row's *absence*.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ReadRecord {
    entity: String,
    id: i64,
    fields: Vec<(String, Value)>,
    found: bool,
}

/// A buffered raw field update, applied via `UPDATE` at commit.
#[derive(Debug, Clone, PartialEq, Eq)]
struct WriteRecord {
    entity: String,
    id: i64,
    pairs: Vec<(String, Value)>,
}

/// A buffered ORM-semantic save: dirty columns of a loaded [`Obj`],
/// re-applied through `save()` at commit (validations + cascades run).
#[derive(Debug, Clone, PartialEq, Eq)]
struct SaveRecord {
    entity: String,
    id: i64,
    pairs: Vec<(String, Value)>,
}

/// A buffered insert, applied via the ORM's `create` at commit.
#[derive(Debug, Clone, PartialEq, Eq)]
struct InsertRecord {
    entity: String,
    pairs: Vec<(String, Value)>,
}

/// A buffered commutative increment ([`OccTxn::add_delta`]): applied at
/// commit via the engine's merge-on-install delta path, with **no**
/// validation — a confluent write cannot conflict, so it contributes
/// nothing for the OCC read set to defend.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DeltaRecord {
    entity: String,
    id: i64,
    column: String,
    delta: i64,
}

/// A detached optimistic transaction: reads execute immediately (each in
/// its own autocommit snapshot), writes are buffered, and
/// [`commit`](Self::commit) re-validates every recorded field under
/// `FOR UPDATE` before applying the writes — all inside one database
/// transaction. Holds no locks and no open transaction between calls, so
/// it can span simulated HTTP requests via [`ContinuationStore`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct OccTxn {
    reads: Vec<ReadRecord>,
    writes: Vec<WriteRecord>,
    saves: Vec<SaveRecord>,
    inserts: Vec<InsertRecord>,
    deltas: Vec<DeltaRecord>,
}

impl OccTxn {
    /// An empty optimistic transaction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read a row, recording **every** column in the read set. Absent
    /// rows are recorded too: commit fails if the row appears.
    pub fn read(&mut self, orm: &Orm, entity: &str, id: i64) -> Result<Option<Obj>> {
        self.read_inner(orm, entity, id, None)
    }

    /// Read a row, recording **only** `columns` in the read set — the
    /// field-granular footprint. Commit validates just those values, so
    /// concurrent writers of other columns never conflict with this
    /// transaction. The returned [`Obj`] is complete; only the listed
    /// columns are revalidated.
    pub fn read_fields(
        &mut self,
        orm: &Orm,
        entity: &str,
        id: i64,
        columns: &[&str],
    ) -> Result<Option<Obj>> {
        self.read_inner(orm, entity, id, Some(columns))
    }

    fn read_inner(
        &mut self,
        orm: &Orm,
        entity: &str,
        id: i64,
        columns: Option<&[&str]>,
    ) -> Result<Option<Obj>> {
        orm.registry().get(entity)?;
        // The OCC read phase needs no transaction: commit re-validates
        // every recorded field under `FOR UPDATE`, so a plain
        // latest-committed read is already serializable end to end —
        // and costs half as many transactions per optimistic attempt.
        // The yield keeps the read a preemption point for the
        // interleaving explorer, like the statement it replaces.
        adhoc_sim::sched::yield_point(adhoc_sim::sched::SchedPoint::DbStatement);
        let obj = orm
            .db()
            .latest_committed(entity, id)?
            .map(|row| -> Result<Obj> {
                Ok(Obj::from_row(entity, orm.db().schema(entity)?, id, row))
            })
            .transpose()?;
        let record = match &obj {
            Some(obj) => {
                let fields = match columns {
                    Some(cols) => cols
                        .iter()
                        .map(|c| Ok((c.to_string(), obj.get(c)?.clone())))
                        .collect::<Result<Vec<_>>>()?,
                    None => obj
                        .schema()
                        .columns
                        .iter()
                        .enumerate()
                        .map(|(i, c)| (c.name.clone(), obj.row().at(i).clone()))
                        .collect(),
                };
                ReadRecord {
                    entity: entity.to_string(),
                    id,
                    fields,
                    found: true,
                }
            }
            None => ReadRecord {
                entity: entity.to_string(),
                id,
                fields: Vec::new(),
                found: false,
            },
        };
        self.reads.push(record);
        Ok(obj)
    }

    /// Buffer a raw field update (`UPDATE entity SET pairs WHERE id`),
    /// applied at commit after validation. No validations or cascades —
    /// the footprint is exactly the named fields.
    pub fn stage_update(&mut self, entity: &str, id: i64, pairs: &[(&str, Value)]) {
        self.writes.push(WriteRecord {
            entity: entity.to_string(),
            id,
            pairs: pairs
                .iter()
                .map(|(n, v)| (n.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Validate-on-save: buffer `obj`'s dirty columns. At commit the row
    /// is re-loaded inside the commit transaction and written through the
    /// ORM's `save()`, so `validates` rules, `updated_at`, and touch
    /// cascades all run atomically with the validation.
    pub fn stage_save(&mut self, obj: &Obj) -> Result<()> {
        let pairs = obj
            .dirty_columns()
            .map(|c| Ok((c.to_string(), obj.get(c)?.clone())))
            .collect::<Result<Vec<_>>>()?;
        self.saves.push(SaveRecord {
            entity: obj.entity.clone(),
            id: obj.id,
            pairs,
        });
        Ok(())
    }

    /// Buffer an insert, applied through the ORM's `create` at commit
    /// (validations and timestamps run there).
    pub fn stage_insert(&mut self, entity: &str, pairs: &[(&str, Value)]) {
        self.inserts.push(InsertRecord {
            entity: entity.to_string(),
            pairs: pairs
                .iter()
                .map(|(n, v)| (n.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Buffer a commutative increment of an integer column, applied at
    /// commit through the engine's merge-on-install delta path
    /// ([`Transaction::add_delta`](adhoc_storage::Transaction::add_delta)).
    /// No read is recorded and no validation runs for it: increments
    /// commute, so a concurrent bump of the same counter neither aborts
    /// this transaction nor is lost by it. Use for invariant-confluent
    /// state (counters, tallies) — never for values whose invariant
    /// constrains them (use escrow via
    /// [`Coordinator::reserve`](crate::Coordinator::reserve) instead).
    pub fn add_delta(&mut self, entity: &str, id: i64, column: &str, delta: i64) {
        self.deltas.push(DeltaRecord {
            entity: entity.to_string(),
            id,
            column: column.to_string(),
            delta,
        });
    }

    /// Number of recorded reads.
    pub fn read_set_len(&self) -> usize {
        self.reads.len()
    }

    /// Number of buffered writes (updates + saves + inserts + deltas).
    pub fn write_set_len(&self) -> usize {
        self.writes.len() + self.saves.len() + self.inserts.len() + self.deltas.len()
    }

    /// True when nothing has been read or staged.
    pub fn is_empty(&self) -> bool {
        self.read_set_len() == 0 && self.write_set_len() == 0
    }

    /// Project the read/write sets onto the engine's commit shards — the
    /// PR-3 [`Footprint`] plumbing, computed *before* commit so callers
    /// can reason about possible contention. Inserts contribute their
    /// shard only when they carry an explicit `id`.
    pub fn footprint(&self, orm: &Orm) -> Result<Footprint> {
        let db = orm.db();
        let mut fp = Footprint::default();
        for r in &self.reads {
            fp.reads
                .insert(db.shard_of_row(db.table_id(&r.entity)?, r.id));
        }
        for w in &self.writes {
            fp.writes
                .insert(db.shard_of_row(db.table_id(&w.entity)?, w.id));
        }
        for s in &self.saves {
            fp.writes
                .insert(db.shard_of_row(db.table_id(&s.entity)?, s.id));
        }
        for i in &self.inserts {
            if let Some((_, Value::Int(id))) = i.pairs.iter().find(|(n, _)| n == "id") {
                fp.writes
                    .insert(db.shard_of_row(db.table_id(&i.entity)?, *id));
            }
        }
        for d in &self.deltas {
            fp.writes
                .insert(db.shard_of_row(db.table_id(&d.entity)?, d.id));
        }
        Ok(fp)
    }

    /// Validate and apply, atomically: one database transaction re-reads
    /// every recorded row under `FOR UPDATE`, compares exactly the
    /// recorded fields, and — only if all still hold — applies the
    /// buffered writes. A moved field aborts the transaction and returns
    /// [`OrmError::OccConflict`]; nothing is ever partially applied.
    pub fn commit(self, orm: &Orm) -> Result<()> {
        orm.transaction(|t| {
            for r in &self.reads {
                let current = t.raw().get_for_update(&r.entity, r.id)?;
                match current {
                    Some(row) if r.found => {
                        orm.db().with_schema(&r.entity, |schema| -> Result<()> {
                            for (col, expected) in &r.fields {
                                if row.get(schema, col)? != expected {
                                    return Err(OrmError::OccConflict {
                                        entity: r.entity.clone(),
                                        id: r.id,
                                        column: col.clone(),
                                    });
                                }
                            }
                            Ok(())
                        })??;
                    }
                    None if !r.found => {}
                    _ => {
                        return Err(OrmError::OccConflict {
                            entity: r.entity.clone(),
                            id: r.id,
                            column: "<row>".to_string(),
                        })
                    }
                }
            }
            for w in &self.writes {
                let pairs: Vec<(&str, Value)> = w
                    .pairs
                    .iter()
                    .map(|(n, v)| (n.as_str(), v.clone()))
                    .collect();
                t.raw().update(&w.entity, w.id, &pairs)?;
            }
            for s in &self.saves {
                let mut obj = t.find_required(&s.entity, s.id)?;
                for (col, value) in &s.pairs {
                    obj.set(col, value.clone())?;
                }
                t.save(&mut obj)?;
            }
            for i in &self.inserts {
                let pairs: Vec<(&str, Value)> = i
                    .pairs
                    .iter()
                    .map(|(n, v)| (n.as_str(), v.clone()))
                    .collect();
                t.create(&i.entity, &pairs)?;
            }
            for d in &self.deltas {
                t.raw().add_delta(&d.entity, d.id, &d.column, d.delta)?;
            }
            Ok(())
        })
    }
}

/// Run `body` as an optimistic transaction with automatic retry: each
/// attempt gets a fresh [`OccTxn`], the body re-reads and re-stages, and
/// [`OccTxn::commit`] validates. Conflicts ([`OrmError::OccConflict`],
/// [`OrmError::StaleObject`]) and driver-retryable database errors retry
/// under `policy`; budget exhaustion surfaces as
/// [`OrmError::RetriesExhausted`].
pub fn run_occ<T>(
    orm: &Orm,
    policy: &RetryPolicy,
    observer: Option<&dyn RetryObserver>,
    mut body: impl FnMut(&mut OccTxn) -> Result<T>,
) -> Result<T> {
    let outcome = policy.run(
        "orm-occ",
        observer,
        |e: &OrmError| {
            matches!(
                e,
                OrmError::OccConflict { .. } | OrmError::StaleObject { .. }
            ) || e.is_retryable()
        },
        |_attempt| {
            let mut occ = OccTxn::new();
            let value = body(&mut occ)?;
            occ.commit(orm)?;
            Ok(value)
        },
    );
    match outcome {
        Ok(v) => Ok(v),
        Err(give_up) if give_up.retryable => Err(OrmError::RetriesExhausted {
            attempts: give_up.attempts as usize,
        }),
        Err(give_up) => Err(give_up.error),
    }
}

/// Parks [`OccTxn`]s between simulated HTTP requests — the §3.1.2
/// multi-request flow (begin-edit page load → user thinks → submit)
/// done safely: the parked transaction holds no locks, and the restored
/// transaction revalidates its entire read set at final commit, so
/// anything that changed while parked surfaces as a conflict instead of
/// a lost update.
#[derive(Debug, Default)]
pub struct ContinuationStore {
    slots: Mutex<HashMap<u64, OccTxn>>,
    counter: AtomicU64,
}

impl ContinuationStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Park a transaction; the returned id goes into the next request
    /// (in the real flows: a hidden form field or draft row).
    pub fn save(&self, txn: OccTxn) -> u64 {
        let id = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        self.slots.lock().insert(id, txn);
        id
    }

    /// Take a parked transaction back out. Each id restores exactly
    /// once; unknown ids are [`OrmError::NoSuchContinuation`].
    pub fn restore(&self, id: u64) -> Result<OccTxn> {
        self.slots
            .lock()
            .remove(&id)
            .ok_or(OrmError::NoSuchContinuation { id })
    }

    /// Number of currently parked transactions.
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// True when nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.slots.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{EntityDef, Registry, Validation};
    use adhoc_storage::{Column, ColumnType, Database, EngineProfile, Schema};
    use std::time::Duration;

    fn fixture() -> Orm {
        let db = Database::in_memory(EngineProfile::PostgresLike);
        db.create_table(
            Schema::new(
                "skus",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("quantity", ColumnType::Int),
                    Column::new("sold", ColumnType::Int),
                    Column::new("note", ColumnType::Str),
                ],
                "id",
            )
            .unwrap(),
        )
        .unwrap();
        let orm = Orm::new(
            db,
            Registry::new().register(EntityDef::new("skus").validate(Validation::NonNegative {
                column: "quantity".into(),
            })),
        );
        orm.create(
            "skus",
            &[
                ("id", 1.into()),
                ("quantity", 10.into()),
                ("sold", 0.into()),
                ("note", "fresh".into()),
            ],
        )
        .unwrap();
        orm
    }

    fn policy() -> RetryPolicy {
        RetryPolicy::exponential(1000, Duration::from_micros(20), Duration::from_micros(500))
    }

    #[test]
    fn commit_applies_buffered_writes_atomically() {
        let orm = fixture();
        let mut occ = OccTxn::new();
        let sku = occ.read(&orm, "skus", 1).unwrap().unwrap();
        let qty = sku.get_int("quantity").unwrap();
        occ.stage_update("skus", 1, &[("quantity", (qty - 1).into())]);
        occ.stage_insert(
            "skus",
            &[
                ("id", 2.into()),
                ("quantity", 5.into()),
                ("sold", 0.into()),
                ("note", "new".into()),
            ],
        );
        occ.commit(&orm).unwrap();
        assert_eq!(
            orm.find_required("skus", 1)
                .unwrap()
                .get_int("quantity")
                .unwrap(),
            9
        );
        assert_eq!(
            orm.find_required("skus", 2)
                .unwrap()
                .get_int("quantity")
                .unwrap(),
            5
        );
    }

    #[test]
    fn whole_row_read_conflicts_on_any_field() {
        let orm = fixture();
        let mut occ = OccTxn::new();
        occ.read(&orm, "skus", 1).unwrap();
        occ.stage_update("skus", 1, &[("sold", 1.into())]);
        // Concurrent writer touches an unrelated column.
        orm.transaction(|t| {
            t.raw()
                .update("skus", 1, &[("note", "relabelled".into())])?;
            Ok(())
        })
        .unwrap();
        assert!(matches!(
            occ.commit(&orm),
            Err(OrmError::OccConflict { column, .. }) if column == "note"
        ));
    }

    #[test]
    fn field_granular_read_ignores_unrelated_writes() {
        let orm = fixture();
        let mut occ = OccTxn::new();
        occ.read_fields(&orm, "skus", 1, &["quantity"]).unwrap();
        occ.stage_update("skus", 1, &[("quantity", 9.into())]);
        // Same concurrent writer — but "note" is outside the footprint.
        orm.transaction(|t| {
            t.raw()
                .update("skus", 1, &[("note", "relabelled".into())])?;
            Ok(())
        })
        .unwrap();
        occ.commit(&orm).unwrap();
        let sku = orm.find_required("skus", 1).unwrap();
        assert_eq!(sku.get_int("quantity").unwrap(), 9);
        assert_eq!(sku.get_str("note").unwrap(), "relabelled");
    }

    #[test]
    fn field_granular_read_conflicts_on_observed_field() {
        let orm = fixture();
        let mut occ = OccTxn::new();
        occ.read_fields(&orm, "skus", 1, &["quantity"]).unwrap();
        occ.stage_update("skus", 1, &[("quantity", 9.into())]);
        orm.transaction(|t| {
            t.raw().update("skus", 1, &[("quantity", 3.into())])?;
            Ok(())
        })
        .unwrap();
        assert!(matches!(
            occ.commit(&orm),
            Err(OrmError::OccConflict { column, .. }) if column == "quantity"
        ));
        // Nothing was applied.
        assert_eq!(
            orm.find_required("skus", 1)
                .unwrap()
                .get_int("quantity")
                .unwrap(),
            3
        );
    }

    #[test]
    fn absence_reads_are_validated() {
        let orm = fixture();
        let mut occ = OccTxn::new();
        assert!(occ.read(&orm, "skus", 77).unwrap().is_none());
        occ.stage_insert(
            "skus",
            &[
                ("id", 77.into()),
                ("quantity", 1.into()),
                ("sold", 0.into()),
                ("note", "x".into()),
            ],
        );
        // Someone else inserts id 77 first.
        orm.create(
            "skus",
            &[
                ("id", 77.into()),
                ("quantity", 9.into()),
                ("sold", 0.into()),
                ("note", "y".into()),
            ],
        )
        .unwrap();
        assert!(matches!(
            occ.commit(&orm),
            Err(OrmError::OccConflict { column, .. }) if column == "<row>"
        ));
    }

    #[test]
    fn stage_save_runs_validations_in_the_commit_txn() {
        let orm = fixture();
        let mut occ = OccTxn::new();
        let mut sku = occ
            .read_fields(&orm, "skus", 1, &["quantity"])
            .unwrap()
            .unwrap();
        sku.set("quantity", -5).unwrap();
        occ.stage_save(&sku).unwrap();
        assert!(matches!(
            occ.commit(&orm),
            Err(OrmError::ValidationFailed {
                rule: "non_negative",
                ..
            })
        ));
        assert_eq!(
            orm.find_required("skus", 1)
                .unwrap()
                .get_int("quantity")
                .unwrap(),
            10
        );
    }

    #[test]
    fn run_occ_retries_conflicts_to_success() {
        let orm = fixture();
        // 6 threads × 20 increments through run_occ: all 120 must land.
        std::thread::scope(|s| {
            for _ in 0..6 {
                let orm = orm.clone();
                s.spawn(move || {
                    for _ in 0..20 {
                        run_occ(&orm, &policy(), None, |occ| {
                            let sku = occ
                                .read_fields(&orm, "skus", 1, &["sold"])?
                                .expect("seeded");
                            let sold = sku.get_int("sold")?;
                            occ.stage_update("skus", 1, &[("sold", (sold + 1).into())]);
                            Ok(())
                        })
                        .unwrap();
                    }
                });
            }
        });
        assert_eq!(
            orm.find_required("skus", 1)
                .unwrap()
                .get_int("sold")
                .unwrap(),
            120
        );
    }

    #[test]
    fn delta_commit_merges_with_concurrent_writers() {
        let orm = fixture();
        let mut occ = OccTxn::new();
        occ.add_delta("skus", 1, "sold", 1);
        assert_eq!(occ.write_set_len(), 1);
        // A concurrent writer bumps the same column between stage and
        // commit — with a validated read this would conflict; the delta
        // simply merges on top of it.
        orm.transaction(|t| {
            t.raw().update("skus", 1, &[("sold", 5.into())])?;
            Ok(())
        })
        .unwrap();
        occ.commit(&orm).unwrap();
        assert_eq!(
            orm.find_required("skus", 1)
                .unwrap()
                .get_int("sold")
                .unwrap(),
            6
        );
    }

    #[test]
    fn concurrent_delta_bumps_all_land_without_retries() {
        let orm = fixture();
        // The same 6×20 increment workload as run_occ_retries_…, but via
        // deltas: a no-retry policy proves no attempt ever conflicts.
        let no_retry =
            RetryPolicy::exponential(0, Duration::from_micros(1), Duration::from_micros(1));
        std::thread::scope(|s| {
            for _ in 0..6 {
                let orm = orm.clone();
                s.spawn(move || {
                    for _ in 0..20 {
                        run_occ(&orm, &no_retry, None, |occ| {
                            occ.add_delta("skus", 1, "sold", 1);
                            Ok(())
                        })
                        .unwrap();
                    }
                });
            }
        });
        assert_eq!(
            orm.find_required("skus", 1)
                .unwrap()
                .get_int("sold")
                .unwrap(),
            120
        );
    }

    #[test]
    fn run_occ_gives_up_eventually() {
        let orm = fixture();
        let tight = RetryPolicy::exponential(3, Duration::from_micros(1), Duration::from_micros(2));
        let err = run_occ(&orm, &tight, None, |occ| {
            occ.read_fields(&orm, "skus", 1, &["sold"])?;
            // Sabotage: always invalidate our own read before commit.
            orm.transaction(|t| {
                let cur = t.find_required("skus", 1)?.get_int("sold")?;
                t.raw().update("skus", 1, &[("sold", (cur + 1).into())])?;
                Ok(())
            })?;
            occ.stage_update("skus", 1, &[("sold", 0.into())]);
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, OrmError::RetriesExhausted { attempts: 3 }));
    }

    #[test]
    fn run_occ_does_not_retry_validation_failures() {
        let orm = fixture();
        let err = run_occ(&orm, &policy(), None, |occ| {
            let mut sku = occ.read(&orm, "skus", 1)?.expect("seeded");
            sku.set("quantity", -1)?;
            occ.stage_save(&sku)?;
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, OrmError::ValidationFailed { .. }));
    }

    #[test]
    fn footprint_projects_reads_and_writes() {
        let orm = fixture();
        let mut occ = OccTxn::new();
        occ.read_fields(&orm, "skus", 1, &["quantity"]).unwrap();
        occ.stage_update("skus", 1, &[("quantity", 9.into())]);
        occ.stage_insert(
            "skus",
            &[
                ("id", 50.into()),
                ("quantity", 1.into()),
                ("sold", 0.into()),
                ("note", "n".into()),
            ],
        );
        let fp = occ.footprint(&orm).unwrap();
        let db = orm.db();
        let t = db.table_id("skus").unwrap();
        assert!(fp.reads.contains(db.shard_of_row(t, 1)));
        assert!(fp.writes.contains(db.shard_of_row(t, 1)));
        assert!(fp.writes.contains(db.shard_of_row(t, 50)));
        // Disjoint rows (usually) mean disjoint footprints — the property
        // the sharded engine exploits. Just assert both are localized.
        assert!(fp.writes.len() <= 2);
    }

    #[test]
    fn continuation_spans_requests_and_validates_on_resume() {
        let orm = fixture();
        let store = ContinuationStore::new();
        // Request 1: load the edit page (read recorded), park.
        let mut occ = OccTxn::new();
        let sku = occ
            .read_fields(&orm, "skus", 1, &["note"])
            .unwrap()
            .unwrap();
        assert_eq!(sku.get_str("note").unwrap(), "fresh");
        let id = store.save(occ);
        assert_eq!(store.len(), 1);
        // Between requests: a concurrent writer edits the same field.
        orm.transaction(|t| {
            t.raw()
                .update("skus", 1, &[("note", "concurrent".into())])?;
            Ok(())
        })
        .unwrap();
        // Request 2: restore, stage our edit, commit — must conflict.
        let mut occ = store.restore(id).unwrap();
        assert!(store.is_empty());
        occ.stage_update("skus", 1, &[("note", "mine".into())]);
        assert!(matches!(
            occ.commit(&orm),
            Err(OrmError::OccConflict { .. })
        ));
        // The concurrent edit survived; ours was refused, not lost-updated.
        assert_eq!(
            orm.find_required("skus", 1)
                .unwrap()
                .get_str("note")
                .unwrap(),
            "concurrent"
        );
        // The retry (fresh read, new continuation round trip) succeeds.
        let mut occ = OccTxn::new();
        occ.read_fields(&orm, "skus", 1, &["note"]).unwrap();
        let id = store.save(occ);
        let mut occ = store.restore(id).unwrap();
        occ.stage_update("skus", 1, &[("note", "mine".into())]);
        occ.commit(&orm).unwrap();
        assert_eq!(
            orm.find_required("skus", 1)
                .unwrap()
                .get_str("note")
                .unwrap(),
            "mine"
        );
    }

    #[test]
    fn restore_is_once_and_unknown_ids_error() {
        let store = ContinuationStore::new();
        let id = store.save(OccTxn::new());
        assert!(store.restore(id).is_ok());
        assert!(matches!(
            store.restore(id),
            Err(OrmError::NoSuchContinuation { .. })
        ));
        assert!(matches!(
            store.restore(999),
            Err(OrmError::NoSuchContinuation { id: 999 })
        ));
    }
}
