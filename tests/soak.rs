//! Short randomized concurrent smoke: mixed, seeded-random traffic
//! against three application models at once, with every invariant checked
//! afterwards. This exercises real threads and real cross-application
//! mixing; the *race-finding* burden it used to carry now belongs to the
//! deterministic interleaving explorer (`tests/schedule_regressions.rs`
//! and the pinned corpus in `tests/schedules/`), so the wall-clock budget
//! here is deliberately small.

use adhoc_transactions::apps::{broadleaf, jumpserver, mastodon, Mode};
use adhoc_transactions::core::locks::{KvSetNxLock, MemLock};
use adhoc_transactions::kv::{Client, Store};
use adhoc_transactions::sim::rng::for_worker;
use adhoc_transactions::sim::{LatencyModel, RealClock};
use adhoc_transactions::storage::{Database, EngineProfile};
use rand::Rng;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0xC0FFEE;
const THREADS: usize = 6;
const SOAK: Duration = Duration::from_millis(400);

#[test]
fn mixed_application_soak_preserves_all_invariants() {
    // Broadleaf on MySQL-like; Mastodon + JumpServer on PostgreSQL-like.
    let shop_db = Database::in_memory(EngineProfile::MySqlLike);
    let shop = Arc::new(broadleaf::Broadleaf::new(
        broadleaf::setup(&shop_db).unwrap(),
        Arc::new(MemLock::new()),
        Mode::AdHoc,
    ));
    for cart in 1..=3 {
        shop.seed_cart(cart).unwrap();
    }
    let seeded = 1_000_000;
    for sku in 1..=2 {
        shop.seed_sku(sku, seeded).unwrap();
    }

    let social_db = Database::in_memory(EngineProfile::PostgresLike);
    let kv = Client::new(Store::new(), RealClock::shared(), LatencyModel::zero());
    let social = Arc::new(mastodon::Mastodon::new(
        mastodon::setup(&social_db).unwrap(),
        kv.clone(),
        Arc::new(KvSetNxLock::new(kv)),
        Mode::AdHoc,
    ));
    social.seed_poll(1).unwrap();
    social.seed_invite(1, 64).unwrap();
    // (notification dedupe needs no seed; the SETNX marker is the state)

    let access_db = Database::in_memory(EngineProfile::PostgresLike);
    let kv2 = Client::new(Store::new(), RealClock::shared(), LatencyModel::zero());
    let access = Arc::new(jumpserver::JumpServer::new(
        jumpserver::setup(&access_db).unwrap(),
        Arc::new(KvSetNxLock::new(kv2)),
        Mode::AdHoc,
    ));
    access.seed_credential(1, "s0").unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let votes_a = Arc::new(AtomicI64::new(0));
    let votes_b = Arc::new(AtomicI64::new(0));
    let sold = [Arc::new(AtomicI64::new(0)), Arc::new(AtomicI64::new(0))];
    let next_post = Arc::new(AtomicI64::new(1));

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let shop = Arc::clone(&shop);
            let social = Arc::clone(&social);
            let access = Arc::clone(&access);
            let stop = Arc::clone(&stop);
            let votes_a = Arc::clone(&votes_a);
            let votes_b = Arc::clone(&votes_b);
            let sold = [Arc::clone(&sold[0]), Arc::clone(&sold[1])];
            let next_post = Arc::clone(&next_post);
            s.spawn(move || {
                let mut rng = for_worker(SEED, t as u64);
                while !stop.load(Ordering::Relaxed) {
                    match rng.gen_range(0..10) {
                        0 => {
                            let cart = rng.gen_range(1..=3);
                            shop.add_to_cart(cart, rng.gen_range(1..50), 1).unwrap();
                        }
                        1 => {
                            let sku = rng.gen_range(0..2usize);
                            if shop.check_out(sku as i64 + 1, 1).unwrap() {
                                sold[sku].fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        2 => {
                            if rng.gen_bool(0.5) {
                                social.vote(1, mastodon::Choice::A).unwrap();
                                votes_a.fetch_add(1, Ordering::Relaxed);
                            } else {
                                social.vote(1, mastodon::Choice::B).unwrap();
                                votes_b.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        3 => {
                            let _ = social.redeem_invite(1).unwrap();
                        }
                        4 => {
                            let id = next_post.fetch_add(1, Ordering::Relaxed);
                            social.create_post(7, id, "soak").unwrap();
                            if rng.gen_bool(0.4) {
                                social.delete_post(7, id).unwrap();
                            }
                        }
                        5 => {
                            access
                                .grant(
                                    rng.gen_range(0..4),
                                    rng.gen_range(0..4),
                                    rng.gen_range(0..5),
                                )
                                .unwrap();
                        }
                        6 => {
                            // Mixed-app "request": cart + vote back to back.
                            shop.add_to_cart(1, 5, 1).unwrap();
                            social.vote(1, mastodon::Choice::A).unwrap();
                            votes_a.fetch_add(1, Ordering::Relaxed);
                        }
                        7 => {
                            let sku = rng.gen_range(0..2usize);
                            if shop.check_out(sku as i64 + 1, 2).unwrap() {
                                sold[sku].fetch_add(2, Ordering::Relaxed);
                            }
                        }
                        8 => {
                            // Dedupe race: all threads fight over a small
                            // event space.
                            let event = format!("mention:{}", rng.gen_range(0..6));
                            let _ = social.notify_once(7, &event).unwrap();
                        }
                        _ => {
                            // Credential rotations racing on one asset.
                            let _ = access.rotate_credential(1, &format!("s{t}")).unwrap();
                        }
                    }
                }
            });
        }
        std::thread::sleep(SOAK);
        stop.store(true, Ordering::Relaxed);
    });

    // Broadleaf invariants.
    for cart in 1..=3 {
        assert!(shop.cart_total_consistent(cart).unwrap(), "cart {cart}");
    }
    for (i, sku) in (1..=2i64).enumerate() {
        assert!(shop.sku_conserved(sku, seeded).unwrap(), "sku {sku}");
        let row = shop.orm().find_required("skus", sku).unwrap();
        assert_eq!(
            row.get_int("sold").unwrap(),
            sold[i].load(Ordering::Relaxed),
            "sku {sku} sold count"
        );
    }
    // Mastodon invariants.
    let (a, b) = social.poll_totals(1).unwrap();
    assert_eq!(a, votes_a.load(Ordering::Relaxed));
    assert_eq!(b, votes_b.load(Ordering::Relaxed));
    assert!(social.invite_within_limit(1).unwrap());
    assert!(social.timeline_consistent(7).unwrap());
    assert!(social.notifications_unique(7).unwrap());
    // JumpServer invariants.
    for user in 0..4 {
        assert!(access.grants_unique(user).unwrap(), "user {user}");
    }
    assert!(access.rotations_audited(1).unwrap());
    // Engines resolved everything without leaking transactions.
    for db in [&shop_db, &social_db, &access_db] {
        let stats = db.stats();
        assert_eq!(stats.lock_stats.timeouts, 0, "no lock leaks: {stats:?}");
    }
}
