//! The database: table catalog, sharded row state, transaction lifecycle,
//! per-shard commit validation, and SSI-style certification for the
//! PostgreSQL-like profile.
//!
//! ## Sharded commit spine
//!
//! All row state — version chains and the commit-log entries certification
//! walks — is hash-partitioned into [`SHARD_COUNT`](crate::shard::SHARD_COUNT)
//! shards by `(table, primary key)` ([`crate::shard::shard_of`]). A
//! committing transaction locks only the shards its footprint touches, in
//! ascending shard-index order (deadlock-free by construction), validates
//! against those shards' logs, and installs its versions there. Commits
//! with disjoint footprints proceed in parallel with no shared lock; the
//! old engine-global `commit_gate` is gone.
//!
//! Commit timestamps come from per-thread epoch blocks (refilled from a
//! shared counter once per block — see [`crate::epoch`]), drawn while the
//! shard locks are held, so each shard's log stays timestamp-ordered.
//! Because timestamps can be drawn out of order *across* shards, snapshots
//! come from a separate `applied` watermark that only advances once every
//! commit at or below it has fully installed — a begin can never observe a
//! half-applied commit (the old single-gate design enforced this with the
//! global mutex; the watermark enforces it without one, batch-advancing
//! per epoch through a lock-free completion ring).

use crate::engine::{AccessEvent, DbConfig, EngineProfile, IsolationLevel, StatementObserver};
use crate::epoch::EpochSpine;
use crate::error::{DbError, TxnId};
use crate::fasthash::FastMap;
use crate::lock::{LockManager, LockStats};
use crate::schema::{Row, Schema};
use crate::shard::{shard_of, ShardSet, SHARD_COUNT};
use crate::table::{CommitTs, RowVersion, Table, VersionChain};
use crate::txn::Transaction;
use crate::value::Value;
use crate::wal::Wal;
use crate::Result;
use adhoc_sim::latency::Cost;
use adhoc_sim::{BackoffPolicy, FaultKind, FaultPlan, OpClass, RetryObserver, RetryPolicy};
use parking_lot::{Mutex, MutexGuard, RwLock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A committed transaction's footprint, retained for SSI certification of
/// concurrent readers (pruned once no active snapshot predates it). One
/// entry is shared (`Arc`) by the log of every shard the commit wrote.
#[derive(Debug)]
pub(crate) struct CommittedTxn {
    pub commit_ts: CommitTs,
    /// Rows written: (table, primary key). Usually tiny, so a plain vector
    /// beats a hash set for both build and certification-scan cost.
    pub rows: Vec<(usize, i64)>,
    /// Indexed keys touched (old and new): (table, column, key value).
    pub keys: Vec<(usize, usize, Value)>,
}

/// One hash shard of row state: version chains plus the shard-local commit
/// log. All mutation happens under the shard mutex.
#[derive(Debug, Default)]
pub(crate) struct Shard {
    /// Version chains keyed by (table, primary key).
    pub rows: FastMap<(usize, i64), VersionChain>,
    /// Committed footprints that wrote this shard, timestamp-ordered
    /// (timestamps are drawn while the shard lock is held).
    pub log: VecDeque<Arc<CommittedTxn>>,
    /// Appends since the last prune — pruning is amortized so the common
    /// commit never pays the scan over active snapshots.
    appends_since_prune: u32,
}

/// Prune a shard's log at most every this many appends.
const PRUNE_EVERY: u32 = 32;

/// Stripe count for the active-transaction registry (begin/finish touch one
/// stripe; only pruning and crash simulation touch them all).
const ACTIVE_STRIPES: usize = 16;

/// Aggregate counters exposed for benches and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transactions (explicit, dropped, or failed).
    pub aborts: u64,
    /// Statements executed.
    pub statements: u64,
    /// First-committer/updater and certification aborts.
    pub serialization_failures: u64,
    /// Lock-manager counters.
    pub lock_stats: LockStats,
}

pub(crate) struct DbInner {
    pub config: DbConfig,
    /// Observer installed after construction (in addition to any in the
    /// config); used by monitors that attach to an existing database.
    pub late_observer: RwLock<Option<Arc<dyn StatementObserver>>>,
    /// Fast path for [`Database::observing`]: set when `late_observer` is;
    /// lets the per-row observe hooks skip event construction entirely.
    observers_attached: AtomicBool,
    /// Fault plan consulted once per commit attempt (class
    /// [`OpClass::DbCommit`]); installed after construction like
    /// `late_observer`.
    pub faults: RwLock<Option<FaultPlan>>,
    /// Fast path: true once a fault plan was installed, so the common
    /// commit never clones a `FaultPlan`.
    faults_armed: AtomicBool,
    /// Circuit breaker around the client↔DB connection path; installed
    /// after construction like the fault plan. While open, statements are
    /// rejected client-side with [`DbError::CircuitOpen`].
    breaker: RwLock<Option<Arc<adhoc_sim::CircuitBreaker>>>,
    /// Fast path: true once a breaker was installed.
    breaker_armed: AtomicBool,
    /// Observer of [`run_with_retries`](Database::run_with_retries)
    /// decisions (retries and give-ups); the hazard monitor attaches here.
    pub retry_observer: RwLock<Option<Arc<dyn RetryObserver>>>,
    /// Fast path: true once a retry observer was installed, so the common
    /// transaction wrapper skips the lock + `Arc` clone.
    retry_observed: AtomicBool,
    /// Table catalog: name → id, id → shared table handle. Read-mostly —
    /// statements clone an `Arc<Table>`, never the schema.
    catalog: RwLock<Catalog>,
    /// The row-state shards. Index with [`shard_of`].
    shards: Box<[Mutex<Shard>]>,
    pub locks: LockManager,
    next_txn: AtomicU64,
    /// Commit-timestamp allocator and `applied` watermark, fused: blocks
    /// of timestamps are drawn per thread (under the committing
    /// transaction's shard locks) and the watermark batch-advances per
    /// epoch via a completion ring — see [`crate::epoch`].
    epoch: EpochSpine,
    /// Active transactions and their begin snapshots, striped by
    /// `txn_id % ACTIVE_STRIPES` so begin/finish on different transactions
    /// don't share a lock.
    active: Box<[Mutex<FastMap<TxnId, CommitTs>>]>,
    /// Sticky: set (with a quiescent barrier) when the first
    /// PostgreSQL-like Serializable transaction begins. Shard commit logs
    /// are consumed only by SSI certification, so until then committers
    /// skip log bookkeeping entirely.
    ssi_seen: AtomicBool,
    pub commits: AtomicU64,
    pub aborts: AtomicU64,
    pub statements: AtomicU64,
    pub serialization_failures: AtomicU64,
    /// Write-ahead log, present when [`DbConfig::wal`] asked for one.
    /// Commits append their write set under their shard guards, so each
    /// row's log order matches its version-chain order.
    wal: Option<Wal>,
    /// Escrow ledger for budget columns (`stock >= 0`), lazily populated
    /// from committed state and — like the lock table — forgotten on
    /// crash. See [`crate::escrow`].
    pub(crate) escrow: crate::escrow::EscrowLedger,
}

#[derive(Default)]
struct Catalog {
    by_name: FastMap<String, usize>,
    list: Vec<Arc<Table>>,
}

/// The database handle. Cheap to clone and share across threads.
#[derive(Clone)]
pub struct Database {
    pub(crate) inner: Arc<DbInner>,
}

impl Database {
    /// A database from an explicit configuration.
    pub fn new(config: DbConfig) -> Self {
        let timeout = config.lock_wait_timeout;
        let observers_attached = AtomicBool::new(config.observer.is_some());
        let wal = config.wal.map(|policy| {
            Wal::new(policy, config.clock.clone()).with_fsync_latency(config.wal_fsync_latency)
        });
        Self {
            inner: Arc::new(DbInner {
                config,
                late_observer: RwLock::new(None),
                observers_attached,
                faults: RwLock::new(None),
                faults_armed: AtomicBool::new(false),
                breaker: RwLock::new(None),
                breaker_armed: AtomicBool::new(false),
                retry_observer: RwLock::new(None),
                retry_observed: AtomicBool::new(false),
                catalog: RwLock::new(Catalog::default()),
                shards: (0..SHARD_COUNT)
                    .map(|_| Mutex::new(Shard::default()))
                    .collect(),
                locks: LockManager::new(timeout),
                next_txn: AtomicU64::new(1),
                epoch: EpochSpine::new(),
                active: (0..ACTIVE_STRIPES)
                    .map(|_| Mutex::new(FastMap::default()))
                    .collect(),
                ssi_seen: AtomicBool::new(false),
                wal,
                escrow: crate::escrow::EscrowLedger::default(),
                commits: AtomicU64::new(0),
                aborts: AtomicU64::new(0),
                statements: AtomicU64::new(0),
                serialization_failures: AtomicU64::new(0),
            }),
        }
    }

    /// Shorthand: an in-memory database with the given profile.
    pub fn in_memory(profile: EngineProfile) -> Self {
        Self::new(DbConfig::in_memory(profile))
    }

    /// The configured engine profile.
    pub fn profile(&self) -> EngineProfile {
        self.inner.config.profile
    }

    /// The engine's default isolation level.
    pub fn default_isolation(&self) -> IsolationLevel {
        self.inner.config.profile.default_isolation()
    }

    /// Create a table from a schema.
    pub fn create_table(&self, schema: Schema) -> Result<()> {
        let mut catalog = self.inner.catalog.write();
        if catalog.by_name.contains_key(&schema.table) {
            return Err(DbError::DuplicateTable {
                table: schema.table,
            });
        }
        let id = catalog.list.len();
        catalog.by_name.insert(schema.table.clone(), id);
        catalog.list.push(Arc::new(Table::new(id, schema)));
        Ok(())
    }

    /// A clone of a table's schema.
    pub fn schema(&self, table: &str) -> Result<Schema> {
        Ok(self.resolve_table(table)?.schema.clone())
    }

    /// Run `f` against a table's schema without cloning it. Hot commit
    /// paths that resolve column names per row (the OCC validation loop)
    /// use this; [`schema`](Self::schema) clones the column vector on
    /// every call.
    pub fn with_schema<R>(&self, table: &str, f: impl FnOnce(&Schema) -> R) -> Result<R> {
        Ok(f(&self.resolve_table(table)?.schema))
    }

    /// Resolve a table by name to its shared handle (statements hold the
    /// `Arc`, never a catalog lock).
    pub(crate) fn resolve_table(&self, name: &str) -> Result<Arc<Table>> {
        let catalog = self.inner.catalog.read();
        let id = catalog
            .by_name
            .get(name)
            .copied()
            .ok_or_else(|| DbError::NoSuchTable {
                table: name.to_string(),
            })?;
        Ok(Arc::clone(&catalog.list[id]))
    }

    /// A table handle by positional id (commit path; id comes from a
    /// previously resolved statement so it always exists).
    pub(crate) fn table_by_id(&self, id: usize) -> Arc<Table> {
        Arc::clone(&self.inner.catalog.read().list[id])
    }

    /// The shard holding row `(table_id, id)` — the unit of commit-time
    /// coordination. Exposed so upper layers can compute footprints.
    pub fn shard_of_row(&self, table_id: usize, id: i64) -> usize {
        shard_of(table_id, id)
    }

    /// The catalog ordinal of a table, the `table_id` argument to
    /// [`shard_of_row`](Self::shard_of_row). Stable for the lifetime of
    /// the database (tables are never dropped), so upper layers can
    /// compute a row's conflict shard without opening a transaction.
    pub fn table_id(&self, table: &str) -> Result<usize> {
        Ok(self.resolve_table(table)?.id)
    }

    /// Run `f` on the version chain of one row (shared read access under
    /// the row's shard lock; `None` when the row has no committed history).
    pub(crate) fn with_chain<R>(
        &self,
        table: usize,
        id: i64,
        f: impl FnOnce(Option<&VersionChain>) -> R,
    ) -> R {
        let shard = self.inner.shards[shard_of(table, id)].lock();
        f(shard.rows.get(&(table, id)))
    }

    /// Lock the given shards in ascending index order (the engine-wide
    /// acquisition order — any two committers lock their intersection in
    /// the same order, so shard acquisition cannot deadlock). Returns the
    /// guards paired with their shard indices, ascending.
    pub(crate) fn lock_shards(&self, set: ShardSet) -> Vec<(usize, MutexGuard<'_, Shard>)> {
        set.iter()
            .map(|idx| (idx, self.inner.shards[idx].lock()))
            .collect()
    }

    fn active_stripe(&self, txn: TxnId) -> &Mutex<FastMap<TxnId, CommitTs>> {
        &self.inner.active[(txn as usize) % ACTIVE_STRIPES]
    }

    /// Whether the server still knows this transaction (it vanishes on
    /// [`simulate_crash`](Self::simulate_crash)).
    pub(crate) fn is_active(&self, txn: TxnId) -> bool {
        self.active_stripe(txn).lock().contains_key(&txn)
    }

    /// The minimum begin snapshot across all active transactions (stripes
    /// locked in ascending order; callers may hold shard locks — shards
    /// order before active stripes engine-wide).
    pub(crate) fn min_active_snapshot(&self) -> Option<CommitTs> {
        let mut min: Option<CommitTs> = None;
        for stripe in self.inner.active.iter() {
            for snap in stripe.lock().values() {
                min = Some(min.map_or(*snap, |m: CommitTs| m.min(*snap)));
            }
        }
        min
    }

    /// Draw the next commit timestamp (from the calling thread's epoch
    /// block when it has one). Must be called with the write-set shard
    /// locks held so every shard log stays timestamp-ordered.
    pub(crate) fn draw_commit_ts(&self) -> CommitTs {
        self.inner.epoch.draw()
    }

    /// Retire a drawn commit timestamp into the `applied` watermark and
    /// wait until the watermark covers it, so the committer's next begin
    /// (and everyone else's) sees the commit. Called *after* the shard
    /// guards are dropped. Under the deterministic scheduler the wait never
    /// parks: there is no yield point between drawing a timestamp and
    /// retiring it, and any timestamp gap is an unclaimed block remainder
    /// the epoch sweep revokes synchronously.
    pub(crate) fn complete_commit(&self, ts: CommitTs) {
        self.inner.epoch.complete(ts);
    }

    /// The snapshot new begins / Read Committed statements read at.
    pub(crate) fn current_snapshot(&self) -> CommitTs {
        self.inner.epoch.snapshot()
    }

    /// The applied-watermark reading, exposed for visibility oracles: a
    /// snapshot handed to any begin is never ahead of this frontier.
    pub fn applied_watermark(&self) -> CommitTs {
        self.inner.epoch.snapshot()
    }

    /// Begin a transaction at the engine's default isolation level.
    pub fn begin(&self) -> Transaction {
        self.begin_with(self.default_isolation())
    }

    /// Begin a transaction at an explicit isolation level.
    pub fn begin_with(&self, iso: IsolationLevel) -> Transaction {
        // Transaction boundaries are preemption points under the
        // deterministic scheduler (no-op otherwise).
        adhoc_sim::sched::yield_point(adhoc_sim::sched::SchedPoint::DbTxn);
        if iso == IsolationLevel::Serializable
            && self.profile() == EngineProfile::PostgresLike
            && !self.inner.ssi_seen.load(Ordering::Acquire)
        {
            // Must run before the snapshot is taken: the barrier guarantees
            // every unlogged commit is at or below any snapshot assigned
            // from here on.
            self.enable_ssi_logging();
        }
        let id = self.inner.next_txn.fetch_add(1, Ordering::Relaxed);
        // Snapshot assignment and registration are atomic with respect to
        // log pruning (pruning reads every stripe under its lock): a
        // transaction is registered before any entry newer than its
        // snapshot can be pruned, so certification never misses a conflict.
        let snapshot = {
            let mut stripe = self.active_stripe(id).lock();
            let snapshot = self.current_snapshot();
            stripe.insert(id, snapshot);
            snapshot
        };
        Transaction::new(self.clone(), id, iso, snapshot)
    }

    /// Whether committers must append to the shard commit logs. Committers
    /// read this after acquiring their shard guards; the enabling thread
    /// held *all* shard mutexes when it set the flag, so the guard
    /// acquisition orders the load after the store.
    pub(crate) fn ssi_logging(&self) -> bool {
        self.inner.ssi_seen.load(Ordering::Relaxed)
    }

    /// Flip the sticky SSI flag under a quiescent barrier. Holding every
    /// shard mutex stops new commit timestamps from being drawn (they are
    /// drawn under write-shard guards), so once the applied watermark
    /// catches up to the last drawn timestamp, every unlogged commit is
    /// fully installed — and therefore at or below any snapshot taken
    /// after this returns. No commit that could still conflict with a
    /// future serializable read goes unlogged.
    #[cold]
    fn enable_ssi_logging(&self) {
        let guards = self.lock_shards(ShardSet::all());
        if self.inner.ssi_seen.load(Ordering::Relaxed) {
            return;
        }
        // Holding every shard mutex stops new timestamps from being drawn,
        // so waiting out the allocator frontier leaves no commit that could
        // conflict with a future serializable read unlogged. Unclaimed
        // block remainders below the frontier are revoked by the sweep, so
        // under the deterministic scheduler this never parks.
        self.inner.epoch.wait_covered(self.inner.epoch.last_drawn());
        self.inner.ssi_seen.store(true, Ordering::SeqCst);
        drop(guards);
    }

    /// Deregister a finished transaction.
    pub(crate) fn deregister(&self, txn: TxnId) {
        self.active_stripe(txn).lock().remove(&txn);
    }

    /// Run a closure inside a transaction, committing on `Ok` and aborting
    /// on `Err`. No retry: callers handle retryable errors themselves
    /// (that choice is exactly what §3.4 of the paper catalogs).
    pub fn run<R>(
        &self,
        iso: IsolationLevel,
        f: impl FnOnce(&mut Transaction) -> Result<R>,
    ) -> Result<R> {
        let mut txn = self.begin_with(iso);
        match f(&mut txn) {
            Ok(r) => {
                txn.commit()?;
                Ok(r)
            }
            Err(e) => {
                txn.abort();
                Err(e)
            }
        }
    }

    /// The default [`RetryPolicy`] for `max_retries` retries of a DBT:
    /// capped exponential backoff with deterministic jitter (seeded from
    /// the workspace default seed; per-loop streams decorrelate threads) so
    /// symmetric deadlock victims don't re-collide forever.
    pub fn retry_policy(max_retries: usize) -> RetryPolicy {
        RetryPolicy {
            max_attempts: Some(max_retries as u32 + 1),
            backoff: BackoffPolicy::exponential(
                std::time::Duration::from_micros(25),
                std::time::Duration::from_micros(800),
            )
            .with_jitter(0.5)
            .with_seed(adhoc_sim::rng::DEFAULT_SEED),
            deadline: None,
        }
    }

    /// Like [`run`](Self::run), retrying on retryable errors (deadlock /
    /// serialization failure / lock timeout) up to `max_retries` times.
    /// Shorthand for [`run_with_policy`](Self::run_with_policy) with
    /// [`retry_policy(max_retries)`](Self::retry_policy).
    pub fn run_with_retries<R>(
        &self,
        iso: IsolationLevel,
        max_retries: usize,
        f: impl FnMut(&mut Transaction) -> Result<R>,
    ) -> Result<R> {
        self.run_with_policy(iso, &Self::retry_policy(max_retries), f)
    }

    /// Like [`run`](Self::run), driven by an explicit [`RetryPolicy`]. Every
    /// retry and give-up is reported to any attached retry observer. On
    /// give-up the last error is returned, exactly as the studied DBT
    /// wrappers re-raise the driver exception.
    pub fn run_with_policy<R>(
        &self,
        iso: IsolationLevel,
        policy: &RetryPolicy,
        mut f: impl FnMut(&mut Transaction) -> Result<R>,
    ) -> Result<R> {
        let observer: Option<Arc<dyn RetryObserver>> =
            if self.inner.retry_observed.load(Ordering::Acquire) {
                self.inner.retry_observer.read().clone()
            } else {
                None
            };
        policy
            .run(
                "dbt",
                observer.as_deref(),
                DbError::is_retryable,
                |_attempt| self.run(iso, &mut f),
            )
            .map_err(|give_up| give_up.error)
    }

    /// Install a fault plan: every subsequent commit attempt consults it
    /// (class [`OpClass::DbCommit`]) and may be rejected ([`FaultKind::CommitFailed`])
    /// or become durable without an acknowledgement
    /// ([`FaultKind::CrashAfterDurable`]); both surface as
    /// [`DbError::ConnectionLost`].
    pub fn inject_faults(&self, plan: FaultPlan) {
        *self.inner.faults.write() = Some(plan);
        self.inner.faults_armed.store(true, Ordering::Release);
    }

    /// Observe retry decisions made by
    /// [`run_with_policy`](Self::run_with_policy).
    pub fn attach_retry_observer(&self, observer: Arc<dyn RetryObserver>) {
        *self.inner.retry_observer.write() = Some(observer);
        self.inner.retry_observed.store(true, Ordering::Release);
    }

    /// Consult the fault plan for one commit attempt.
    pub(crate) fn arm_commit_fault(&self) -> Option<FaultKind> {
        if !self.inner.faults_armed.load(Ordering::Acquire) {
            return None;
        }
        let plan = self.inner.faults.read().clone()?;
        plan.arm(OpClass::DbCommit).map(|f| f.kind)
    }

    /// Install a circuit breaker around the connection path: consecutive
    /// connection-level failures (dropped statements, lost commit
    /// acknowledgements) open it, and while open every statement fails
    /// fast with [`DbError::CircuitOpen`] without paying a round trip.
    pub fn install_breaker(&self, breaker: Arc<adhoc_sim::CircuitBreaker>) {
        *self.inner.breaker.write() = Some(breaker);
        self.inner.breaker_armed.store(true, Ordering::Release);
    }

    fn breaker(&self) -> Option<Arc<adhoc_sim::CircuitBreaker>> {
        if !self.inner.breaker_armed.load(Ordering::Acquire) {
            return None;
        }
        self.inner.breaker.read().clone()
    }

    /// The engine's clock reading (virtual under simulation).
    pub(crate) fn now(&self) -> std::time::Duration {
        self.inner.config.clock.now()
    }

    /// Note a connection-level failure on the breaker (commit path: the
    /// acknowledgement was lost).
    pub(crate) fn breaker_note_failure(&self) {
        if let Some(breaker) = self.breaker() {
            breaker.record_failure(self.now());
        }
    }

    /// One fallible statement round trip: breaker fast-fail (no round trip
    /// paid, no scheduler yield — opting in never perturbs pinned
    /// schedules), then the usual charge, then the statement-class fault
    /// plan ([`OpClass::DbStatement`]): a partitioned statement never
    /// reaches the engine and surfaces as [`DbError::Partitioned`].
    pub(crate) fn statement_gate(&self, txn: TxnId) -> Result<()> {
        let breaker = self.breaker();
        if let Some(breaker) = &breaker {
            if !breaker.allow(self.now()) {
                return Err(DbError::CircuitOpen { txn });
            }
        }
        self.charge_statement();
        if self.inner.faults_armed.load(Ordering::Acquire) {
            let plan = self.inner.faults.read().clone();
            if let Some(plan) = plan {
                if let Some(fault) = plan.arm_at(OpClass::DbStatement, self.now()) {
                    if fault.kind == FaultKind::DbPartitioned {
                        if let Some(breaker) = &breaker {
                            breaker.record_failure(self.now());
                        }
                        return Err(DbError::Partitioned { txn });
                    }
                }
            }
        }
        if let Some(breaker) = &breaker {
            breaker.record_success();
        }
        Ok(())
    }

    /// Allocate a session id for session-scoped advisory locks (the
    /// PostgreSQL "explicit user locks" of §6 / Table 7a). The id shares
    /// the transaction-id space so the lock manager's deadlock detector
    /// covers advisory waits too.
    pub fn new_session(&self) -> SessionId {
        SessionId(self.inner.next_txn.fetch_add(1, Ordering::Relaxed))
    }

    /// Blockingly acquire a session-scoped advisory lock.
    pub fn advisory_lock(&self, session: SessionId, key: i64) -> Result<()> {
        self.inner.locks.lock_advisory(session.0, key)
    }

    /// Try to acquire a session-scoped advisory lock without blocking.
    pub fn try_advisory_lock(&self, session: SessionId, key: i64) -> bool {
        self.inner.locks.try_lock_advisory(session.0, key)
    }

    /// Release one level of a session-scoped advisory lock.
    pub fn advisory_unlock(&self, session: SessionId, key: i64) -> bool {
        self.inner.locks.unlock_advisory(session.0, key)
    }

    /// Release everything a session holds (disconnect).
    pub fn end_session(&self, session: SessionId) {
        self.inner.locks.release_all(session.0);
    }

    /// The latest committed version of a row, outside any transaction.
    /// Used by consistency checkers ("fsck", §3.4.2) and tests.
    pub fn latest_committed(&self, table: &str, id: i64) -> Result<Option<Row>> {
        let t = self.resolve_table(table)?;
        Ok(self.with_chain(t.id, id, |c| c.and_then(|c| c.latest()).cloned()))
    }

    /// All live rows of a table (latest committed versions), for checkers.
    pub fn dump_table(&self, table: &str) -> Result<Vec<(i64, Row)>> {
        let t = self.resolve_table(table)?;
        Ok(t.all_ids()
            .into_iter()
            .filter_map(|id| {
                self.with_chain(t.id, id, |c| c.and_then(|c| c.latest()).cloned())
                    .map(|r| (id, r))
            })
            .collect())
    }

    /// Quiesce the commit spine and run `f` with every shard locked and the
    /// set of (drained) active transaction ids: no commit is mid-install
    /// while `f` runs, and the active registry is emptied at a single
    /// consistent point (the old implementation drained it piecemeal,
    /// racing in-flight commits).
    fn quiesce_and_forget(
        &self,
        f: impl FnOnce(&mut [(usize, MutexGuard<'_, Shard>)]),
    ) -> Vec<TxnId> {
        // Engine-wide order: shards (ascending) before active stripes.
        let mut guards = self.lock_shards(ShardSet::all());
        let mut ids = Vec::new();
        for stripe in self.inner.active.iter() {
            ids.extend(stripe.lock().drain().map(|(id, _)| id));
        }
        f(&mut guards);
        drop(guards);
        ids
    }

    /// Simulate an RDBMS crash: every active transaction is forgotten and
    /// its locks released; committed state survives (it was durable).
    /// Client-side `Transaction` handles become zombies whose commit fails
    /// with [`DbError::TxnNotActive`] — the "connection lost" exception the
    /// paper's §3.4.2 describes drivers throwing.
    pub fn simulate_crash(&self) {
        let _ = self.quiesce_and_forget(|guards| {
            for (_, shard) in guards.iter_mut() {
                shard.log.clear();
                shard.appends_since_prune = 0;
            }
        });
        // The lock table lives in server memory: a crash forgets *all* of
        // it — engine locks of the drained transactions and session
        // advisory locks alike (§3.4.2: advisory locks do not survive a
        // server restart).
        self.inner.locks.clear_all();
        // Likewise the escrow ledger: outstanding reservations were
        // volatile intents. Entries re-derive from committed state on
        // first use after restart.
        self.inner.escrow.clear();
    }

    /// Reset to empty: forget active transactions (releasing their locks),
    /// drop all committed row state and index state, and rewind every
    /// table's auto-increment cursor. Timestamp counters are *not* rewound
    /// — snapshots stay monotonic so concurrent handles can't see time go
    /// backwards. Intended for test/bench harnesses that reuse a database.
    pub fn reset(&self) {
        let _ = self.quiesce_and_forget(|guards| {
            for (_, shard) in guards.iter_mut() {
                shard.rows.clear();
                shard.log.clear();
                shard.appends_since_prune = 0;
            }
        });
        // Restart semantics, consistent across components: the whole lock
        // table (engine locks, gap locks, advisory sessions, wait queues)
        // is volatile server memory and is dropped wholesale — not just the
        // locks of the transactions the drain happened to find.
        self.inner.locks.clear_all();
        self.inner.escrow.clear();
        for table in self.inner.catalog.read().list.iter() {
            table.clear_index();
        }
        // A reset database has no history for recovery to replay.
        if let Some(wal) = &self.inner.wal {
            wal.clear();
        }
    }

    /// Counters.
    pub fn stats(&self) -> DbStats {
        DbStats {
            commits: self.inner.commits.load(Ordering::Relaxed),
            aborts: self.inner.aborts.load(Ordering::Relaxed),
            statements: self.inner.statements.load(Ordering::Relaxed),
            serialization_failures: self.inner.serialization_failures.load(Ordering::Relaxed),
            lock_stats: self.inner.locks.stats(),
        }
    }

    /// Direct access to the lock manager (used by the toolkit crate for
    /// explicit lock hints and by tests).
    pub(crate) fn locks(&self) -> &LockManager {
        &self.inner.locks
    }

    /// Attach (or replace) a statement observer on a live database.
    pub fn attach_observer(&self, observer: Arc<dyn StatementObserver>) {
        *self.inner.late_observer.write() = Some(observer);
        self.inner.observers_attached.store(true, Ordering::Release);
    }

    /// Whether any statement observer is installed — callers check this
    /// before building an [`AccessEvent`] so the unobserved hot path
    /// allocates nothing.
    pub(crate) fn observing(&self) -> bool {
        self.inner.observers_attached.load(Ordering::Acquire)
    }

    /// Deliver an access event to any installed observers.
    pub(crate) fn observe(&self, event: AccessEvent) {
        if let Some(obs) = &self.inner.config.observer {
            obs.on_event(&event);
        }
        if let Some(obs) = self.inner.late_observer.read().as_ref() {
            obs.on_event(&event);
        }
    }

    /// Charge one client↔server round trip.
    pub(crate) fn charge_statement(&self) {
        // Every simulated SQL round trip is a potential preemption point
        // under the deterministic scheduler (no-op otherwise).
        adhoc_sim::sched::yield_point(adhoc_sim::sched::SchedPoint::DbStatement);
        self.inner.statements.fetch_add(1, Ordering::Relaxed);
        self.inner
            .config
            .latency
            .charge(&*self.inner.config.clock, Cost::SqlRoundTrip);
    }

    /// The write-ahead log, when the configuration asked for one
    /// ([`DbConfig::with_wal`](crate::engine::DbConfig::with_wal)).
    pub fn wal(&self) -> Option<&Wal> {
        self.inner.wal.as_ref()
    }

    /// Install one recovered row version (boot-time WAL replay). Bypasses
    /// the statement path entirely — no yield points, no latency charges,
    /// no observers — and keeps the table indexes (including the
    /// auto-increment cursor, via `apply_index`'s `note_id`) in step with
    /// the restored chains.
    pub(crate) fn install_recovered(
        &self,
        table: &Table,
        id: i64,
        commit_ts: CommitTs,
        row: Option<Row>,
    ) {
        let mut shard = self.inner.shards[shard_of(table.id, id)].lock();
        let chain = shard.rows.entry((table.id, id)).or_default();
        let old = chain.latest();
        table.apply_index(id, old, row.as_ref());
        chain.push(RowVersion {
            commit_ts,
            data: row,
        });
    }

    /// Advance the timestamp frontiers to cover a recovered commit (and
    /// invalidate any cached timestamp blocks that now sit below them), so
    /// post-recovery commits draw fresh timestamps and new snapshots see
    /// every recovered version.
    pub(crate) fn note_recovered_ts(&self, ts: CommitTs) {
        self.inner.epoch.note_recovered(ts);
    }

    /// Charge the durable-commit flush (only when configured durable).
    pub(crate) fn charge_flush(&self) {
        if self.inner.config.durable {
            self.inner
                .config
                .latency
                .charge(&*self.inner.config.clock, Cost::DurableFlush);
        }
    }

    /// Append a committed footprint to the logs of the shards it wrote
    /// (`guards` must cover `writes`) and amortizedly prune entries no
    /// active snapshot can still conflict with. The committing transaction
    /// is still registered, so the pruning floor is at most its snapshot.
    pub(crate) fn log_commit(
        &self,
        entry: Arc<CommittedTxn>,
        writes: ShardSet,
        guards: &mut [(usize, MutexGuard<'_, Shard>)],
    ) {
        let mut floor: Option<CommitTs> = None;
        for (idx, shard) in guards.iter_mut() {
            if !writes.contains(*idx) {
                continue;
            }
            shard.log.push_back(Arc::clone(&entry));
            shard.appends_since_prune += 1;
            if shard.appends_since_prune >= PRUNE_EVERY {
                shard.appends_since_prune = 0;
                let min = *floor.get_or_insert_with(|| {
                    // Every entry with ts <= every active snapshot is
                    // invisible to all future certifications: snapshots are
                    // monotone, so the current minimum is a safe floor.
                    self.min_active_snapshot().unwrap_or(entry.commit_ts)
                });
                while shard
                    .log
                    .front()
                    .map(|e| e.commit_ts <= min)
                    .unwrap_or(false)
                {
                    shard.log.pop_front();
                }
            }
        }
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("profile", &self.inner.config.profile)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Opaque session identifier for advisory locks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub(crate) TxnId);
