//! Deterministic, seeded fault injection.
//!
//! §3.4 of the paper finds that failure handling is the weakest part of ad
//! hoc transactions: 44 of the 91 studied cases simply crash, and the rest
//! split across four strategies (error return, DBT-piggybacked rollback,
//! manual rollback, post-hoc repair). Exercising those paths requires
//! *injecting* the failures the real deployments hit — lost replies,
//! connection errors, latency spikes that outlive a lease, cache restarts,
//! commit-time crashes — and doing so **reproducibly**, so a failing
//! interleaving can be replayed bit-for-bit from its seed.
//!
//! A [`FaultPlan`] is a shared, cloneable schedule of [`FaultRule`]s. The
//! substrates ask it to [`arm`](FaultPlan::arm) each fault-eligible
//! operation; the plan deterministically decides whether a fault fires
//! there. Probabilistic rules hash `(seed, rule, class, op index)` with the
//! same SplitMix-style mixer as [`crate::rng::for_worker`], so the decision
//! for a given operation index never depends on thread interleaving or on
//! how many random numbers anyone else has drawn.
//!
//! Every fired fault is appended to an internal log ([`FaultPlan::log`])
//! and forwarded to an optional listener, which is how the hazard monitor
//! in `adhoc-core` records injections without this crate depending on it.

use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The category of operation a fault can attach to.
///
/// Each class has its own operation counter inside the plan, so "the third
/// KV command" is a stable coordinate regardless of how many database
/// commits happen around it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// One key-value command (one client round trip).
    KvCommand,
    /// One storage-engine commit attempt.
    DbCommit,
    /// One storage-engine statement (the client↔DB request path before
    /// commit — where a network partition surfaces as a failed statement).
    DbStatement,
}

/// Number of [`OpClass`] variants (sizes the per-class counters).
const OP_CLASSES: usize = 3;

impl OpClass {
    fn index(self) -> usize {
        match self {
            OpClass::KvCommand => 0,
            OpClass::DbCommit => 1,
            OpClass::DbStatement => 2,
        }
    }

    /// Human-readable class name.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::KvCommand => "kv-command",
            OpClass::DbCommit => "db-commit",
            OpClass::DbStatement => "db-statement",
        }
    }
}

/// What goes wrong when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// KV: the command is applied server-side but the reply never arrives —
    /// the ambiguous-`SETNX` case (§3.4.1): the caller cannot tell an
    /// acquired lock from a failed acquisition.
    ReplyLost,
    /// KV: the connection drops before the command reaches the server;
    /// nothing is applied.
    ConnError,
    /// KV: the command succeeds but only after an injected delay — a GC
    /// pause or network stall that can outlive a lease TTL (the Mastodon
    /// expiry hazard, §4.1.1 \[65\]).
    LatencySpike,
    /// KV: the store restarts before serving the command, losing every
    /// volatile (TTL'd) entry — leases evaporate, plain keys survive the
    /// way an RDB-backed Redis would restore them.
    StoreRestart,
    /// DB: the commit is rejected and rolled back; the engine reports the
    /// failure honestly (nothing became durable).
    CommitFailed,
    /// DB: the commit becomes durable but the connection dies before the
    /// acknowledgement — the client sees an error for a transaction that
    /// actually happened.
    CrashAfterDurable,
    /// DB: the process dies after the commit record is written to the log
    /// buffer but *before* the fsync boundary — the write-ahead record is
    /// lost and recovery must roll the transaction back entirely.
    CrashBeforeDurable,
    /// DB: the process dies mid-flush, leaving a torn (partial) commit
    /// record on the durable medium — recovery must detect the bad frame
    /// via its checksum and truncate the tail.
    TornWrite,
    /// KV: client→server half of the link is down — the request is dropped
    /// before it reaches the store, nothing is applied, and the client sees
    /// a connection error. One direction of an asymmetric partition.
    PartitionInbound,
    /// KV: server→client half of the link is down — the request arrives and
    /// is applied, but the reply is dropped. The other direction of an
    /// asymmetric partition: indistinguishable from [`PartitionInbound`] at
    /// the client, opposite server-side truth.
    ///
    /// [`PartitionInbound`]: FaultKind::PartitionInbound
    PartitionOutbound,
    /// KV: asymmetric one-way delay — the request arrives on time and is
    /// applied at the original instant, but the *reply* is delayed by the
    /// rule's `delay`. The client resumes late while the server-side state
    /// (and any TTL it started) is already `delay` old.
    ReplyDelay,
    /// KV: the store serves this command with its clock skewed *forward*
    /// by the rule's `delay` — TTLs evaluated under the skew expire early,
    /// so a lease the client believes it still holds is already reaped
    /// server-side (the lease-expiry hazard without any real delay).
    ClockSkew,
    /// DB: the client↔DB link is partitioned at a statement boundary — the
    /// statement never reaches the engine. Unlike a commit-time
    /// [`CommitFailed`](FaultKind::CommitFailed) there is no ambiguity:
    /// nothing was submitted for commit, so re-running the transaction is
    /// safe.
    DbPartitioned,
}

impl FaultKind {
    /// Human-readable kind name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::ReplyLost => "reply-lost",
            FaultKind::ConnError => "conn-error",
            FaultKind::LatencySpike => "latency-spike",
            FaultKind::StoreRestart => "store-restart",
            FaultKind::CommitFailed => "commit-failed",
            FaultKind::CrashAfterDurable => "crash-after-durable",
            FaultKind::CrashBeforeDurable => "crash-before-durable",
            FaultKind::TornWrite => "torn-write",
            FaultKind::PartitionInbound => "partition-inbound",
            FaultKind::PartitionOutbound => "partition-outbound",
            FaultKind::ReplyDelay => "reply-delay",
            FaultKind::ClockSkew => "clock-skew",
            FaultKind::DbPartitioned => "db-partitioned",
        }
    }

    /// The operation class this kind of fault applies to.
    pub fn class(self) -> OpClass {
        match self {
            FaultKind::ReplyLost
            | FaultKind::ConnError
            | FaultKind::LatencySpike
            | FaultKind::StoreRestart
            | FaultKind::PartitionInbound
            | FaultKind::PartitionOutbound
            | FaultKind::ReplyDelay
            | FaultKind::ClockSkew => OpClass::KvCommand,
            FaultKind::CommitFailed
            | FaultKind::CrashAfterDurable
            | FaultKind::CrashBeforeDurable
            | FaultKind::TornWrite => OpClass::DbCommit,
            FaultKind::DbPartitioned => OpClass::DbStatement,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// When a rule fires.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Trigger {
    /// Fire at exactly these operation indices (0-based, per class).
    AtOps(Vec<u64>),
    /// Fire with this probability at every operation, decided by hashing
    /// `(seed, rule, class, op index)`. Stored in parts-per-2^32 so the
    /// trigger stays `Eq` and float-free.
    Probability(u32),
}

/// One scheduled failure: a kind, a trigger, and an optional budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    kind: FaultKind,
    trigger: Trigger,
    /// Stop firing after this many injections (`None` = unlimited).
    max_fires: Option<u32>,
    /// Injected delay (latency spikes, reply delays) or clock skew.
    delay: Duration,
    /// Virtual-clock window `[start, end)` the rule is live in. Windowed
    /// rules only match when armed through [`FaultPlan::arm_at`] with a
    /// time inside the window; see [`FaultRule::during`].
    window: Option<(Duration, Duration)>,
}

impl FaultRule {
    /// A rule that fires `kind` at exactly the given per-class operation
    /// indices (0-based).
    pub fn at_ops(kind: FaultKind, ops: &[u64]) -> Self {
        Self {
            kind,
            trigger: Trigger::AtOps(ops.to_vec()),
            max_fires: None,
            delay: Duration::ZERO,
            window: None,
        }
    }

    /// A rule that fires `kind` with probability `p` (clamped to `[0, 1]`)
    /// at every operation of its class.
    pub fn with_probability(kind: FaultKind, p: f64) -> Self {
        let clamped = p.clamp(0.0, 1.0);
        Self {
            kind,
            trigger: Trigger::Probability((clamped * f64::from(u32::MAX)) as u32),
            max_fires: None,
            delay: Duration::ZERO,
            window: None,
        }
    }

    /// Cap the number of times this rule may fire.
    pub fn max_fires(mut self, n: u32) -> Self {
        self.max_fires = Some(n);
        self
    }

    /// Set the injected delay ([`LatencySpike`], [`ReplyDelay`]) or the
    /// forward clock skew ([`ClockSkew`]).
    ///
    /// [`LatencySpike`]: FaultKind::LatencySpike
    /// [`ReplyDelay`]: FaultKind::ReplyDelay
    /// [`ClockSkew`]: FaultKind::ClockSkew
    pub fn delay(mut self, d: Duration) -> Self {
        self.delay = d;
        self
    }

    /// Restrict the rule to the virtual-clock window `[start, end)` — the
    /// shape of a real outage, which begins and heals at points in *time*
    /// rather than at operation counts. A windowed rule matches only when
    /// the substrate arms through [`FaultPlan::arm_at`] with a time inside
    /// the window; [`FaultPlan::arm`] (no time) never matches it.
    pub fn during(mut self, start: Duration, end: Duration) -> Self {
        self.window = Some((start, end));
        self
    }

    /// A correlated fault *storm*: one windowed probability rule per kind,
    /// all sharing the same window and probability — the simultaneous,
    /// correlated failures (partition + delay + skew at once) that trigger
    /// metastable collapse, as opposed to independent single faults.
    pub fn storm(kinds: &[FaultKind], p: f64, start: Duration, end: Duration) -> Vec<Self> {
        kinds
            .iter()
            .map(|&kind| Self::with_probability(kind, p).during(start, end))
            .collect()
    }
}

/// One injected fault, as recorded in the plan's log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Index of the rule (in plan order) that fired.
    pub rule: usize,
    /// The operation class the fault attached to.
    pub class: OpClass,
    /// The per-class operation index (0-based) at which it fired.
    pub op_index: u64,
    /// What went wrong.
    pub kind: FaultKind,
    /// Injected delay (zero unless the kind is a latency spike).
    pub delay: Duration,
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {} op #{}",
            self.kind.name(),
            self.class.name(),
            self.op_index
        )?;
        if !self.delay.is_zero() {
            write!(f, " (+{:?})", self.delay)?;
        }
        Ok(())
    }
}

/// The fault a substrate must act on for the current operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// What to inject.
    pub kind: FaultKind,
    /// Delay to impose (zero unless the kind is a latency spike).
    pub delay: Duration,
    /// The per-class operation index the fault fired at.
    pub op_index: u64,
}

/// Callback invoked synchronously for every injected fault.
pub type FaultListener = Arc<dyn Fn(&FaultRecord) + Send + Sync>;

struct RuleState {
    rule: FaultRule,
    fires: AtomicU32,
}

struct PlanInner {
    seed: u64,
    rules: Vec<RuleState>,
    /// Per-[`OpClass`] operation counters (indexed by `OpClass::index`).
    counters: [AtomicU64; OP_CLASSES],
    enabled: AtomicBool,
    log: Mutex<Vec<FaultRecord>>,
    listener: Mutex<Option<FaultListener>>,
}

/// A shared, deterministic fault schedule. Cheap to clone.
///
/// Build one with [`FaultPlan::new`], add [`FaultRule`]s, hand clones to the
/// KV client (`Client::with_faults`) and/or database
/// (`Database::inject_faults`), then [`enable`](FaultPlan::enable) it once
/// fault-free setup (schema creation, seeding) is done. Disabled plans
/// neither fire nor advance operation counters, so the op indices named by
/// rules count only operations issued while the plan is live.
#[derive(Clone)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
}

impl FaultPlan {
    /// An *enabled* plan with the given seed and rules.
    pub fn new(seed: u64, rules: Vec<FaultRule>) -> Self {
        Self {
            inner: Arc::new(PlanInner {
                seed,
                rules: rules
                    .into_iter()
                    .map(|rule| RuleState {
                        rule,
                        fires: AtomicU32::new(0),
                    })
                    .collect(),
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                enabled: AtomicBool::new(true),
                log: Mutex::new(Vec::new()),
                listener: Mutex::new(None),
            }),
        }
    }

    /// A plan created disabled; call [`enable`](FaultPlan::enable) after
    /// fault-free setup.
    pub fn new_disabled(seed: u64, rules: Vec<FaultRule>) -> Self {
        let plan = Self::new(seed, rules);
        plan.disable();
        plan
    }

    /// Start injecting (and counting) operations.
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::SeqCst);
    }

    /// Stop injecting; operations are not counted while disabled.
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::SeqCst);
    }

    /// Install a listener invoked synchronously on every injection. The
    /// hazard monitor uses this to fold injected faults into its report.
    pub fn set_listener(&self, listener: FaultListener) {
        *self.inner.listener.lock() = Some(listener);
    }

    /// Deterministic per-operation coin flip: a pure function of
    /// `(seed, rule, class, op index)` — no shared RNG stream, so thread
    /// interleaving cannot change any individual decision.
    fn roll(&self, rule: usize, class: OpClass, op: u64) -> u32 {
        let mut z = self
            .inner
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((rule as u64 + 1).wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add((class.index() as u64 + 1).wrapping_mul(0x94d0_49bb_1331_11eb))
            .wrapping_add(op.wrapping_mul(0x2545_f491_4f6c_dd1d));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 32) as u32
    }

    /// Called by a substrate for each fault-eligible operation of `class`.
    ///
    /// Advances the class's operation counter and returns the fault to
    /// inject there, if any (first matching rule wins). Returns `None`
    /// without counting when the plan is disabled. Window-gated rules
    /// never match through this entry point — time-aware substrates use
    /// [`arm_at`](FaultPlan::arm_at).
    pub fn arm(&self, class: OpClass) -> Option<InjectedFault> {
        self.arm_inner(class, None)
    }

    /// Time-aware [`arm`](FaultPlan::arm): `now` is the substrate's virtual
    /// clock reading, checked against each rule's
    /// [`during`](FaultRule::during) window. Un-windowed rules behave
    /// exactly as under `arm`, so passing a time is always safe.
    pub fn arm_at(&self, class: OpClass, now: Duration) -> Option<InjectedFault> {
        self.arm_inner(class, Some(now))
    }

    fn arm_inner(&self, class: OpClass, now: Option<Duration>) -> Option<InjectedFault> {
        if !self.inner.enabled.load(Ordering::SeqCst) {
            return None;
        }
        let op = self.inner.counters[class.index()].fetch_add(1, Ordering::SeqCst);
        for (idx, state) in self.inner.rules.iter().enumerate() {
            if state.rule.kind.class() != class {
                continue;
            }
            if let Some((start, end)) = state.rule.window {
                match now {
                    Some(t) if t >= start && t < end => {}
                    _ => continue,
                }
            }
            let hit = match &state.rule.trigger {
                Trigger::AtOps(ops) => ops.contains(&op),
                Trigger::Probability(ppm) => self.roll(idx, class, op) < *ppm,
            };
            if !hit {
                continue;
            }
            if let Some(cap) = state.rule.max_fires {
                // Reserve a firing slot; losers under the cap put it back.
                if state.fires.fetch_add(1, Ordering::SeqCst) >= cap {
                    state.fires.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
            } else {
                state.fires.fetch_add(1, Ordering::SeqCst);
            }
            let record = FaultRecord {
                rule: idx,
                class,
                op_index: op,
                kind: state.rule.kind,
                delay: state.rule.delay,
            };
            self.inner.log.lock().push(record.clone());
            let listener = self.inner.listener.lock().clone();
            if let Some(l) = listener {
                l(&record);
            }
            return Some(InjectedFault {
                kind: record.kind,
                delay: record.delay,
                op_index: op,
            });
        }
        None
    }

    /// Every fault injected so far, in firing order.
    pub fn log(&self) -> Vec<FaultRecord> {
        self.inner.log.lock().clone()
    }

    /// Total number of faults injected so far.
    pub fn fired(&self) -> usize {
        self.inner.log.lock().len()
    }

    /// Operations of `class` seen while enabled.
    pub fn ops_seen(&self, class: OpClass) -> u64 {
        self.inner.counters[class.index()].load(Ordering::SeqCst)
    }

    /// The seed the plan was built with.
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.inner.seed)
            .field("rules", &self.inner.rules.len())
            .field("fired", &self.fired())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_ops_rule_fires_exactly_there() {
        let plan = FaultPlan::new(1, vec![FaultRule::at_ops(FaultKind::ConnError, &[1, 3])]);
        let hits: Vec<bool> = (0..5)
            .map(|_| plan.arm(OpClass::KvCommand).is_some())
            .collect();
        assert_eq!(hits, vec![false, true, false, true, false]);
        assert_eq!(plan.fired(), 2);
        assert_eq!(plan.log()[0].op_index, 1);
    }

    #[test]
    fn classes_have_independent_counters() {
        let plan = FaultPlan::new(
            1,
            vec![
                FaultRule::at_ops(FaultKind::ConnError, &[0]),
                FaultRule::at_ops(FaultKind::CommitFailed, &[0]),
            ],
        );
        // Burn a KV op first; the DB counter is untouched.
        assert!(plan.arm(OpClass::KvCommand).is_some());
        assert!(plan.arm(OpClass::DbCommit).is_some());
        assert_eq!(plan.ops_seen(OpClass::KvCommand), 1);
        assert_eq!(plan.ops_seen(OpClass::DbCommit), 1);
    }

    #[test]
    fn kind_class_mismatch_never_fires() {
        let plan = FaultPlan::new(1, vec![FaultRule::at_ops(FaultKind::CommitFailed, &[0])]);
        assert!(plan.arm(OpClass::KvCommand).is_none());
    }

    #[test]
    fn probability_is_deterministic_for_a_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(
                seed,
                vec![FaultRule::with_probability(FaultKind::ConnError, 0.3)],
            );
            (0..64)
                .map(|_| plan.arm(OpClass::KvCommand).is_some())
                .collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
        let fired = run(42).iter().filter(|h| **h).count();
        assert!((5..30).contains(&fired), "p=0.3 over 64 ops, got {fired}");
    }

    #[test]
    fn probability_extremes() {
        let never = FaultPlan::new(
            7,
            vec![FaultRule::with_probability(FaultKind::ConnError, 0.0)],
        );
        let always = FaultPlan::new(
            7,
            vec![FaultRule::with_probability(FaultKind::ConnError, 1.0)],
        );
        for _ in 0..32 {
            assert!(never.arm(OpClass::KvCommand).is_none());
            assert!(always.arm(OpClass::KvCommand).is_some());
        }
    }

    #[test]
    fn max_fires_caps_injections() {
        let plan = FaultPlan::new(
            7,
            vec![FaultRule::with_probability(FaultKind::ConnError, 1.0).max_fires(2)],
        );
        let fired = (0..10)
            .filter(|_| plan.arm(OpClass::KvCommand).is_some())
            .count();
        assert_eq!(fired, 2);
    }

    #[test]
    fn disabled_plan_neither_fires_nor_counts() {
        let plan = FaultPlan::new_disabled(1, vec![FaultRule::at_ops(FaultKind::ConnError, &[0])]);
        assert!(plan.arm(OpClass::KvCommand).is_none());
        assert_eq!(plan.ops_seen(OpClass::KvCommand), 0);
        plan.enable();
        assert!(plan.arm(OpClass::KvCommand).is_some());
    }

    #[test]
    fn overlapping_rules_first_match_wins_until_capped() {
        let plan = FaultPlan::new(
            1,
            vec![
                FaultRule::at_ops(FaultKind::ConnError, &[0, 1]).max_fires(1),
                FaultRule::at_ops(FaultKind::ReplyLost, &[0, 1, 2]),
            ],
        );
        // Op 0: both rules match; plan order decides.
        assert_eq!(
            plan.arm(OpClass::KvCommand).unwrap().kind,
            FaultKind::ConnError
        );
        // Op 1: rule 0 still matches but its budget is spent — the op falls
        // through to the next matching rule instead of being swallowed.
        assert_eq!(
            plan.arm(OpClass::KvCommand).unwrap().kind,
            FaultKind::ReplyLost
        );
        // Op 2: only rule 1 matches.
        assert_eq!(
            plan.arm(OpClass::KvCommand).unwrap().kind,
            FaultKind::ReplyLost
        );
        let rules: Vec<usize> = plan.log().iter().map(|r| r.rule).collect();
        assert_eq!(rules, vec![0, 1, 1]);
    }

    #[test]
    fn disable_window_does_not_consume_op_indices() {
        // The rule names "op 1"; operations issued while the plan is
        // disabled must not advance toward that coordinate.
        let plan = FaultPlan::new(1, vec![FaultRule::at_ops(FaultKind::ConnError, &[1])]);
        assert!(plan.arm(OpClass::KvCommand).is_none()); // op 0
        plan.disable();
        for _ in 0..5 {
            assert!(plan.arm(OpClass::KvCommand).is_none()); // uncounted
        }
        plan.enable();
        assert!(plan.arm(OpClass::KvCommand).is_some(), "this is op 1");
        assert_eq!(plan.ops_seen(OpClass::KvCommand), 2);
    }

    #[test]
    fn at_ops_hits_exact_boundaries_only() {
        // Index 0 (the very first operation) and an interior index, with
        // no off-by-one bleed into the neighbors.
        let plan = FaultPlan::new(1, vec![FaultRule::at_ops(FaultKind::ConnError, &[0, 4])]);
        let hits: Vec<bool> = (0..8)
            .map(|_| plan.arm(OpClass::KvCommand).is_some())
            .collect();
        assert_eq!(
            hits,
            vec![true, false, false, false, true, false, false, false]
        );
        assert_eq!(plan.ops_seen(OpClass::KvCommand), 8);
    }

    #[test]
    fn max_fires_zero_never_fires_but_still_counts_ops() {
        let plan = FaultPlan::new(
            1,
            vec![FaultRule::with_probability(FaultKind::ConnError, 1.0).max_fires(0)],
        );
        for _ in 0..4 {
            assert!(plan.arm(OpClass::KvCommand).is_none());
        }
        assert_eq!(plan.fired(), 0);
        assert_eq!(plan.ops_seen(OpClass::KvCommand), 4);
    }

    #[test]
    fn interleaved_classes_keep_rule_coordinates_stable() {
        // "KV op 2" stays KV op 2 no matter how many DB commits happen
        // in between — the per-class counters are the whole point.
        let plan = FaultPlan::new(1, vec![FaultRule::at_ops(FaultKind::ConnError, &[2])]);
        assert!(plan.arm(OpClass::KvCommand).is_none()); // kv 0
        assert!(plan.arm(OpClass::DbCommit).is_none()); // db 0
        assert!(plan.arm(OpClass::DbCommit).is_none()); // db 1
        assert!(plan.arm(OpClass::KvCommand).is_none()); // kv 1
        assert!(plan.arm(OpClass::KvCommand).is_some(), "kv 2 fires");
    }

    #[test]
    fn listener_sees_every_record() {
        let plan = FaultPlan::new(
            1,
            vec![FaultRule::at_ops(FaultKind::LatencySpike, &[0]).delay(Duration::from_millis(50))],
        );
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        plan.set_listener(Arc::new(move |r: &FaultRecord| {
            sink.lock().push(r.clone());
        }));
        let fault = plan.arm(OpClass::KvCommand).expect("rule at op 0");
        assert_eq!(fault.delay, Duration::from_millis(50));
        assert_eq!(seen.lock().as_slice(), plan.log().as_slice());
    }

    #[test]
    fn windowed_rule_fires_only_inside_its_window() {
        let ms = Duration::from_millis;
        let plan = FaultPlan::new(
            1,
            vec![
                FaultRule::with_probability(FaultKind::PartitionInbound, 1.0)
                    .during(ms(100), ms(200)),
            ],
        );
        assert!(plan.arm_at(OpClass::KvCommand, ms(50)).is_none());
        assert!(plan.arm_at(OpClass::KvCommand, ms(100)).is_some());
        assert!(plan.arm_at(OpClass::KvCommand, ms(199)).is_some());
        assert!(
            plan.arm_at(OpClass::KvCommand, ms(200)).is_none(),
            "end is exclusive"
        );
        // Timeless arming can never hit a windowed rule.
        assert!(plan.arm(OpClass::KvCommand).is_none());
        // Ops outside the window still advanced the counter.
        assert_eq!(plan.ops_seen(OpClass::KvCommand), 5);
    }

    #[test]
    fn storm_rules_are_correlated_in_one_window() {
        let ms = Duration::from_millis;
        let kinds = [
            FaultKind::PartitionInbound,
            FaultKind::PartitionOutbound,
            FaultKind::ClockSkew,
        ];
        let plan = FaultPlan::new(7, FaultRule::storm(&kinds, 1.0, ms(10), ms(20)));
        assert!(plan.arm_at(OpClass::KvCommand, ms(5)).is_none());
        let hit = plan
            .arm_at(OpClass::KvCommand, ms(15))
            .expect("inside the storm");
        assert_eq!(hit.kind, FaultKind::PartitionInbound, "first rule wins");
        assert!(
            plan.arm_at(OpClass::KvCommand, ms(25)).is_none(),
            "storm healed"
        );
    }

    #[test]
    fn db_statement_class_has_its_own_counter_and_kind() {
        let plan = FaultPlan::new(1, vec![FaultRule::at_ops(FaultKind::DbPartitioned, &[1])]);
        assert!(plan.arm(OpClass::DbStatement).is_none()); // stmt 0
        assert!(plan.arm(OpClass::KvCommand).is_none()); // unrelated class
        assert!(plan.arm(OpClass::DbCommit).is_none()); // unrelated class
        assert!(plan.arm(OpClass::DbStatement).is_some(), "stmt 1 fires");
        assert_eq!(plan.ops_seen(OpClass::DbStatement), 2);
        assert_eq!(FaultKind::DbPartitioned.class(), OpClass::DbStatement);
    }

    #[test]
    fn partition_kinds_attach_to_kv_commands() {
        for kind in [
            FaultKind::PartitionInbound,
            FaultKind::PartitionOutbound,
            FaultKind::ReplyDelay,
            FaultKind::ClockSkew,
        ] {
            assert_eq!(kind.class(), OpClass::KvCommand, "{kind}");
        }
    }

    #[test]
    fn records_render_compactly() {
        let r = FaultRecord {
            rule: 0,
            class: OpClass::KvCommand,
            op_index: 3,
            kind: FaultKind::LatencySpike,
            delay: Duration::from_millis(2),
        };
        assert_eq!(r.to_string(), "latency-spike at kv-command op #3 (+2ms)");
    }
}
