//! Application metadata (Table 2) and corpus-wide accessors.

use crate::case::{App, Case};
use crate::corpus_data::CASES;

/// One Table 2 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppInfo {
    /// The application.
    pub app: App,
    /// Application category (forum, e-commerce, …).
    pub category: &'static str,
    /// Implementation language.
    pub language: &'static str,
    /// ORM framework used.
    pub orm: &'static str,
    /// Supported RDBMSs ("+" marks additional engines beyond those listed).
    pub rdbms: &'static str,
    /// GitHub stars at study time, in thousands ×10 (33.8k → 338).
    pub stars_tenths_k: u32,
    /// GitHub contributor count at study time.
    pub contributors: u32,
    /// Core APIs using ad hoc transactions (Table 3's middle column).
    pub core_apis: &'static str,
}

impl AppInfo {
    /// Render the star count the way Table 2 prints it.
    pub fn stars(&self) -> String {
        format!("{}.{}k", self.stars_tenths_k / 10, self.stars_tenths_k % 10)
    }
}

/// Table 2, in the paper's row order.
pub static APPLICATIONS: &[AppInfo] = &[
    AppInfo {
        app: App::Discourse,
        category: "Forum",
        language: "Ruby",
        orm: "Active Record",
        rdbms: "PG",
        stars_tenths_k: 338,
        contributors: 776,
        core_apis: "Posting, image upload, notification.",
    },
    AppInfo {
        app: App::Mastodon,
        category: "Social network",
        language: "Ruby",
        orm: "Active Record",
        rdbms: "PG",
        stars_tenths_k: 246,
        contributors: 644,
        core_apis: "Posting, polls, messaging, viewing.",
    },
    AppInfo {
        app: App::Spree,
        category: "E-commerce",
        language: "Ruby",
        orm: "Active Record",
        rdbms: "PG, MY",
        stars_tenths_k: 114,
        contributors: 855,
        core_apis: "Check-out, cart modification.",
    },
    AppInfo {
        app: App::Redmine,
        category: "Project mgmt.",
        language: "Ruby",
        orm: "Active Record",
        rdbms: "PG, MY, +",
        stars_tenths_k: 42,
        contributors: 8,
        core_apis: "Issue tracking, metadata mgmt., attachments.",
    },
    AppInfo {
        app: App::Broadleaf,
        category: "E-commerce",
        language: "Java",
        orm: "Hibernate",
        rdbms: "PG, MY, +",
        stars_tenths_k: 15,
        contributors: 73,
        core_apis: "Check-out, cart modification.",
    },
    AppInfo {
        app: App::ScmSuite,
        category: "Supply chain",
        language: "Java",
        orm: "Hibernate",
        rdbms: "PG, MY",
        stars_tenths_k: 15,
        contributors: 2,
        core_apis: "Account mgmt., merchandise info. tracking.",
    },
    AppInfo {
        app: App::JumpServer,
        category: "Access control",
        language: "Python",
        orm: "Django",
        rdbms: "PG, MY, +",
        stars_tenths_k: 168,
        contributors: 88,
        core_apis: "Granting privileges, asset updates.",
    },
    AppInfo {
        app: App::Saleor,
        category: "E-commerce",
        language: "Python",
        orm: "Django",
        rdbms: "PG, MY, +",
        stars_tenths_k: 139,
        contributors: 181,
        core_apis: "Check-out, payment, refund, stock mgmt.",
    },
];

/// Metadata for one application.
pub fn app_info(app: App) -> &'static AppInfo {
    APPLICATIONS
        .iter()
        .find(|i| i.app == app)
        .expect("all apps present in APPLICATIONS")
}

/// All cases for one application.
pub fn cases_for(app: App) -> Vec<&'static Case> {
    CASES.iter().filter(|c| c.app == app).collect()
}

/// Look a case up by id.
pub fn case(id: &str) -> Option<&'static Case> {
    CASES.iter().find(|c| c.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_all_eight_apps_in_order() {
        let order: Vec<App> = APPLICATIONS.iter().map(|i| i.app).collect();
        assert_eq!(order, App::all().to_vec());
    }

    #[test]
    fn star_rendering_matches_paper() {
        assert_eq!(app_info(App::Discourse).stars(), "33.8k");
        assert_eq!(app_info(App::Saleor).stars(), "13.9k");
        assert_eq!(app_info(App::ScmSuite).stars(), "1.5k");
    }

    #[test]
    fn lookup_by_id_and_app() {
        assert!(case("discourse/create-post").is_some());
        assert!(case("nope/nope").is_none());
        assert_eq!(cases_for(App::JumpServer).len(), 5);
    }

    #[test]
    fn case_ids_are_unique() {
        let mut ids: Vec<&str> = CASES.iter().map(|c| c.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate case ids");
    }
}
