//! SCM Suite (Java/Hibernate): account balances and merchandise tracking.
//!
//! Scenarios reproduced:
//! * Account balance adjustments coordinated with the Java `synchronized`
//!   keyword (§3.2.1) — [`SyncLock`](adhoc_core::locks::SyncLock).
//! * **§4.1.1 (issue \[91\])** — synchronizing over *thread-local*
//!   ORM-mapped objects, so "conflicting threads acquire different locks
//!   and can never block each other"; inject
//!   `SyncLock::synchronize_on_thread_local()` to reproduce.
//! * Merchandise stock tracking with a hand-crafted version validation
//!   (SCM Suite's validations are all manual, §3.2.2).

use crate::{Mode, Result, DBT_RETRIES};
use adhoc_core::checker::{column_invariant, BootRecovery, Report};
use adhoc_core::locks::AdHocLock;
use adhoc_core::validation::{validated_write, CommitOutcome, ValidationCheck, ValidationStrategy};
use adhoc_orm::occ::run_occ;
use adhoc_orm::{EntityDef, Orm, OrmError, Registry};
use adhoc_storage::{Column, ColumnType, Database, DbError, IsolationLevel, Predicate, Schema};
use std::sync::Arc;

/// Create SCM Suite's tables and entity registry.
pub fn setup(db: &Database) -> Result<Orm> {
    db.create_table(Schema::new(
        "accounts",
        vec![
            Column::new("id", ColumnType::Int),
            Column::new("balance", ColumnType::Int),
        ],
        "id",
    )?)?;
    db.create_table(Schema::new(
        "merchandise",
        vec![
            Column::new("id", ColumnType::Int),
            Column::new("stock", ColumnType::Int),
            Column::new("version", ColumnType::Int),
        ],
        "id",
    )?)?;
    db.create_table(Schema::new(
        "settlements",
        vec![
            Column::new("id", ColumnType::Int),
            Column::new("total", ColumnType::Int),
        ],
        "id",
    )?)?;
    let registry = Registry::new()
        .register(EntityDef::new("accounts"))
        .register(EntityDef::new("merchandise"))
        .register(EntityDef::new("settlements"));
    Ok(Orm::new(db.clone(), registry))
}

/// The SCM Suite application model.
pub struct ScmSuite {
    orm: Orm,
    lock: Arc<dyn AdHocLock>,
    mode: Mode,
}

impl ScmSuite {
    /// Build the application model over `orm`, coordinating with `lock` in the given [`Mode`].
    pub fn new(orm: Orm, lock: Arc<dyn AdHocLock>, mode: Mode) -> Self {
        Self { orm, lock, mode }
    }

    /// The underlying ORM handle (for assertions and seeding).
    pub fn orm(&self) -> &Orm {
        &self.orm
    }

    /// Seed an account with an opening balance.
    pub fn seed_account(&self, id: i64, balance: i64) -> Result<()> {
        self.orm.create(
            "accounts",
            &[("id", id.into()), ("balance", balance.into())],
        )?;
        Ok(())
    }

    /// Seed a merchandise record with initial stock.
    pub fn seed_merchandise(&self, id: i64, stock: i64) -> Result<()> {
        self.orm.create(
            "merchandise",
            &[
                ("id", id.into()),
                ("stock", stock.into()),
                ("version", 0.into()),
            ],
        )?;
        Ok(())
    }

    /// Adjust an account balance (credit/debit), refusing overdrafts.
    pub fn adjust_balance(&self, account_id: i64, delta: i64) -> Result<bool> {
        match self.mode {
            Mode::Confluent => {
                // `balance >= 0` split by escrow: credits are pure
                // commutative deposits; debits reserve their amount off
                // the ledger first (one lock-free atomic) and only then
                // commit the delta. Concurrent debits never validate
                // against each other — they only coordinate when the
                // balance is nearly drained, and exhaustion is the
                // overdraft refusal, not a retry.
                let db = self.orm.db();
                if delta >= 0 {
                    db.escrow_deposit("accounts", account_id, "balance", delta)?;
                    return Ok(true);
                }
                let amount = -delta;
                let reservation = match db.escrow_reserve("accounts", account_id, "balance", amount)
                {
                    Ok(r) => r,
                    Err(DbError::EscrowExhausted { .. }) => return Ok(false),
                    Err(e) => return Err(e.into()),
                };
                std::thread::yield_now(); // business logic between R and W
                self.orm.transaction(|t| {
                    t.raw()
                        .add_delta("accounts", account_id, "balance", delta)?;
                    Ok(())
                })?;
                reservation.confirm();
                Ok(true)
            }
            Mode::Cured => {
                // §7 cure: optimistic RMW over just the `balance` field —
                // no `synchronized` monitor to mis-scope (§4.1.1 [91]).
                Ok(run_occ(&self.orm, &crate::cured_policy(), None, |occ| {
                    let account = occ
                        .read_fields(&self.orm, "accounts", account_id, &["balance"])?
                        .ok_or(OrmError::RecordNotFound {
                            entity: "accounts".into(),
                            id: account_id,
                        })?;
                    let balance = account.get_int("balance")?;
                    std::thread::yield_now(); // business logic between R and W
                    if balance + delta < 0 {
                        return Ok(false);
                    }
                    occ.stage_update(
                        "accounts",
                        account_id,
                        &[("balance", (balance + delta).into())],
                    );
                    Ok(true)
                })?)
            }
            Mode::AdHoc => {
                let guard = self.lock.lock(&format!("account:{account_id}"))?;
                let account = self.orm.find_required("accounts", account_id)?;
                let balance = account.get_int("balance")?;
                std::thread::yield_now(); // business logic between R and W
                let ok = if balance + delta >= 0 {
                    self.orm.transaction(|t| {
                        t.raw().update(
                            "accounts",
                            account_id,
                            &[("balance", (balance + delta).into())],
                        )?;
                        Ok(())
                    })?;
                    true
                } else {
                    false
                };
                guard.unlock()?;
                Ok(ok)
            }
            Mode::DatabaseTxn => {
                let schema = self.orm.db().schema("accounts")?;
                Ok(self.orm.db().run_with_retries(
                    IsolationLevel::Serializable,
                    DBT_RETRIES,
                    |t| {
                        let account = t.get("accounts", account_id)?.ok_or(DbError::NoSuchRow {
                            table: "accounts".into(),
                            id: account_id,
                        })?;
                        let balance = account.get_int(&schema, "balance")?;
                        if balance + delta < 0 {
                            return Ok(false);
                        }
                        t.update(
                            "accounts",
                            account_id,
                            &[("balance", (balance + delta).into())],
                        )?;
                        Ok(true)
                    },
                )?)
            }
        }
    }

    /// Transfer between accounts under two locks taken in id order (the
    /// consistent-order discipline of Finding 5 that keeps the studied
    /// multi-lock cases deadlock-free).
    pub fn transfer(&self, from: i64, to: i64, amount: i64) -> Result<bool> {
        assert!(amount >= 0);
        if self.mode.on_cured_layer() {
            // Transfers stay on the validated path even in Confluent mode:
            // atomic conservation across *two* rows is not expressible as
            // independent commutative deltas plus a single-row escrow.
            // §7 cure: no locks, no ordering discipline to get wrong —
            // both balances validate at commit, deadlock-free by design.
            return Ok(run_occ(&self.orm, &crate::cured_policy(), None, |occ| {
                let from_balance = occ
                    .read_fields(&self.orm, "accounts", from, &["balance"])?
                    .ok_or(OrmError::RecordNotFound {
                        entity: "accounts".into(),
                        id: from,
                    })?
                    .get_int("balance")?;
                if from_balance < amount {
                    return Ok(false);
                }
                let to_balance = occ
                    .read_fields(&self.orm, "accounts", to, &["balance"])?
                    .ok_or(OrmError::RecordNotFound {
                        entity: "accounts".into(),
                        id: to,
                    })?
                    .get_int("balance")?;
                occ.stage_update(
                    "accounts",
                    from,
                    &[("balance", (from_balance - amount).into())],
                );
                occ.stage_update("accounts", to, &[("balance", (to_balance + amount).into())]);
                Ok(true)
            })?);
        }
        let (first, second) = if from <= to { (from, to) } else { (to, from) };
        let g1 = self.lock.lock(&format!("account:{first}"))?;
        let g2 = self.lock.lock(&format!("account:{second}"))?;
        let from_balance = self
            .orm
            .find_required("accounts", from)?
            .get_int("balance")?;
        let ok = if from_balance >= amount {
            let to_balance = self.orm.find_required("accounts", to)?.get_int("balance")?;
            self.orm.transaction(|t| {
                t.raw().update(
                    "accounts",
                    from,
                    &[("balance", (from_balance - amount).into())],
                )?;
                t.raw()
                    .update("accounts", to, &[("balance", (to_balance + amount).into())])?;
                Ok(())
            })?;
            true
        } else {
            false
        };
        g2.unlock()?;
        g1.unlock()?;
        Ok(ok)
    }

    /// Update merchandise stock with SCM Suite's hand-crafted version
    /// validation (manual, §3.2.2). `atomic = false` reproduces the
    /// non-atomic validate-and-commit.
    pub fn track_stock(&self, id: i64, delta: i64, atomic: bool) -> Result<CommitOutcome> {
        if self.mode == Mode::Confluent {
            // Stock tracking has no bound to defend (receives and ships
            // are recorded as-is), so the version check SCM Suite
            // hand-crafted guards nothing: a commutative delta is the
            // whole operation, and concurrent adjustments merge instead
            // of invalidating each other.
            self.orm.transaction(|t| {
                t.raw().add_delta("merchandise", id, "stock", delta)?;
                Ok(())
            })?;
            return Ok(CommitOutcome::Committed);
        }
        if self.mode == Mode::Cured {
            // §7 cure: the ORM's validate-on-save replaces SCM Suite's
            // hand-crafted (and non-atomically appliable) version check.
            run_occ(&self.orm, &crate::cured_policy(), None, |occ| {
                let obj = occ
                    .read_fields(&self.orm, "merchandise", id, &["stock"])?
                    .ok_or(OrmError::RecordNotFound {
                        entity: "merchandise".into(),
                        id,
                    })?;
                let stock = obj.get_int("stock")?;
                occ.stage_update("merchandise", id, &[("stock", (stock + delta).into())]);
                Ok(())
            })?;
            return Ok(CommitOutcome::Committed);
        }
        let obj = self.orm.find_required("merchandise", id)?;
        let stock = obj.get_int("stock")?;
        let strategy = if atomic {
            ValidationStrategy::HandCraftedAtomic(ValidationCheck::Version {
                column: "version".into(),
            })
        } else {
            ValidationStrategy::HandCraftedNonAtomic {
                check: ValidationCheck::Version {
                    column: "version".into(),
                },
                pause_between: None,
            }
        };
        validated_write(
            &self.orm,
            &obj,
            &[("stock", (stock + delta).into())],
            &strategy,
        )
    }

    /// Transfer *without* the ordering discipline: locks taken in
    /// `from → to` order, so opposite-direction transfers can deadlock.
    /// With a plain lock they stall to the timeout; with
    /// [`WatchdogLock`](adhoc_core::locks::WatchdogLock) the victim gets an
    /// immediate retryable error and this method retries it — the
    /// database-transaction contract restored at the application-lock
    /// layer (§3.3.1 / Finding 5).
    pub fn transfer_unordered(&self, from: i64, to: i64, amount: i64) -> Result<bool> {
        assert!(amount >= 0);
        loop {
            let g1 = self.lock.lock(&format!("account:{from}"))?;
            let g2 = match self.lock.lock(&format!("account:{to}")) {
                Ok(g2) => g2,
                Err(adhoc_core::locks::LockError::Deadlock { .. }) => {
                    // We're the victim: release and retry, like a DBT.
                    g1.unlock()?;
                    std::thread::yield_now();
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            let from_balance = self
                .orm
                .find_required("accounts", from)?
                .get_int("balance")?;
            let ok = if from_balance >= amount {
                let to_balance = self.orm.find_required("accounts", to)?.get_int("balance")?;
                self.orm.transaction(|t| {
                    t.raw().update(
                        "accounts",
                        from,
                        &[("balance", (from_balance - amount).into())],
                    )?;
                    t.raw()
                        .update("accounts", to, &[("balance", (to_balance + amount).into())])?;
                    Ok(())
                })?;
                true
            } else {
                false
            };
            g2.unlock()?;
            g1.unlock()?;
            return Ok(ok);
        }
    }

    /// Run a settlement: snapshot the given accounts' balances and record
    /// their sum (the `scm-suite/settlement-run` case). One transaction at
    /// snapshot isolation, so transfers in flight cannot skew the sum.
    pub fn settle(&self, ids: &[i64]) -> Result<i64> {
        let schema = self.orm.db().schema("accounts")?;
        Ok(self
            .orm
            .db()
            .run_with_retries(IsolationLevel::RepeatableRead, DBT_RETRIES, |t| {
                let mut total = 0;
                for id in ids {
                    let account = t.get("accounts", *id)?.ok_or(DbError::NoSuchRow {
                        table: "accounts".into(),
                        id: *id,
                    })?;
                    total += account.get_int(&schema, "balance")?;
                }
                t.insert("settlements", &[("total", total.into())])?;
                Ok(total)
            })?)
    }

    /// The buggy settlement: each balance read in its own auto-committed
    /// statement. A transfer committing between two reads is counted on
    /// one side and missed on the other — read skew, a phantom sum.
    pub fn settle_unrepeatable(&self, ids: &[i64]) -> Result<i64> {
        let mut total = 0;
        for id in ids {
            total += self.balance(*id)?;
            std::thread::yield_now(); // transfers slip between reads
        }
        self.orm.create("settlements", &[("total", total.into())])?;
        Ok(total)
    }

    /// Current balance of an account.
    pub fn balance(&self, account_id: i64) -> Result<i64> {
        Ok(self
            .orm
            .find_required("accounts", account_id)?
            .get_int("balance")?)
    }

    /// Sum of the given accounts' balances (conservation checks).
    pub fn total_balance(&self, ids: &[i64]) -> Result<i64> {
        let mut total = 0;
        for id in ids {
            total += self.balance(*id)?;
        }
        Ok(total)
    }

    /// Run [`boot_fsck`] against this instance's database.
    pub fn recover_on_boot(&self) -> Report {
        boot_fsck().recover_on_boot(self.orm.db())
    }
}

/// SCM Suite's boot-time recovery pass. Oversold stock is
/// *detection-only*: a negative `stock` means goods were promised that do
/// not exist, and no database write can conjure them — the finding stays
/// in the report for an operator.
pub fn boot_fsck() -> BootRecovery {
    BootRecovery::new("scm_suite").rule(column_invariant(
        "merchandise",
        "scm:stock-non-negative",
        Predicate::ge("stock", 0),
        "stock is negative (oversold)",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_core::locks::SyncLock;
    use adhoc_storage::EngineProfile;

    fn fixture(mode: Mode, lock: Arc<dyn AdHocLock>) -> ScmSuite {
        let db = Database::in_memory(EngineProfile::MySqlLike);
        let orm = setup(&db).unwrap();
        ScmSuite::new(orm, lock, mode)
    }

    #[test]
    fn balance_adjustments_work_in_both_modes() {
        for mode in [Mode::AdHoc, Mode::DatabaseTxn] {
            let app = fixture(mode, Arc::new(SyncLock::new()));
            app.seed_account(1, 100).unwrap();
            assert!(app.adjust_balance(1, -40).unwrap());
            assert!(app.adjust_balance(1, 20).unwrap());
            assert!(!app.adjust_balance(1, -200).unwrap(), "{mode:?} overdraft");
            assert_eq!(app.balance(1).unwrap(), 80, "{mode:?}");
        }
    }

    #[test]
    fn concurrent_adjustments_are_exact_with_correct_sync() {
        for mode in [Mode::AdHoc, Mode::DatabaseTxn] {
            let app = Arc::new(fixture(mode, Arc::new(SyncLock::new())));
            app.seed_account(1, 0).unwrap();
            std::thread::scope(|s| {
                for _ in 0..8 {
                    let app = Arc::clone(&app);
                    s.spawn(move || {
                        for _ in 0..25 {
                            app.adjust_balance(1, 1).unwrap();
                        }
                    });
                }
            });
            assert_eq!(app.balance(1).unwrap(), 200, "{mode:?}");
        }
    }

    #[test]
    fn thread_local_synchronized_loses_updates() {
        // §4.1.1 [91]: the monitor is per-thread, so the RMWs interleave.
        let app = Arc::new(fixture(
            Mode::AdHoc,
            Arc::new(SyncLock::new().synchronize_on_thread_local()),
        ));
        app.seed_account(1, 0).unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let app = Arc::clone(&app);
                s.spawn(move || {
                    for _ in 0..50 {
                        app.adjust_balance(1, 1).unwrap();
                    }
                });
            }
        });
        let balance = app.balance(1).unwrap();
        assert!(
            balance < 400,
            "thread-local monitors must lose increments (got {balance})"
        );
    }

    #[test]
    fn transfers_conserve_money() {
        let app = Arc::new(fixture(Mode::AdHoc, Arc::new(SyncLock::new())));
        app.seed_account(1, 500).unwrap();
        app.seed_account(2, 500).unwrap();
        std::thread::scope(|s| {
            for t in 0..6 {
                let app = Arc::clone(&app);
                s.spawn(move || {
                    for _ in 0..20 {
                        if t % 2 == 0 {
                            app.transfer(1, 2, 3).unwrap();
                        } else {
                            app.transfer(2, 1, 3).unwrap();
                        }
                    }
                });
            }
        });
        assert_eq!(app.total_balance(&[1, 2]).unwrap(), 1000);
        assert!(app.balance(1).unwrap() >= 0);
        assert!(app.balance(2).unwrap() >= 0);
    }

    #[test]
    fn opposite_direction_transfers_do_not_deadlock() {
        // Finding 5: consistent lock ordering prevents deadlocks even with
        // opposite-direction transfers hammering the same pair.
        let app = Arc::new(fixture(Mode::AdHoc, Arc::new(SyncLock::new())));
        app.seed_account(1, 1000).unwrap();
        app.seed_account(2, 1000).unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let app = Arc::clone(&app);
                s.spawn(move || {
                    for _ in 0..50 {
                        let (from, to) = if t % 2 == 0 { (1, 2) } else { (2, 1) };
                        app.transfer(from, to, 1).unwrap();
                    }
                });
            }
        });
        assert_eq!(app.total_balance(&[1, 2]).unwrap(), 2000);
    }

    #[test]
    fn unordered_transfers_survive_via_the_watchdog() {
        use adhoc_core::locks::WatchdogLock;
        // No ordering discipline, opposite directions hammering the same
        // pair: the watchdog turns would-be stalls into immediate retries,
        // and money is conserved.
        let app = Arc::new(fixture(Mode::AdHoc, Arc::new(WatchdogLock::new())));
        app.seed_account(1, 1000).unwrap();
        app.seed_account(2, 1000).unwrap();
        let started = std::time::Instant::now();
        std::thread::scope(|s| {
            for t in 0..4 {
                let app = Arc::clone(&app);
                s.spawn(move || {
                    for _ in 0..25 {
                        let (from, to) = if t % 2 == 0 { (1, 2) } else { (2, 1) };
                        app.transfer_unordered(from, to, 1).unwrap();
                    }
                });
            }
        });
        assert_eq!(app.total_balance(&[1, 2]).unwrap(), 2000);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "victims retried immediately instead of stalling to timeouts"
        );
    }

    #[test]
    fn settlements_never_skew_under_concurrent_transfers() {
        let app = Arc::new(fixture(Mode::AdHoc, Arc::new(SyncLock::new())));
        app.seed_account(1, 500).unwrap();
        app.seed_account(2, 500).unwrap();
        let totals: Vec<i64> = std::thread::scope(|s| {
            for t in 0..4 {
                let app = Arc::clone(&app);
                s.spawn(move || {
                    for _ in 0..30 {
                        let (from, to) = if t % 2 == 0 { (1, 2) } else { (2, 1) };
                        app.transfer(from, to, 7).unwrap();
                    }
                });
            }
            let app = Arc::clone(&app);
            s.spawn(move || (0..20).map(|_| app.settle(&[1, 2]).unwrap()).collect())
                .join()
                .unwrap()
        });
        assert!(
            totals.iter().all(|t| *t == 1000),
            "snapshot settlements must conserve: {totals:?}"
        );
    }

    #[test]
    fn unrepeatable_settlement_can_skew() {
        let mut skewed = false;
        'outer: for _ in 0..50 {
            let app = Arc::new(fixture(Mode::AdHoc, Arc::new(SyncLock::new())));
            app.seed_account(1, 500).unwrap();
            app.seed_account(2, 500).unwrap();
            let totals: Vec<i64> = std::thread::scope(|s| {
                for t in 0..4 {
                    let app = Arc::clone(&app);
                    s.spawn(move || {
                        for _ in 0..30 {
                            let (from, to) = if t % 2 == 0 { (1, 2) } else { (2, 1) };
                            app.transfer(from, to, 7).unwrap();
                        }
                    });
                }
                let app = Arc::clone(&app);
                s.spawn(move || {
                    (0..20)
                        .map(|_| app.settle_unrepeatable(&[1, 2]).unwrap())
                        .collect()
                })
                .join()
                .unwrap()
            });
            if totals.iter().any(|t| *t != 1000) {
                skewed = true;
                break 'outer;
            }
        }
        assert!(skewed, "per-statement reads must be able to read-skew");
    }

    #[test]
    fn stock_tracking_validates() {
        let app = fixture(Mode::AdHoc, Arc::new(SyncLock::new()));
        app.seed_merchandise(1, 10).unwrap();
        assert_eq!(
            app.track_stock(1, 5, true).unwrap(),
            CommitOutcome::Committed
        );
        let m = app.orm.find_required("merchandise", 1).unwrap();
        assert_eq!(m.get_int("stock").unwrap(), 15);
        assert_eq!(m.get_int("version").unwrap(), 1);
        // Non-atomic also works sequentially.
        assert_eq!(
            app.track_stock(1, -3, false).unwrap(),
            CommitOutcome::Committed
        );
        assert_eq!(
            app.orm
                .find_required("merchandise", 1)
                .unwrap()
                .get_int("stock")
                .unwrap(),
            12
        );
    }
    #[test]
    fn account_row_footprints_are_localized_and_independent() {
        let app = fixture(Mode::AdHoc, Arc::new(SyncLock::new()));
        let fps: Vec<_> = (1..=6)
            .map(|id| {
                app.seed_account(id, 100).unwrap();
                crate::observed_footprint(app.orm(), |t| {
                    t.raw().update("accounts", id, &[("balance", 100.into())])?;
                    Ok(())
                })
                .unwrap()
                .1
            })
            .collect();
        crate::test_support::assert_localized_and_independent(&fps);
    }
}
