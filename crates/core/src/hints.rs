//! The §6 "proxy module for existing hints".
//!
//! Table 7a shows that engines disagree on which coordination hints exist
//! (explicit user/table/row locks, per-operation isolation) and on their
//! semantics. The paper proposes an application-level proxy that exposes
//! one interface and falls back gracefully — "the module should provide a
//! database table–based lock implementation as the fallback of explicit
//! user locks". [`HintProxy`] is that module.

use crate::locks::{AdHocLock, DbTableLock, Guard, LockError};
use crate::Result;
use adhoc_storage::{Database, LockMode, Transaction};

/// Capability flags for the engine behind the proxy (Table 7a rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HintSupport {
    /// Explicit user (advisory) locks: PostgreSQL, MySQL, Oracle.
    pub user_locks: bool,
    /// Explicit table locks.
    pub table_locks: bool,
    /// Explicit row locks (`SELECT … FOR UPDATE`).
    pub row_locks: bool,
    /// Per-operation isolation (SQL Server / Db2 table hints).
    pub per_op_isolation: bool,
}

impl HintSupport {
    /// Everything available (our engines implement all four).
    pub fn full() -> Self {
        Self {
            user_locks: true,
            table_locks: true,
            row_locks: true,
            per_op_isolation: true,
        }
    }

    /// An engine without advisory locks (e.g., SQL Server per Table 7a) —
    /// exercises the fallback path.
    pub fn without_user_locks() -> Self {
        Self {
            user_locks: false,
            ..Self::full()
        }
    }

    /// An engine without per-operation isolation (e.g., PostgreSQL per
    /// Table 7a).
    pub fn without_per_op_isolation() -> Self {
        Self {
            per_op_isolation: false,
            ..Self::full()
        }
    }
}

/// A held user-lock hint: advisory when the engine supports it, a
/// database-table lock otherwise.
pub enum UserLockGuard {
    /// Backed by the engine's advisory locks.
    Advisory {
        /// Database the session lives on.
        db: Database,
        /// The advisory-lock session.
        session: adhoc_storage::db::SessionId,
        /// Hashed lock key.
        key: i64,
        /// Whether release already happened.
        released: bool,
    },
    /// Backed by the database-table fallback lock.
    Fallback(Option<Guard>),
}

impl UserLockGuard {
    /// Release the lock.
    pub fn unlock(mut self) -> Result<()> {
        self.release()
    }

    fn release(&mut self) -> Result<()> {
        match self {
            UserLockGuard::Advisory {
                db,
                session,
                key,
                released,
            } => {
                if !*released {
                    *released = true;
                    db.advisory_unlock(*session, *key);
                    db.end_session(*session);
                }
                Ok(())
            }
            UserLockGuard::Fallback(guard) => {
                if let Some(g) = guard.take() {
                    g.unlock().map_err(crate::ToolkitError::from)?;
                }
                Ok(())
            }
        }
    }

    /// Which mechanism backs this guard (diagnostics / tests).
    pub fn mechanism(&self) -> &'static str {
        match self {
            UserLockGuard::Advisory { .. } => "advisory",
            UserLockGuard::Fallback(_) => "db-table-fallback",
        }
    }
}

impl Drop for UserLockGuard {
    fn drop(&mut self) {
        let _ = self.release();
    }
}

/// One portable interface over the engines' coordination hints.
pub struct HintProxy {
    db: Database,
    support: HintSupport,
    fallback: DbTableLock,
}

impl HintProxy {
    /// A proxy assuming full hint support (see [`HintSupport::full`]).
    pub fn new(db: Database) -> Self {
        Self {
            fallback: DbTableLock::new(db.clone()),
            support: HintSupport::full(),
            db,
        }
    }

    /// Pretend the engine lacks some hints, to exercise fallbacks.
    pub fn with_support(mut self, support: HintSupport) -> Self {
        self.support = support;
        self
    }

    /// Explicit user lock on an application-chosen key. Uses the engine's
    /// advisory locks when available; otherwise the database-table
    /// fallback the paper calls for.
    pub fn user_lock(&self, key: &str) -> Result<UserLockGuard> {
        if self.support.user_locks {
            let session = self.db.new_session();
            let key_hash = hash_key(key);
            self.db
                .advisory_lock(session, key_hash)
                .map_err(crate::ToolkitError::from)?;
            Ok(UserLockGuard::Advisory {
                db: self.db.clone(),
                session,
                key: key_hash,
                released: false,
            })
        } else {
            let guard = self.fallback.lock(key).map_err(crate::ToolkitError::from)?;
            Ok(UserLockGuard::Fallback(Some(guard)))
        }
    }

    /// Try-variant of [`user_lock`](Self::user_lock): `None` when held
    /// elsewhere. Only available on the advisory path (the table fallback
    /// would need a polling probe).
    pub fn try_user_lock(&self, key: &str) -> Result<Option<UserLockGuard>> {
        if !self.support.user_locks {
            return self.user_lock(key).map(Some);
        }
        let session = self.db.new_session();
        let key_hash = hash_key(key);
        if self.db.try_advisory_lock(session, key_hash) {
            Ok(Some(UserLockGuard::Advisory {
                db: self.db.clone(),
                session,
                key: key_hash,
                released: false,
            }))
        } else {
            self.db.end_session(session);
            Ok(None)
        }
    }

    /// Explicit row lock inside an open transaction (SQL Server's
    /// `HOLDLOCK`-style hint; our engines spell it `FOR UPDATE`). The lock
    /// persists until the transaction ends.
    pub fn row_lock(&self, txn: &mut Transaction, table: &str, id: i64) -> Result<()> {
        if !self.support.row_locks {
            return Err(
                LockError::Backend("engine does not support explicit row locks".into()).into(),
            );
        }
        txn.get_for_update(table, id)
            .map_err(crate::ToolkitError::from)?;
        Ok(())
    }

    /// Explicit table lock inside an open transaction.
    pub fn table_lock(&self, txn: &mut Transaction, table: &str, mode: LockMode) -> Result<()> {
        if !self.support.table_locks {
            return Err(
                LockError::Backend("engine does not support explicit table locks".into()).into(),
            );
        }
        txn.lock_table(table, mode)
            .map_err(crate::ToolkitError::from)?;
        Ok(())
    }

    /// Per-operation isolation hint: read this row at Read Committed even
    /// inside a snapshot transaction (Table 7b: supports coarse-grained
    /// and *partial* coordination — §3.1.1's non-critical reads can opt
    /// out of the strict level).
    pub fn read_committed_read(
        &self,
        txn: &mut Transaction,
        table: &str,
        id: i64,
    ) -> Result<Option<adhoc_storage::Row>> {
        if !self.support.per_op_isolation {
            return Err(LockError::Backend(
                "engine does not support per-operation isolation".into(),
            )
            .into());
        }
        txn.get_read_committed(table, id)
            .map_err(crate::ToolkitError::from)
    }
}

fn hash_key(key: &str) -> i64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h & (i64::MAX as u64)) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_storage::EngineProfile;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    fn db() -> Database {
        Database::in_memory(EngineProfile::PostgresLike)
    }

    #[test]
    fn user_lock_uses_advisory_when_supported() {
        let proxy = HintProxy::new(db());
        let g = proxy.user_lock("checkout:42").unwrap();
        assert_eq!(g.mechanism(), "advisory");
        assert!(proxy.try_user_lock("checkout:42").unwrap().is_none());
        g.unlock().unwrap();
        let g2 = proxy.try_user_lock("checkout:42").unwrap();
        assert!(g2.is_some());
    }

    #[test]
    fn user_lock_falls_back_to_db_table() {
        let proxy = HintProxy::new(db()).with_support(HintSupport::without_user_locks());
        let g = proxy.user_lock("checkout:42").unwrap();
        assert_eq!(g.mechanism(), "db-table-fallback");
        g.unlock().unwrap();
        // Reacquirable after release.
        proxy.user_lock("checkout:42").unwrap().unlock().unwrap();
    }

    #[test]
    fn user_lock_blocks_across_mechanism_users() {
        let proxy = std::sync::Arc::new(HintProxy::new(db()));
        let g = proxy.user_lock("k").unwrap();
        let done = std::sync::Arc::new(AtomicBool::new(false));
        let p2 = std::sync::Arc::clone(&proxy);
        let d2 = std::sync::Arc::clone(&done);
        let h = std::thread::spawn(move || {
            let g2 = p2.user_lock("k").unwrap();
            d2.store(true, Ordering::SeqCst);
            g2.unlock().unwrap();
        });
        std::thread::sleep(Duration::from_millis(40));
        assert!(!done.load(Ordering::SeqCst));
        g.unlock().unwrap();
        h.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn drop_releases_user_lock() {
        let proxy = HintProxy::new(db());
        {
            let _g = proxy.user_lock("k").unwrap();
        }
        assert!(proxy.try_user_lock("k").unwrap().is_some());
    }

    #[test]
    fn row_lock_holds_until_commit() {
        let database = db();
        database
            .create_table(
                adhoc_storage::Schema::new(
                    "orders",
                    vec![
                        adhoc_storage::Column::new("id", adhoc_storage::ColumnType::Int),
                        adhoc_storage::Column::new("total", adhoc_storage::ColumnType::Int),
                    ],
                    "id",
                )
                .unwrap(),
            )
            .unwrap();
        database
            .run(adhoc_storage::IsolationLevel::ReadCommitted, |t| {
                t.insert("orders", &[("id", 1.into()), ("total", 0.into())])
                    .map(|_| ())
            })
            .unwrap();
        let proxy = HintProxy::new(database.clone());
        let mut txn = database.begin();
        proxy.row_lock(&mut txn, "orders", 1).unwrap();
        // A concurrent writer blocks until we commit.
        let done = std::sync::Arc::new(AtomicBool::new(false));
        let d2 = std::sync::Arc::clone(&done);
        let db2 = database.clone();
        let h = std::thread::spawn(move || {
            db2.run(adhoc_storage::IsolationLevel::ReadCommitted, |t| {
                t.update("orders", 1, &[("total", 5.into())])
            })
            .unwrap();
            d2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(40));
        assert!(!done.load(Ordering::SeqCst));
        txn.commit().unwrap();
        h.join().unwrap();
    }

    #[test]
    fn per_op_isolation_hint_reads_latest() {
        let database = db();
        database
            .create_table(
                adhoc_storage::Schema::new(
                    "orders",
                    vec![
                        adhoc_storage::Column::new("id", adhoc_storage::ColumnType::Int),
                        adhoc_storage::Column::new("total", adhoc_storage::ColumnType::Int),
                    ],
                    "id",
                )
                .unwrap(),
            )
            .unwrap();
        database
            .run(adhoc_storage::IsolationLevel::ReadCommitted, |t| {
                t.insert("orders", &[("id", 1.into()), ("total", 10.into())])
                    .map(|_| ())
            })
            .unwrap();
        let proxy = HintProxy::new(database.clone());
        let mut txn = database.begin_with(adhoc_storage::IsolationLevel::RepeatableRead);
        assert_eq!(
            txn.get("orders", 1).unwrap().unwrap().values[1].as_int(),
            10
        );
        database
            .run(adhoc_storage::IsolationLevel::ReadCommitted, |t| {
                t.update("orders", 1, &[("total", 99.into())])
            })
            .unwrap();
        let hinted = proxy
            .read_committed_read(&mut txn, "orders", 1)
            .unwrap()
            .unwrap();
        assert_eq!(hinted.values[1].as_int(), 99);
        txn.commit().unwrap();
        // Unsupported engines error cleanly.
        let limited =
            HintProxy::new(database.clone()).with_support(HintSupport::without_per_op_isolation());
        let mut txn = database.begin();
        assert!(limited.read_committed_read(&mut txn, "orders", 1).is_err());
    }

    #[test]
    fn unsupported_hints_error_cleanly() {
        let database = db();
        let proxy = HintProxy::new(database.clone()).with_support(HintSupport {
            user_locks: true,
            table_locks: false,
            row_locks: false,
            per_op_isolation: false,
        });
        let mut txn = database.begin();
        assert!(proxy.row_lock(&mut txn, "any", 1).is_err());
        assert!(proxy.table_lock(&mut txn, "any", LockMode::Shared).is_err());
    }
}
