//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of proptest the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, [`any`], range strategies, tuple
//! strategies, [`Just`], `collection::vec`, `prop_oneof!`, `prop_assert!`,
//! `prop_assert_eq!`, [`ProptestConfig`], and the `proptest!` macro.
//!
//! Differences from real proptest, deliberate for size:
//! * cases are drawn from a fixed-seed deterministic RNG (replayable runs,
//!   no `PROPTEST_*` env handling);
//! * **no shrinking** — a failing case panics with the generated inputs
//!   rendered via `Debug` instead of a minimized counterexample;
//! * `prop_assert*` are plain `assert*` (they panic rather than early-return).

use std::ops::{Range, RangeInclusive};

/// Test-runner plumbing (RNG + config), mirroring `proptest::test_runner`.
pub mod test_runner {
    /// Deterministic xorshift-style RNG driving case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed seed every test starts from (replayable runs).
        pub fn deterministic() -> Self {
            Self {
                state: 0x853c_49e6_748f_ea9b,
            }
        }

        /// Derive a runner whose stream is salted by `salt` (used so each
        /// test function inside one binary sees a distinct stream).
        pub fn salted(salt: u64) -> Self {
            let mut rng = Self {
                state: 0x853c_49e6_748f_ea9b ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            };
            rng.next_u64(); // decorrelate adjacent salts
            rng
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "TestRng::below(0)");
            self.next_u64() % bound
        }
    }

    /// A rejected or failed test case, usable as the error half of a
    /// `Result`-returning property body (`check(...)?`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

use test_runner::TestRng;

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// Type-erased strategy handle.
#[derive(Clone)]
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy producing exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<A>(std::marker::PhantomData<fn() -> A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn new_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The "any value of `A`" strategy.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u64 + 1;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice among boxed alternatives (built by `prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! with no arms");
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].new_value(rng)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Uniform choice among alternatives: `prop_oneof![s1, s2, ...]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Property assertion (shim: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion (shim: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion (shim: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (@funcs ($config:expr) $(#[$meta:meta])* fn $name:ident
        ($($arg:ident in $strategy:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            // Salt the stream by the test name so sibling tests explore
            // different cases.
            let salt = {
                let name = stringify!($name);
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in name.bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                }
                h
            };
            let mut rng = $crate::test_runner::TestRng::salted(salt);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::new_value(&$strategy, &mut rng);)+
                // Render inputs up front so a failing body (which consumes
                // them) can still be reported.
                let mut rendered = String::new();
                $(rendered.push_str(&format!(
                    "  {} = {:?}\n", stringify!($arg), &$arg
                ));)+
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                ));
                match result {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        eprintln!(
                            "proptest case {}/{} failed for {}:\n{}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            rendered
                        );
                        panic!("property returned error: {e}");
                    }
                    Err(payload) => {
                        eprintln!(
                            "proptest case {}/{} failed for {}:\n{}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            rendered
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (@funcs ($config:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Push(u8),
        Pop,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![any::<u8>().prop_map(Op::Push), Just(Op::Pop),]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_strategy_respects_bounds(ops in crate::collection::vec(op(), 1..20)) {
            prop_assert!(!ops.is_empty() && ops.len() < 20);
        }

        #[test]
        fn ranges_stay_in_bounds(a in 1u16..500, b in 0..3u8, c in 1..=3i64) {
            prop_assert!((1..500).contains(&a));
            prop_assert!(b < 3);
            prop_assert!((1..=3).contains(&c));
        }

        #[test]
        fn tuples_and_maps_compose(pair in (any::<i8>(), 1usize..4).prop_map(|(x, n)| (x, n * 2))) {
            prop_assert_eq!(pair.1 % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = crate::collection::vec(any::<u64>(), 3..10);
        let mut r1 = crate::test_runner::TestRng::deterministic();
        let mut r2 = crate::test_runner::TestRng::deterministic();
        assert_eq!(s.new_value(&mut r1), s.new_value(&mut r2));
    }
}
