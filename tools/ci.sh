#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build+test pass.
# Run from the repository root: ./tools/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# Bounded interleaving-explorer smoke gate: fixed seed, fixed 128-schedule
# budget per scenario (see tests/schedule_explorer.rs). Deterministic, so
# the timeout guards only against accidental budget inflation.
echo "==> explorer smoke gate (fixed seed, bounded budget, <60s)"
timeout 60 cargo test -q --release --test schedule_explorer --test schedule_corpus

# Tiny-duty-cycle scaling-bench smoke: proves the sweep runs end to end
# and emits well-formed BENCH_fig2.json/BENCH_fig3.json. Numbers from the
# smoke windows are noise — the committed artifacts come from
# ./tools/bench.sh with full windows.
echo "==> bench smoke (BENCH_SCALE=smoke)"
BENCH_SCALE=smoke ./tools/bench.sh target/bench-smoke >/dev/null
python3 -c "import json; json.load(open('target/bench-smoke/BENCH_fig2.json')); json.load(open('target/bench-smoke/BENCH_fig3.json'))"

echo "==> CI green"
