//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::{iter, iter_custom}`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — with a deliberately simple measurement loop: a short warm-up,
//! then `sample_size` timed samples, reporting mean and min/max to stdout.
//! No statistical analysis, HTML reports, or CLI parsing.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Top-level handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            warm_up_time: Duration::from_millis(50),
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>>(
        &mut self,
        id: I,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: self.measurement_time,
            warm_up: self.warm_up_time,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("  {}/{}: no samples", self.name, id.0);
            return self;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!(
            "  {}/{}: mean {:?} (min {:?}, max {:?}, n={})",
            self.name,
            id.0,
            mean,
            min,
            max,
            samples.len()
        );
        self
    }

    /// End the group (printing is already done incrementally).
    pub fn finish(&mut self) {}
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    warm_up: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Time `f` per call: brief warm-up, then up to `sample_size` samples
    /// (stopping early if the measurement budget runs out).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let warm_deadline = Instant::now() + self.warm_up.min(Duration::from_millis(100));
        while Instant::now() < warm_deadline {
            black_box(f());
        }
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// `f` receives an iteration count and returns the total elapsed time
    /// for that many iterations; the per-iteration mean is recorded.
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        let iters = 3u64;
        for _ in 0..self.sample_size {
            let total = f(iters);
            self.samples.push(total / iters as u32);
        }
    }
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_function(BenchmarkId::new("f", 7), |b| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(2 * 2);
                }
                start.elapsed()
            })
        });
        group.finish();
    }
}
