//! Forum concurrency: Discourse's column-level lock namespaces and the
//! two-request edit-post flow (§3.1.2, §3.3.2).
//!
//! Run with `cargo run --example forum_concurrency`.

use adhoc_transactions::apps::{discourse, Mode};
use adhoc_transactions::core::locks::MemLock;
use adhoc_transactions::core::optimistic::{ContinuationStore, OptimisticTransaction};
use adhoc_transactions::core::validation::CommitOutcome;
use adhoc_transactions::storage::{Database, EngineProfile};
use std::sync::Arc;

fn main() {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = discourse::setup(&db).expect("schema");
    let forum = Arc::new(discourse::Discourse::new(
        orm,
        Arc::new(MemLock::new()),
        Mode::AdHoc,
    ));
    forum.seed_topic(1).expect("seed");

    // --- CBC: create-post and toggle-answer on the same topic row ---
    let seed_post = forum.seed_post(1, "seed", 0).expect("seed post");
    std::thread::scope(|s| {
        let creator = Arc::clone(&forum);
        s.spawn(move || {
            for i in 0..20 {
                creator
                    .create_post(1, &format!("reply {i}"))
                    .expect("create");
            }
        });
        let toggler = Arc::clone(&forum);
        s.spawn(move || {
            for _ in 0..20 {
                toggler.toggle_answer(1, seed_post).expect("toggle");
            }
        });
    });
    println!(
        "CBC   create-post and toggle-answer ran in parallel (separate lock \
         namespaces); topic consistent: {}",
        forum.topic_posts_consistent(1).expect("check")
    );

    // --- Multi-request edit with version validation ---
    let post = forum.seed_post(1, "original text", 0).expect("post");
    let alice = forum.begin_edit(post).expect("begin");
    let bob = forum.begin_edit(post).expect("begin");
    let alice_result = forum
        .commit_edit(&alice, "alice's version")
        .expect("commit");
    let bob_result = forum.commit_edit(&bob, "bob's version").expect("commit");
    println!("EDIT  alice: {alice_result:?}, bob: {bob_result:?} (the loser is told to re-edit)");
    assert_eq!(alice_result, discourse::EditOutcome::Success);
    assert_eq!(bob_result, discourse::EditOutcome::Conflict);

    // --- Column-level validation ignores view-count churn ---
    let token = forum.begin_edit(post).expect("begin");
    for _ in 0..10 {
        forum.begin_edit(post).expect("views"); // concurrent viewers
    }
    let outcome = forum
        .commit_edit_by_content(&token, "edited despite 10 views")
        .expect("commit");
    println!("CBC   content-validated edit survived 10 concurrent view bumps: {outcome:?}");
    assert_eq!(outcome, discourse::EditOutcome::Success);

    // --- The §6 proposal: an optimistic continuation doing the same flow ---
    let store = ContinuationStore::new();
    let tid = {
        let mut txn = OptimisticTransaction::new();
        txn.read(forum.orm(), "posts", post)
            .expect("read")
            .expect("post exists");
        store.save(txn) // request 1 ends; nothing is locked
    };
    let mut txn = store.restore(tid).expect("restore");
    txn.write("posts", post, &[("content", "via continuation".into())]);
    let outcome = txn.commit(forum.orm()).expect("commit");
    println!("OCC   continuation-based edit across requests: {outcome:?}");
    assert_eq!(outcome, CommitOutcome::Committed);

    println!("\nAll forum flows coordinated correctly.");
}
