//! Column values.
//!
//! The studied schemas only need integers, strings, booleans and NULL;
//! monetary amounts are stored as integer cents, which also keeps values
//! totally ordered (required by the ordered secondary indexes that gap
//! locks operate on).

use std::cmp::Ordering;
use std::fmt;

/// A single column value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer (also used for money as cents and for timestamps).
    Int(i64),
    /// UTF-8 text.
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl Value {
    /// Column type of this value, or `None` for NULL (which types as any).
    pub fn column_type(&self) -> Option<ColumnType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ColumnType::Int),
            Value::Str(_) => Some(ColumnType::Str),
            Value::Bool(_) => Some(ColumnType::Bool),
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer accessor; panics with a descriptive message on mismatch.
    /// Schema validation upstream makes a mismatch a logic error, not a
    /// recoverable condition.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected Int value, found {other:?}"),
        }
    }

    /// String accessor; panics on mismatch (see [`Value::as_int`]).
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(v) => v,
            other => panic!("expected Str value, found {other:?}"),
        }
    }

    /// Boolean accessor; panics on mismatch (see [`Value::as_int`]).
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(v) => *v,
            other => panic!("expected Bool value, found {other:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// Total order across values, used by ordered indexes. SQL three-valued
/// NULL comparison is irrelevant for index storage: NULL sorts first, then
/// Bool < Int < Str, then natural order within a type (like SQLite's type
/// ordering).
impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Declared column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// UTF-8 text.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::Int => write!(f, "INT"),
            ColumnType::Str => write!(f, "TEXT"),
            ColumnType::Bool => write!(f, "BOOL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_ordering_is_total_and_ranked() {
        let mut vals = vec![
            Value::Str("b".into()),
            Value::Int(2),
            Value::Null,
            Value::Bool(true),
            Value::Int(-1),
            Value::Str("a".into()),
            Value::Bool(false),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Bool(false),
                Value::Bool(true),
                Value::Int(-1),
                Value::Int(2),
                Value::Str("a".into()),
                Value::Str("b".into()),
            ]
        );
    }

    #[test]
    fn conversions_and_accessors() {
        assert_eq!(Value::from(5i64).as_int(), 5);
        assert_eq!(Value::from("x").as_str(), "x");
        assert!(Value::from(true).as_bool());
        assert!(Value::Null.is_null());
        assert_eq!(Value::from(5i64).column_type(), Some(ColumnType::Int));
        assert_eq!(Value::Null.column_type(), None);
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn as_int_panics_on_mismatch() {
        Value::from("oops").as_int();
    }

    #[test]
    fn display_renders_sql_ish() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Str("a".into()).to_string(), "\"a\"");
    }
}
