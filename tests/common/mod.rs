//! Shared deterministic-schedule scenarios.
//!
//! One scenario = one closed world (fresh DB/KV state, a couple of logical
//! tasks, an invariant check), written against the [`Trial`] API so it can
//! be driven three ways with identical semantics:
//!
//! * `tests/schedule_explorer.rs` — the explorer *searches* schedules for
//!   an invariant violation (the paper's races, found by schedule);
//! * `tests/schedule_corpus.rs` — pinned `SCHED=` witnesses from
//!   `tests/schedules/` *replay* bit-for-bit (the schedule analog of
//!   proptest regressions);
//! * `tests/schedule_regressions.rs` — the soak races, re-derived
//!   deterministically.
//!
//! Determinism contract: scenarios use [`VirtualClock`] (never the wall
//! clock), seeded [`FaultPlan`]s, and in-memory state built inside the
//! scenario, so the only free variable is the schedule itself.

#![allow(dead_code)] // each test binary uses a subset of the scenarios

use adhoc_transactions::apps::{
    broadleaf, discourse, jumpserver, mastodon, redmine, saleor, scm_suite, spree, Mode,
};
use adhoc_transactions::core::locks::{AdHocLock, KvSetNxLock, MemLock};
use adhoc_transactions::core::validation::{
    validated_write, CommitOutcome, ValidationCheck, ValidationStrategy,
};
use adhoc_transactions::kv::{Client, Store};
use adhoc_transactions::orm::{EntityDef, Orm, Registry};
use adhoc_transactions::sim::sched::Trial;
use adhoc_transactions::sim::{FaultKind, FaultPlan, FaultRule, LatencyModel, VirtualClock};
use adhoc_transactions::storage::{
    Column, ColumnType, Database, EngineProfile, IsolationLevel, Schema,
};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The workspace-wide experiment seed (paper submission date).
pub const SEED: u64 = 0x5157_4d0d_2022_0612;

/// A scenario: build fresh state, register tasks, run, check invariants.
pub type Scenario = fn(&mut Trial) -> Result<(), String>;

/// What a schedule search over the scenario must conclude.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// Buggy variant: some schedule violates the invariant.
    Fail,
    /// Correct variant: every schedule within budget upholds it.
    Pass,
}

/// Every named scenario, its expectation, and its implementation. This is
/// the registry both the corpus replayer and the explorer suite iterate.
pub const SCENARIOS: &[(&str, Expect, Scenario)] = &[
    ("fig1-lost-update", Expect::Fail, fig1_lost_update),
    ("fig1-locked", Expect::Pass, fig1_locked),
    ("setnx-double-grant", Expect::Fail, setnx_double_grant),
    ("invite-dbt", Expect::Pass, invite_dbt),
    (
        "ttl-steal-unchecked-unlock",
        Expect::Fail,
        ttl_steal_unchecked_unlock,
    ),
    (
        "ttl-steal-checked-unlock",
        Expect::Pass,
        ttl_steal_checked_unlock,
    ),
    (
        "ttl-steal-unfenced-write",
        Expect::Fail,
        ttl_steal_unfenced_write,
    ),
    (
        "ttl-steal-fenced-write",
        Expect::Pass,
        ttl_steal_fenced_write,
    ),
    ("validation-scope-gap", Expect::Fail, validation_scope_gap),
    ("validation-atomic", Expect::Pass, validation_atomic),
    (
        "notify-unchecked-duplicates",
        Expect::Fail,
        notify_unchecked_duplicates,
    ),
    ("notify-once-dedupe", Expect::Pass, notify_once_dedupe),
    ("cart-total-locked", Expect::Pass, cart_total_locked),
    ("vote-occ", Expect::Pass, vote_occ),
    ("multi-lock-mutex", Expect::Pass, multi_lock_mutex),
    ("reentrant-mutex", Expect::Pass, reentrant_mutex),
    ("grant-idempotent", Expect::Pass, grant_idempotent),
    ("timeline-consistent", Expect::Pass, timeline_consistent),
    ("rotation-audit", Expect::Pass, rotation_audit),
    (
        "monitor-catches-lock-after-read",
        Expect::Pass,
        monitor_catches_lock_after_read,
    ),
    (
        "monitor-quiet-on-correct-flow",
        Expect::Pass,
        monitor_quiet_on_correct_flow,
    ),
    (
        "epoch-watermark-advance",
        Expect::Pass,
        epoch_watermark_advance,
    ),
    (
        "continuation-validation-race",
        Expect::Pass,
        continuation_validation_race,
    ),
    ("delta-merge-crash", Expect::Pass, delta_merge_crash),
    (
        "rate-limit-window-race",
        Expect::Fail,
        rate_limit_window_race,
    ),
];

/// Look a scenario up by its corpus name.
pub fn lookup(name: &str) -> Option<(Expect, Scenario)> {
    SCENARIOS
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, e, s)| (*e, *s))
}

fn err_str<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

// ---------------------------------------------------------------------------
// Shared app fixtures. Ad hoc and cured variants register through one
// constructor — `mode` is the only degree of freedom — so the scenario
// registry and the cured-oracle suite cannot drift apart in how they
// build an app.
// ---------------------------------------------------------------------------

/// A Broadleaf shop over a fresh MySQL-like engine and a MEM lock.
pub fn broadleaf_app(mode: Mode) -> broadleaf::Broadleaf {
    let db = Database::in_memory(EngineProfile::MySqlLike);
    broadleaf::Broadleaf::new(
        broadleaf::setup(&db).unwrap(),
        Arc::new(MemLock::new()),
        mode,
    )
}

/// A Mastodon instance over a fresh PostgreSQL-like engine, a zero-latency
/// KV store, and the `SETNX` lock.
pub fn mastodon_app(mode: Mode) -> mastodon::Mastodon {
    let clock = Arc::new(VirtualClock::new());
    let kv = Client::new(Store::new(), clock, LatencyModel::zero());
    let db = Database::in_memory(EngineProfile::PostgresLike);
    mastodon::Mastodon::new(
        mastodon::setup(&db).unwrap(),
        kv.clone(),
        Arc::new(KvSetNxLock::new(kv)),
        mode,
    )
}

/// A JumpServer instance over a fresh PostgreSQL-like engine and the
/// `SETNX` lock.
pub fn jumpserver_app(mode: Mode) -> jumpserver::JumpServer {
    let clock = Arc::new(VirtualClock::new());
    let kv = Client::new(Store::new(), clock, LatencyModel::zero());
    let db = Database::in_memory(EngineProfile::PostgresLike);
    jumpserver::JumpServer::new(
        jumpserver::setup(&db).unwrap(),
        Arc::new(KvSetNxLock::new(kv)),
        mode,
    )
}

/// A Spree shop over a fresh MySQL-like engine and a MEM lock.
pub fn spree_app(mode: Mode) -> spree::Spree {
    let db = Database::in_memory(EngineProfile::MySqlLike);
    spree::Spree::new(spree::setup(&db).unwrap(), Arc::new(MemLock::new()), mode)
}

/// A Saleor instance over a fresh PostgreSQL-like engine and a MEM lock.
pub fn saleor_app(mode: Mode) -> saleor::Saleor {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    saleor::Saleor::new(saleor::setup(&db).unwrap(), Arc::new(MemLock::new()), mode)
}

/// A Discourse instance over a fresh PostgreSQL-like engine and a MEM lock.
pub fn discourse_app(mode: Mode) -> discourse::Discourse {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    discourse::Discourse::new(
        discourse::setup(&db).unwrap(),
        Arc::new(MemLock::new()),
        mode,
    )
}

/// A Redmine instance over a fresh PostgreSQL-like engine.
pub fn redmine_app(mode: Mode) -> redmine::Redmine {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    redmine::Redmine::new(redmine::setup(&db).unwrap(), mode)
}

/// An SCM Suite instance over a fresh MySQL-like engine and a MEM lock.
pub fn scm_app(mode: Mode) -> scm_suite::ScmSuite {
    let db = Database::in_memory(EngineProfile::MySqlLike);
    scm_suite::ScmSuite::new(
        scm_suite::setup(&db).unwrap(),
        Arc::new(MemLock::new()),
        mode,
    )
}

// ---------------------------------------------------------------------------
// Figure 1a/§3.1.1 — the uncoordinated SKU read-modify-write.
// ---------------------------------------------------------------------------

fn fig1_shop(coordinated: bool) -> Arc<broadleaf::Broadleaf> {
    let mut shop = broadleaf_app(Mode::AdHoc);
    if !coordinated {
        shop = shop.omit_sku_coordination();
    }
    let shop = Arc::new(shop);
    shop.seed_sku(1, 10).unwrap();
    shop
}

fn fig1_run(trial: &mut Trial, shop: &Arc<broadleaf::Broadleaf>) -> Result<(), String> {
    let successes = Arc::new(AtomicI64::new(0));
    for t in 0..2 {
        let shop = Arc::clone(shop);
        let successes = Arc::clone(&successes);
        trial.task(&format!("checkout-{t}"), move || {
            if shop.check_out(1, 1).unwrap() {
                successes.fetch_add(1, Ordering::SeqCst);
            }
        });
    }
    trial.run()?;
    if !shop.sku_conserved(1, 10).map_err(err_str)? {
        return Err("Figure 1 lost update: stock conservation violated".into());
    }
    let sold = shop
        .orm()
        .find_required("skus", 1)
        .map_err(err_str)?
        .get_int("sold")
        .map_err(err_str)?;
    let expected = successes.load(Ordering::SeqCst);
    if sold != expected {
        return Err(format!(
            "Figure 1 lost update: {expected} checkouts succeeded but sold={sold}"
        ));
    }
    Ok(())
}

/// Buggy: Broadleaf checkout with SKU coordination omitted — two
/// interleaved read-modify-writes lose an update (Figure 1a, issue [67]).
pub fn fig1_lost_update(trial: &mut Trial) -> Result<(), String> {
    let shop = fig1_shop(false);
    fig1_run(trial, &shop)
}

/// Correct: same workload behind the MEM lock — no schedule loses a sale.
pub fn fig1_locked(trial: &mut Trial) -> Result<(), String> {
    let shop = fig1_shop(true);
    fig1_run(trial, &shop)
}

// ---------------------------------------------------------------------------
// §3.4.2 + §4.1.1 — the ambiguous SETNX double grant (Mastodon invites).
// ---------------------------------------------------------------------------

/// Buggy: holder A's `SETNX` reply is lost but applied; A recovers by
/// reading its token back, then a GC-style pause (virtual-clock advance)
/// expires the lease mid-critical-section and B redeems concurrently. Two
/// users redeem a one-use invite.
pub fn setnx_double_grant(trial: &mut Trial) -> Result<(), String> {
    let clock = Arc::new(VirtualClock::new());
    let plan = FaultPlan::new(
        SEED,
        vec![FaultRule::at_ops(FaultKind::ReplyLost, &[0]).max_fires(1)],
    );
    let kv = Client::new(Store::new(), clock.clone(), LatencyModel::zero()).with_faults(plan);
    let lock = KvSetNxLock::new(kv.clone())
        .with_ttl(Duration::from_millis(100))
        .recover_ambiguous_replies();
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let social = Arc::new(mastodon::Mastodon::new(
        mastodon::setup(&db).unwrap(),
        kv,
        Arc::new(lock),
        Mode::AdHoc,
    ));
    social.seed_invite(1, 1).unwrap();

    let successes = Arc::new(AtomicI64::new(0));
    for t in 0..2 {
        let social = Arc::clone(&social);
        let successes = Arc::clone(&successes);
        trial.task(&format!("redeem-{t}"), move || {
            if social.redeem_invite(1).unwrap() {
                successes.fetch_add(1, Ordering::SeqCst);
            }
        });
    }
    // The "GC pause": wherever the scheduler places this, the lease dies.
    trial.task("gc-pause", move || {
        clock.advance(Duration::from_millis(200));
    });
    trial.run()?;
    let redeemed = successes.load(Ordering::SeqCst);
    if redeemed > 1 {
        return Err(format!(
            "double grant: {redeemed} redemptions of a 1-use invite"
        ));
    }
    Ok(())
}

/// Correct: the same three tasks under DBT mode — serializable
/// transactions keep the invite within its limit on every schedule.
pub fn invite_dbt(trial: &mut Trial) -> Result<(), String> {
    let clock = Arc::new(VirtualClock::new());
    let kv = Client::new(Store::new(), clock.clone(), LatencyModel::zero());
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let social = Arc::new(mastodon::Mastodon::new(
        mastodon::setup(&db).unwrap(),
        kv.clone(),
        Arc::new(KvSetNxLock::new(kv)),
        Mode::DatabaseTxn,
    ));
    social.seed_invite(1, 1).unwrap();

    let successes = Arc::new(AtomicI64::new(0));
    for t in 0..2 {
        let social = Arc::clone(&social);
        let successes = Arc::clone(&successes);
        trial.task(&format!("redeem-{t}"), move || {
            if social.redeem_invite(1).unwrap() {
                successes.fetch_add(1, Ordering::SeqCst);
            }
        });
    }
    trial.task("gc-pause", move || {
        clock.advance(Duration::from_millis(200));
    });
    trial.run()?;
    let redeemed = successes.load(Ordering::SeqCst);
    if redeemed != 1 {
        return Err(format!("{redeemed} redemptions of a 1-use invite"));
    }
    if !social.invite_within_limit(1).map_err(err_str)? {
        return Err("invite redeemed past its max".into());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// §4.1.1 issue [65] — TTL expiry + unchecked DEL steals the next lease.
// ---------------------------------------------------------------------------

fn ttl_steal(trial: &mut Trial, checked_unlock: bool) -> Result<(), String> {
    let clock = Arc::new(VirtualClock::new());
    let kv = Client::new(Store::new(), clock.clone(), LatencyModel::zero());
    let mut lock = KvSetNxLock::new(kv.clone()).with_ttl(Duration::from_millis(100));
    if !checked_unlock {
        lock = lock.unlock_without_owner_check();
    }
    let lock = Arc::new(lock);
    let stolen = Arc::new(AtomicBool::new(false));

    // Task 0 overstays its lease, then unlocks — a bare DEL deletes
    // whoever holds the lock *now*; the owner-checked unlock refuses.
    {
        let lock = Arc::clone(&lock);
        let clock = Arc::clone(&clock);
        trial.task("overstayer", move || {
            let guard = lock.lock("cred:1").unwrap();
            clock.advance(Duration::from_millis(200)); // lease expires here
            let _ = guard.unlock();
        });
    }
    // Task 1 holds a live lease across one round trip of protected work
    // and asserts it is still the owner afterwards.
    {
        let lock = Arc::clone(&lock);
        let stolen = Arc::clone(&stolen);
        trial.task("victim", move || {
            let guard = lock.lock("cred:1").unwrap();
            let _ = kv.get("cred:1:payload"); // protected work (one round trip)
            if !guard.is_valid() {
                stolen.store(true, Ordering::SeqCst);
            }
            let _ = guard.unlock();
        });
    }
    trial.run()?;
    if stolen.load(Ordering::SeqCst) {
        return Err("TTL steal: stale unlock deleted the live holder's lease".into());
    }
    Ok(())
}

/// Buggy: unlock is a bare `DEL` (no owner check) — after the lease
/// expires it deletes the *next* holder's entry.
pub fn ttl_steal_unchecked_unlock(trial: &mut Trial) -> Result<(), String> {
    ttl_steal(trial, false)
}

/// Correct: the owner-checked unlock returns `NotHeld` instead of
/// deleting someone else's lease.
pub fn ttl_steal_checked_unlock(trial: &mut Trial) -> Result<(), String> {
    ttl_steal(trial, true)
}

/// The write-side of the TTL steal: a zombie holder whose lease expired
/// writes to the guarded resource anyway. Unfenced, some schedule lets
/// the stale write land *after* the live holder's and corrupt it; with
/// monotonic fencing tokens the store's fence floor bounces every stale
/// write, in every schedule.
fn ttl_steal_write(trial: &mut Trial, fenced: bool) -> Result<(), String> {
    let clock = Arc::new(VirtualClock::new());
    let kv = Client::new(Store::new(), clock.clone(), LatencyModel::zero());
    let mut lock = KvSetNxLock::new(kv.clone()).with_ttl(Duration::from_millis(100));
    if fenced {
        lock = lock.with_fencing();
    }
    let lock = Arc::new(lock);
    let corrupted = Arc::new(AtomicBool::new(false));

    // Task 0 acquires, overstays its lease, then blindly writes the
    // guarded payload — never consulting its guard (the §4.1.1 bug).
    {
        let lock = Arc::clone(&lock);
        let clock = Arc::clone(&clock);
        let kv = kv.clone();
        trial.task("zombie", move || {
            let guard = lock.lock("cred:1").unwrap();
            let token = guard.fencing_token();
            clock.advance(Duration::from_millis(200)); // lease expires here
            match token {
                Some(t) => {
                    // The fence: the store rejects the write when a newer
                    // lease has raised the floor.
                    let _ = kv.fenced_set("cred:1:payload", "zombie", t);
                }
                None => {
                    let _ = kv.set("cred:1:payload", "zombie");
                }
            }
            // No unlock: the zombie believes it still holds the lease.
        });
    }
    // Task 1 acquires after the expiry, writes, and must read its own
    // write back — the zombie's stale write must never clobber it.
    {
        let lock = Arc::clone(&lock);
        let corrupted = Arc::clone(&corrupted);
        trial.task("victim", move || {
            let guard = lock.lock("cred:1").unwrap();
            match guard.fencing_token() {
                Some(t) => {
                    assert!(
                        kv.fenced_set("cred:1:payload", "victim", t).unwrap(),
                        "the live holder's token dominates every earlier grant"
                    );
                }
                None => {
                    kv.set("cred:1:payload", "victim").unwrap();
                }
            }
            if kv.get("cred:1:payload").unwrap().as_deref() != Some("victim") {
                corrupted.store(true, Ordering::SeqCst);
            }
            let _ = guard.unlock();
        });
    }
    trial.run()?;
    if corrupted.load(Ordering::SeqCst) {
        return Err("TTL steal: a zombie write clobbered the live holder's payload".into());
    }
    Ok(())
}

/// Buggy: the zombie's unfenced write can land after the live holder's.
pub fn ttl_steal_unfenced_write(trial: &mut Trial) -> Result<(), String> {
    ttl_steal_write(trial, false)
}

/// Correct: fencing tokens make the TTL steal race-free in every
/// schedule — stale writes bounce off the store's fence floor.
pub fn ttl_steal_fenced_write(trial: &mut Trial) -> Result<(), String> {
    ttl_steal_write(trial, true)
}

// ---------------------------------------------------------------------------
// §4.1.2 — the validation-scope gap (MiniSql check-then-write).
// ---------------------------------------------------------------------------

fn validation_fixture() -> Orm {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    db.create_table(
        Schema::new(
            "posts",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("view_cnt", ColumnType::Int),
                Column::new("lock_version", ColumnType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    let orm = Orm::new(db, Registry::new().register(EntityDef::new("posts")));
    orm.create(
        "posts",
        &[
            ("id", 1.into()),
            ("view_cnt", 0.into()),
            ("lock_version", 0.into()),
        ],
    )
    .unwrap();
    orm
}

fn validation_race(trial: &mut Trial, strategy: ValidationStrategy) -> Result<(), String> {
    let orm = Arc::new(validation_fixture());
    let committed = Arc::new(AtomicI64::new(0));
    for t in 0..2 {
        let orm = Arc::clone(&orm);
        let committed = Arc::clone(&committed);
        let strategy = strategy.clone();
        trial.task(&format!("editor-{t}"), move || {
            let obj = orm.find_required("posts", 1).unwrap();
            let bumped = obj.get_int("view_cnt").unwrap() + 1;
            let outcome =
                validated_write(&orm, &obj, &[("view_cnt", bumped.into())], &strategy).unwrap();
            if outcome == CommitOutcome::Committed {
                committed.fetch_add(1, Ordering::SeqCst);
            }
        });
    }
    trial.run()?;
    let view_cnt = orm
        .find_required("posts", 1)
        .map_err(err_str)?
        .get_int("view_cnt")
        .map_err(err_str)?;
    let commits = committed.load(Ordering::SeqCst);
    if view_cnt != commits {
        return Err(format!(
            "validation-scope gap: {commits} commits validated but view_cnt={view_cnt}"
        ));
    }
    Ok(())
}

/// Buggy: the version check runs in its own MiniSql query; a write landing
/// between check and commit is silently overwritten (§4.1.2, 11 issues).
pub fn validation_scope_gap(trial: &mut Trial) -> Result<(), String> {
    validation_race(
        trial,
        ValidationStrategy::HandCraftedNonAtomic {
            check: ValidationCheck::Version {
                column: "lock_version".into(),
            },
            pause_between: None, // the scheduler owns the window
        },
    )
}

/// Correct: the same check folded into the `UPDATE`'s WHERE clause —
/// atomic, so one of the two writers always observes a conflict.
pub fn validation_atomic(trial: &mut Trial) -> Result<(), String> {
    validation_race(
        trial,
        ValidationStrategy::HandCraftedAtomic(ValidationCheck::Version {
            column: "lock_version".into(),
        }),
    )
}

// ---------------------------------------------------------------------------
// Soak-race conversions: notification dedupe and coordinated shop flows.
// ---------------------------------------------------------------------------

fn notify_social() -> Arc<mastodon::Mastodon> {
    Arc::new(mastodon_app(Mode::AdHoc))
}

/// Buggy: check-the-table-then-insert dedupe — the check-then-act window
/// admits duplicate notifications.
pub fn notify_unchecked_duplicates(trial: &mut Trial) -> Result<(), String> {
    let social = notify_social();
    for t in 0..2 {
        let social = Arc::clone(&social);
        trial.task(&format!("notifier-{t}"), move || {
            let _ = social.notify_unchecked(7, "mention:1").unwrap();
        });
    }
    trial.run()?;
    if !social.notifications_unique(7).map_err(err_str)? {
        return Err("duplicate notification delivered".into());
    }
    Ok(())
}

/// Correct: the `SETNX` marker *is* the uniqueness check — exactly one
/// delivery on every schedule.
pub fn notify_once_dedupe(trial: &mut Trial) -> Result<(), String> {
    let social = notify_social();
    let delivered = Arc::new(AtomicI64::new(0));
    for t in 0..2 {
        let social = Arc::clone(&social);
        let delivered = Arc::clone(&delivered);
        trial.task(&format!("notifier-{t}"), move || {
            if social.notify_once(7, "mention:1").unwrap() {
                delivered.fetch_add(1, Ordering::SeqCst);
            }
        });
    }
    trial.run()?;
    if delivered.load(Ordering::SeqCst) != 1 {
        return Err(format!(
            "{} deliveries won the SETNX marker",
            delivered.load(Ordering::SeqCst)
        ));
    }
    if !social.notifications_unique(7).map_err(err_str)? {
        return Err("duplicate notification delivered".into());
    }
    Ok(())
}

/// Correct: two coordinated `add_to_cart` requests — the Figure 1a cart
/// total stays consistent with its items on every schedule.
pub fn cart_total_locked(trial: &mut Trial) -> Result<(), String> {
    let shop = Arc::new(broadleaf_app(Mode::AdHoc));
    shop.seed_cart(1).unwrap();
    for t in 0..2 {
        let shop = Arc::clone(&shop);
        trial.task(&format!("shopper-{t}"), move || {
            shop.add_to_cart(1, 10 + t, 1).unwrap();
        });
    }
    trial.run()?;
    if !shop.cart_total_consistent(1).map_err(err_str)? {
        return Err("cart total diverged from its items".into());
    }
    Ok(())
}

/// Mutual exclusion through an arbitrary lock: tasks overlap-check a
/// critical section containing one KV round trip (a scheduling point).
fn mutex_trial(trial: &mut Trial, lock: Arc<dyn AdHocLock>, kv: Client) -> Result<(), String> {
    let in_cs = Arc::new(AtomicI64::new(0));
    let overlap = Arc::new(AtomicBool::new(false));
    for t in 0..2 {
        let lock = Arc::clone(&lock);
        let kv = kv.clone();
        let in_cs = Arc::clone(&in_cs);
        let overlap = Arc::clone(&overlap);
        trial.task(&format!("worker-{t}"), move || {
            let guard = lock.lock("job:1").unwrap();
            if in_cs.fetch_add(1, Ordering::SeqCst) > 0 {
                overlap.store(true, Ordering::SeqCst);
            }
            let _ = kv.get("job:1:payload"); // protected work
            in_cs.fetch_sub(1, Ordering::SeqCst);
            guard.unlock().unwrap();
        });
    }
    trial.run()?;
    if overlap.load(Ordering::SeqCst) {
        return Err("mutual exclusion violated".into());
    }
    Ok(())
}

/// Correct: Discourse's `WATCH`/`MULTI`/`EXEC` lock excludes on every
/// schedule.
pub fn multi_lock_mutex(trial: &mut Trial) -> Result<(), String> {
    use adhoc_transactions::core::locks::KvMultiLock;
    let clock = Arc::new(VirtualClock::new());
    let kv = Client::new(Store::new(), clock, LatencyModel::zero());
    mutex_trial(trial, Arc::new(KvMultiLock::new(kv.clone())), kv)
}

/// Correct: Saleor's re-entrant `SETNX` lock still excludes *other*
/// holders on every schedule (nested acquisition by the holder is fine).
pub fn reentrant_mutex(trial: &mut Trial) -> Result<(), String> {
    let clock = Arc::new(VirtualClock::new());
    let kv = Client::new(Store::new(), clock, LatencyModel::zero());
    let lock = Arc::new(KvSetNxLock::new(kv.clone()).reentrant());
    let in_cs = Arc::new(AtomicI64::new(0));
    let overlap = Arc::new(AtomicBool::new(false));
    for t in 0..2 {
        let lock = Arc::clone(&lock);
        let kv = kv.clone();
        let in_cs = Arc::clone(&in_cs);
        let overlap = Arc::clone(&overlap);
        trial.task(&format!("worker-{t}"), move || {
            let outer = lock.lock("job:1").unwrap();
            if in_cs.fetch_add(1, Ordering::SeqCst) > 0 {
                overlap.store(true, Ordering::SeqCst);
            }
            let inner = lock.lock("job:1").unwrap(); // re-entrant step
            let _ = kv.get("job:1:payload");
            inner.unlock().unwrap();
            in_cs.fetch_sub(1, Ordering::SeqCst);
            outer.unlock().unwrap();
        });
    }
    trial.run()?;
    if overlap.load(Ordering::SeqCst) {
        return Err("re-entrant lock let a second thread in".into());
    }
    Ok(())
}

/// Correct: JumpServer's lock-guarded grant upsert — concurrent grants of
/// the same (user, asset) never duplicate rows and keep the max level.
pub fn grant_idempotent(trial: &mut Trial) -> Result<(), String> {
    let access = Arc::new(jumpserver_app(Mode::AdHoc));
    for t in 0..2i64 {
        let access = Arc::clone(&access);
        trial.task(&format!("granter-{t}"), move || {
            access.grant(7, 1, t + 1).unwrap();
        });
    }
    trial.run()?;
    if !access.grants_unique(7).map_err(err_str)? {
        return Err("duplicate grant rows for one (user, asset)".into());
    }
    Ok(())
}

/// Correct: concurrent post create/delete keeps the denormalized timeline
/// consistent with the posts table on every schedule (a soak-only check
/// until now).
pub fn timeline_consistent(trial: &mut Trial) -> Result<(), String> {
    let social = notify_social();
    {
        let social = Arc::clone(&social);
        trial.task("poster-0", move || {
            social.create_post(7, 1, "a").unwrap();
            social.delete_post(7, 1).unwrap();
        });
    }
    {
        let social = Arc::clone(&social);
        trial.task("poster-1", move || {
            social.create_post(7, 2, "b").unwrap();
        });
    }
    trial.run()?;
    if !social.timeline_consistent(7).map_err(err_str)? {
        return Err("timeline diverged from the posts table".into());
    }
    Ok(())
}

/// Correct: concurrent credential rotations under the per-asset lock —
/// every resulting version has its audit row on every schedule.
pub fn rotation_audit(trial: &mut Trial) -> Result<(), String> {
    let access = Arc::new(jumpserver_app(Mode::AdHoc));
    access.seed_credential(1, "s0").unwrap();
    for t in 0..2 {
        let access = Arc::clone(&access);
        trial.task(&format!("rotator-{t}"), move || {
            access.rotate_credential(1, &format!("s{t}")).unwrap();
        });
    }
    trial.run()?;
    if !access.rotations_audited(1).map_err(err_str)? {
        return Err("credential version missing its audit row".into());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// §6 monitor under the scheduler: its verdicts must not depend on timing.
// ---------------------------------------------------------------------------

fn monitor_discourse_race(trial: &mut Trial, buggy: bool) -> Result<(), String> {
    use adhoc_transactions::apps::discourse;
    use adhoc_transactions::core::monitor::{AccessMonitor, Hazard};
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let monitor = AccessMonitor::new();
    monitor.attach(&db);
    let lock = monitor.wrap_lock(Arc::new(MemLock::new()));
    let mut app = discourse::Discourse::new(discourse::setup(&db).unwrap(), lock, Mode::AdHoc);
    if buggy {
        app = app.lock_after_read();
    }
    let app = Arc::new(app);
    app.seed_topic(1).unwrap();
    let posts = [
        app.seed_post(1, "a", 0).unwrap(),
        app.seed_post(1, "b", 0).unwrap(),
    ];
    for (t, post) in posts.into_iter().enumerate() {
        let app = Arc::clone(&app);
        trial.task(&format!("editor-{t}"), move || {
            let token = app.begin_edit(post).unwrap();
            app.commit_edit(&token, "edited").unwrap();
        });
    }
    trial.run()?;
    let hazards = monitor.hazards();
    let flagged = hazards
        .iter()
        .any(|h| matches!(h, Hazard::LockAfterRead { table, .. } if table == "posts"));
    if buggy && !flagged {
        return Err("monitor missed the lock-after-read hazard".into());
    }
    if !buggy && flagged {
        return Err(format!("monitor flagged a correct flow: {hazards:?}"));
    }
    Ok(())
}

/// Correct-as-a-tool: the monitor flags the Discourse lock-after-read flow
/// on *every* interleaving — the explorer hunts for a schedule where the
/// hazard slips past and must find none.
pub fn monitor_catches_lock_after_read(trial: &mut Trial) -> Result<(), String> {
    monitor_discourse_race(trial, true)
}

/// Correct-as-a-tool: the monitor stays quiet on the corrected flow on
/// every interleaving — no schedule-dependent false positives.
pub fn monitor_quiet_on_correct_flow(trial: &mut Trial) -> Result<(), String> {
    monitor_discourse_race(trial, false)
}

/// Correct: Figure 1c's optimistic vote loop — version-checked retries
/// count every vote exactly once on every schedule.
pub fn vote_occ(trial: &mut Trial) -> Result<(), String> {
    let social = notify_social();
    social.seed_poll(1).unwrap();
    for t in 0..2 {
        let social = Arc::clone(&social);
        trial.task(&format!("voter-{t}"), move || {
            social.vote(1, mastodon::Choice::A).unwrap();
        });
    }
    trial.run()?;
    let (a, b) = social.poll_totals(1).map_err(err_str)?;
    if (a, b) != (2, 0) {
        return Err(format!("votes lost: tallies ({a}, {b}), expected (2, 0)"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Commit-spine epoch advance: acked ⇒ visible under every interleaving.
// ---------------------------------------------------------------------------

/// Correct: the epoch-batched commit spine under interleaved completions.
/// Three tasks commit rounds of updates to disjoint rows — their commit
/// timestamps come from per-slot blocks, and the scheduler interleaves the
/// completions so the applied watermark must repeatedly close gaps (and
/// revoke abandoned block remainders) before any ack returns. Each task
/// then reads its own row back: an acked commit that a later snapshot
/// cannot see means the watermark jumped a gap or lagged its ack.
pub fn epoch_watermark_advance(trial: &mut Trial) -> Result<(), String> {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    db.create_table(
        Schema::new(
            "rows",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("val", ColumnType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    db.run(IsolationLevel::ReadCommitted, |t| {
        for id in 0..3i64 {
            t.insert("rows", &[("id", id.into()), ("val", 0.into())])?;
        }
        Ok(())
    })
    .unwrap();
    let stale = Arc::new(AtomicBool::new(false));
    for t in 0..3i64 {
        let db = db.clone();
        let stale = Arc::clone(&stale);
        trial.task(&format!("committer-{t}"), move || {
            for round in 1..=2i64 {
                db.run(IsolationLevel::ReadCommitted, |x| {
                    x.update("rows", t, &[("val", round.into())])
                })
                .unwrap();
                // Acked ⇒ a later snapshot includes the commit.
                let seen = db
                    .run(IsolationLevel::ReadCommitted, |x| x.get("rows", t))
                    .unwrap()
                    .map(|r| r.values[1].as_int());
                if seen != Some(round) {
                    stale.store(true, Ordering::SeqCst);
                }
            }
        });
    }
    trial.run()?;
    if stale.load(Ordering::SeqCst) {
        return Err(
            "acked commit invisible to a later snapshot: the applied watermark lagged its ack"
                .into(),
        );
    }
    // Quiescent: the watermark covered every one of the 7 write commits
    // (timestamps are unique, so the highest is at least 7), and no final
    // value was lost to a mis-advanced epoch.
    if db.applied_watermark() < 7 {
        return Err(format!(
            "applied watermark stalled at {} with 7 commits acked",
            db.applied_watermark()
        ));
    }
    for id in 0..3i64 {
        let v = db
            .latest_committed("rows", id)
            .map_err(err_str)?
            .map(|r| r.values[1].as_int());
        if v != Some(2) {
            return Err(format!("row {id} lost its final commit (saw {v:?})"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Coordination avoidance: commutative-counter merge under a crash.
// ---------------------------------------------------------------------------

/// Correct: two concurrent commutative bumps of one hot counter, with a
/// crash the scheduler may land anywhere — including between a commit's
/// apply and its ack. Deltas merge instead of conflicting, so on every
/// schedule: an acked bump survives the crash (acked ⇒ durable), no bump
/// applies twice, and the counter keeps accepting deltas after restart.
pub fn delta_merge_crash(trial: &mut Trial) -> Result<(), String> {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    db.create_table(
        Schema::new(
            "counters",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("hits", ColumnType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    db.run(IsolationLevel::ReadCommitted, |t| {
        t.insert("counters", &[("id", 1.into()), ("hits", 0.into())])
    })
    .unwrap();
    let acked = Arc::new(AtomicI64::new(0));
    for t in 0..2 {
        let db = db.clone();
        let acked = Arc::clone(&acked);
        trial.task(&format!("bumper-{t}"), move || {
            // A crash racing the commit may surface as an error here; the
            // invariant below covers both outcomes of that ambiguity.
            if db
                .run(IsolationLevel::ReadCommitted, |x| {
                    x.add_delta("counters", 1, "hits", 1)
                })
                .is_ok()
            {
                acked.fetch_add(1, Ordering::SeqCst);
            }
        });
    }
    {
        let db = db.clone();
        trial.task("crash", move || db.simulate_crash());
    }
    trial.run()?;
    let hits = db
        .latest_committed("counters", 1)
        .map_err(err_str)?
        .map(|r| r.values[1].as_int())
        .unwrap_or(0);
    let acked = acked.load(Ordering::SeqCst);
    if hits < acked {
        return Err(format!(
            "acked bump lost across the crash: hits = {hits}, acked = {acked}"
        ));
    }
    if hits > 2 {
        return Err(format!("a bump applied twice: hits = {hits} of 2 sent"));
    }
    // The counter must still merge deltas after restart (chain state and
    // the volatile ledgers re-derive from committed rows).
    db.run(IsolationLevel::ReadCommitted, |x| {
        x.add_delta("counters", 1, "hits", 1)
    })
    .map_err(err_str)?;
    let after = db
        .latest_committed("counters", 1)
        .map_err(err_str)?
        .map(|r| r.values[1].as_int());
    if after != Some(hits + 1) {
        return Err(format!(
            "post-restart bump merged wrong: {after:?}, expected {}",
            hits + 1
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// §7 cure: an optimistic transaction spanning two simulated HTTP requests.
// ---------------------------------------------------------------------------

/// Correct: request 1 reads a post into an optimistic transaction and
/// parks it in a [`ContinuationStore`]; request 2 restores it and commits
/// with validate-on-save. On schedules where the concurrent writer lands
/// between the requests, validation must reject the stale continuation
/// and the redo loop repeat the RMW — both increments count on every
/// schedule.
pub fn continuation_validation_race(trial: &mut Trial) -> Result<(), String> {
    use adhoc_transactions::orm::{ContinuationStore, OccTxn, OrmError};

    fn bump(orm: &Orm) -> OccTxn {
        let mut occ = OccTxn::new();
        let obj = occ
            .read_fields(orm, "posts", 1, &["view_cnt"])
            .unwrap()
            .expect("seeded post");
        let next = obj.get_int("view_cnt").unwrap() + 1;
        occ.stage_update("posts", 1, &[("view_cnt", next.into())]);
        occ
    }

    fn commit_with_redo(orm: &Orm, mut pending: OccTxn) {
        loop {
            match pending.commit(orm) {
                Ok(()) => return,
                Err(OrmError::OccConflict { .. }) => pending = bump(orm),
                Err(e) => panic!("continuation commit: {e}"),
            }
        }
    }

    let orm = Arc::new(validation_fixture());
    let store = Arc::new(ContinuationStore::new());
    {
        let orm = Arc::clone(&orm);
        let store = Arc::clone(&store);
        trial.task("form-flow", move || {
            // Request 1: read, stage, park the continuation.
            let token = store.save(bump(&orm));
            // Request 2: restore and commit, redoing on validation failure.
            let pending = store.restore(token).unwrap();
            commit_with_redo(&orm, pending);
        });
    }
    {
        let orm = Arc::clone(&orm);
        trial.task("concurrent-writer", move || {
            // The writer that invalidates the parked continuation when the
            // scheduler places it between the two requests.
            commit_with_redo(&orm, bump(&orm));
        });
    }
    trial.run()?;
    let view_cnt = orm
        .find_required("posts", 1)
        .map_err(err_str)?
        .get_int("view_cnt")
        .map_err(err_str)?;
    if view_cnt != 2 {
        return Err(format!(
            "continuation race lost an increment: view_cnt = {view_cnt}, expected 2"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Corpus extension — the web-tier fixed-window rate limiter (witness 25).
// ---------------------------------------------------------------------------

/// Buggy: the service layer's fixed-window rate limiter is a
/// check-then-act ad hoc transaction over the KV store — `GET` the
/// window's count, compare against the limit, `INCR`. Two concurrent
/// requests from the same client both read `0` against a 1-per-window
/// limit and both get admitted; no coordination spans the two round
/// trips. The token-bucket cure (one atomic in-process decision) has no
/// such window — see `adhoc_transactions::service::TokenBucketLimiter`.
pub fn rate_limit_window_race(trial: &mut Trial) -> Result<(), String> {
    use adhoc_transactions::service::{FixedWindowLimiter, RateLimiter};

    let clock = Arc::new(VirtualClock::new());
    let kv = Client::new(Store::new(), clock, LatencyModel::zero());
    let limiter = Arc::new(FixedWindowLimiter::new(kv, 1, Duration::from_secs(1)));
    let admitted = Arc::new(AtomicI64::new(0));
    for t in 0..2 {
        let limiter = Arc::clone(&limiter);
        let admitted = Arc::clone(&admitted);
        trial.task(&format!("request-{t}"), move || {
            if limiter.try_admit(42).unwrap() {
                admitted.fetch_add(1, Ordering::SeqCst);
            }
        });
    }
    trial.run()?;
    let n = admitted.load(Ordering::SeqCst);
    if n > 1 {
        return Err(format!(
            "over-admission: {n} requests passed a 1-per-window limit"
        ));
    }
    Ok(())
}
