//! `SFU` and `DB`: database-backed locks (§3.2.1).
//!
//! `SFU` piggybacks on `SELECT … FOR UPDATE`: the engine's own record lock
//! is the ad hoc lock, held until the enclosing transaction ends. Spree's
//! bug (§4.1.1, issue \[61\]) was issuing the statement *without* an
//! enclosing transaction, so "the database lock \[releases\] as soon as the
//! statement returns" — reproduced by [`SfuLock::outside_transaction`].
//!
//! `DB` stores lock state in a dedicated table (Broadleaf): acquire is a
//! read-check-write transaction, so every cycle pays a durable commit —
//! the slowest bar of Figure 2. Locks persist across application crashes;
//! Broadleaf tags each with a boot UUID so a rebooted instance can
//! distinguish (and reclaim) pre-crash locks (§3.4.2). Disabling the check
//! ([`DbTableLock::ignore_boot_uuid`]) reproduces the reboot deadlock.

use super::{AcquireConfig, AdHocLock, Guard, LockError, LockGuard};
use adhoc_storage::{
    Column, ColumnType, Database, DbError, IsolationLevel, Schema, Transaction, Value,
};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Stable 64-bit key hash (FNV-1a), truncated positive for use as a row id.
fn key_to_row_id(key: &str) -> i64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h & (i64::MAX as u64)) as i64
}

/// `SFU`: a `SELECT … FOR UPDATE` on a dedicated lock row.
#[derive(Clone)]
pub struct SfuLock {
    db: Database,
    table: String,
    enclosed: bool,
}

impl SfuLock {
    /// Table name used for lock rows.
    pub const TABLE: &'static str = "__sfu_locks";

    /// Create (idempotently) the lock-row table and return the lock.
    pub fn new(db: Database) -> Self {
        let schema = Schema::new(
            Self::TABLE,
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("key", ColumnType::Str),
            ],
            "id",
        )
        .expect("static schema");
        match db.create_table(schema) {
            Ok(()) | Err(DbError::DuplicateTable { .. }) => {}
            Err(e) => panic!("creating SFU lock table: {e}"),
        }
        Self {
            db,
            table: Self::TABLE.to_string(),
            enclosed: true,
        }
    }

    /// Fault injection (Spree): run the locking read in its own autocommit
    /// transaction, releasing the lock before the caller's critical
    /// section even starts.
    pub fn outside_transaction(mut self) -> Self {
        self.enclosed = false;
        self
    }
}

struct SfuGuard {
    /// The transaction whose record lock *is* the ad hoc lock. `None` for
    /// the buggy outside-transaction variant (nothing is held).
    txn: Option<Transaction>,
    released: bool,
}

impl LockGuard for SfuGuard {
    fn unlock(&mut self) -> Result<(), LockError> {
        if self.released {
            return Ok(());
        }
        self.released = true;
        if let Some(txn) = self.txn.take() {
            txn.commit()
                .map_err(|e| LockError::Backend(e.to_string()))?;
        }
        Ok(())
    }

    fn is_valid(&self) -> bool {
        !self.released && self.txn.as_ref().is_some_and(|t| t.is_active())
    }

    fn leak(&mut self) {
        self.released = true;
        // Dropping the transaction aborts it server-side — exactly what
        // happens when the application's connection dies: the engine
        // releases the lock.
        self.txn = None;
    }
}

impl AdHocLock for SfuLock {
    fn lock(&self, key: &str) -> Result<Guard, LockError> {
        let id = key_to_row_id(key);
        let acquire = |txn: &mut Transaction| -> Result<(), DbError> {
            let existing = txn.get_for_update(&self.table, id)?;
            if existing.is_none() {
                // First use of this key: create the lock row; the insert's
                // exclusive record lock doubles as the acquisition.
                match txn.insert(&self.table, &[("id", Value::Int(id)), ("key", key.into())]) {
                    Ok(_) => {}
                    // Raced with another first-use: lock the winner's row.
                    Err(DbError::UniqueViolation { .. }) => {
                        txn.get_for_update(&self.table, id)?;
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        };
        if self.enclosed {
            let mut txn = self.db.begin_with(IsolationLevel::ReadCommitted);
            acquire(&mut txn).map_err(|e| LockError::Backend(e.to_string()))?;
            Ok(Guard::new(Box::new(SfuGuard {
                txn: Some(txn),
                released: false,
            })))
        } else {
            // The Spree bug: autocommit — the row lock is gone by the time
            // this function returns.
            self.db
                .run(IsolationLevel::ReadCommitted, |t| acquire(t))
                .map_err(|e| LockError::Backend(e.to_string()))?;
            Ok(Guard::new(Box::new(SfuGuard {
                txn: None,
                released: false,
            })))
        }
    }

    fn label(&self) -> &'static str {
        "SFU"
    }
}

/// `DB`: Broadleaf's lock table with boot-UUID crash recovery.
#[derive(Clone)]
pub struct DbTableLock {
    db: Database,
    table: String,
    config: AcquireConfig,
    /// Current boot identity (changes on [`DbTableLock::reboot`]).
    boot: Arc<AtomicI64>,
    respect_boot_uuid: bool,
}

impl DbTableLock {
    /// Table name used for lock rows.
    pub const TABLE: &'static str = "__db_locks";

    /// Create (idempotently) the lock table and return the lock.
    pub fn new(db: Database) -> Self {
        let schema = Schema::new(
            Self::TABLE,
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("key", ColumnType::Str),
                Column::new("locked", ColumnType::Bool),
                Column::new("boot", ColumnType::Int),
            ],
            "id",
        )
        .expect("static schema");
        match db.create_table(schema) {
            Ok(()) | Err(DbError::DuplicateTable { .. }) => {}
            Err(e) => panic!("creating DB lock table: {e}"),
        }
        Self {
            db,
            table: Self::TABLE.to_string(),
            config: AcquireConfig::default(),
            boot: Arc::new(AtomicI64::new(1)),
            respect_boot_uuid: true,
        }
    }

    /// Override the acquisition retry/timeout policy.
    pub fn with_config(mut self, config: AcquireConfig) -> Self {
        self.config = config;
        self
    }

    /// Fault injection: treat pre-crash locks like live ones — the reboot
    /// deadlock Broadleaf's boot UUID exists to prevent.
    pub fn ignore_boot_uuid(mut self) -> Self {
        self.respect_boot_uuid = false;
        self
    }

    /// Simulate an application restart: a new boot identity. Locks written
    /// by earlier boots become reclaimable (when the UUID check is on).
    pub fn reboot(&self) {
        self.boot.fetch_add(1, Ordering::SeqCst);
    }

    fn current_boot(&self) -> i64 {
        self.boot.load(Ordering::SeqCst)
    }

    /// One acquisition attempt: a read-check-write transaction.
    fn try_acquire(&self, key: &str, id: i64) -> Result<bool, LockError> {
        let boot = self.current_boot();
        let schema = self
            .db
            .schema(&self.table)
            .map_err(|e| LockError::Backend(e.to_string()))?;
        self.db
            .run(IsolationLevel::ReadCommitted, |txn| {
                let existing = txn.get_for_update(&self.table, id)?;
                match existing {
                    None => {
                        txn.insert(
                            &self.table,
                            &[
                                ("id", Value::Int(id)),
                                ("key", key.into()),
                                ("locked", true.into()),
                                ("boot", boot.into()),
                            ],
                        )?;
                        Ok(true)
                    }
                    Some(row) => {
                        let locked = row.get_bool(&schema, "locked")?;
                        let row_boot = row.get_int(&schema, "boot")?;
                        let stale = self.respect_boot_uuid && row_boot != boot;
                        if !locked || stale {
                            txn.update(
                                &self.table,
                                id,
                                &[("locked", true.into()), ("boot", boot.into())],
                            )?;
                            Ok(true)
                        } else {
                            Ok(false)
                        }
                    }
                }
            })
            .map_err(|e| LockError::Backend(e.to_string()))
    }
}

struct DbTableGuard {
    db: Database,
    table: String,
    id: i64,
    released: bool,
    leak: bool,
}

impl LockGuard for DbTableGuard {
    fn unlock(&mut self) -> Result<(), LockError> {
        if self.released {
            return Ok(());
        }
        self.released = true;
        if self.leak {
            return Ok(());
        }
        self.db
            .run(IsolationLevel::ReadCommitted, |txn| {
                txn.update(&self.table, self.id, &[("locked", false.into())])
            })
            .map_err(|e| LockError::Backend(e.to_string()))?;
        Ok(())
    }

    fn is_valid(&self) -> bool {
        !self.released
    }

    fn leak(&mut self) {
        // The crash case: the row stays `locked = true` in the database.
        self.leak = true;
        self.released = true;
    }
}

impl AdHocLock for DbTableLock {
    fn lock(&self, key: &str) -> Result<Guard, LockError> {
        let id = key_to_row_id(key);
        let mut timer = self.config.policy().timer("DB");
        loop {
            if self.try_acquire(key, id)? {
                return Ok(Guard::new(Box::new(DbTableGuard {
                    db: self.db.clone(),
                    table: self.table.clone(),
                    id,
                    released: false,
                    leak: false,
                })));
            }
            if !timer.wait(None) {
                return Err(LockError::Timeout {
                    key: key.to_string(),
                });
            }
        }
    }

    fn label(&self) -> &'static str {
        "DB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locks::mutual_exclusion_trial;
    use adhoc_storage::EngineProfile;
    use std::time::Duration;

    fn db() -> Database {
        Database::in_memory(EngineProfile::PostgresLike)
    }

    fn fast() -> AcquireConfig {
        AcquireConfig {
            retry_interval: Duration::from_micros(200),
            timeout: Duration::from_secs(10),
        }
    }

    #[test]
    fn key_hash_is_stable_and_positive() {
        assert_eq!(key_to_row_id("cart-1"), key_to_row_id("cart-1"));
        assert_ne!(key_to_row_id("cart-1"), key_to_row_id("cart-2"));
        assert!(key_to_row_id("anything") >= 0);
    }

    #[test]
    fn sfu_mutual_exclusion() {
        let lock = SfuLock::new(db());
        assert_eq!(mutual_exclusion_trial(&lock, "order-7", 6, 50), 6 * 50);
    }

    #[test]
    fn sfu_blocks_until_commit() {
        let lock = SfuLock::new(db());
        let g = lock.lock("k").unwrap();
        assert!(g.is_valid());
        let lock2 = lock.clone();
        let h = std::thread::spawn(move || {
            let g2 = lock2.lock("k").unwrap();
            g2.unlock().unwrap();
        });
        std::thread::sleep(Duration::from_millis(40));
        assert!(!h.is_finished(), "second SFU must block on the row lock");
        g.unlock().unwrap();
        h.join().unwrap();
    }

    #[test]
    fn spree_bug_sfu_outside_transaction_excludes_nothing() {
        // §4.1.1 [61]: without an enclosing transaction the lock releases
        // as soon as the statement returns.
        let lock = SfuLock::new(db()).outside_transaction();
        let g = lock.lock("k").unwrap();
        assert!(!g.is_valid(), "nothing is actually held");
        // A second locker gets straight through.
        let g2 = lock.lock("k").unwrap();
        g2.unlock().unwrap();
        g.unlock().unwrap();
        // And the racy counter comes up short under contention.
        let total = mutual_exclusion_trial(&lock, "k", 8, 300);
        assert!(total < 8 * 300, "expected lost increments, got {total}");
    }

    #[test]
    fn sfu_leak_releases_via_connection_drop() {
        let lock = SfuLock::new(db());
        lock.lock("k").unwrap().leak();
        // The engine aborted the holder's transaction; the next acquire
        // succeeds immediately.
        lock.lock("k").unwrap().unlock().unwrap();
    }

    #[test]
    fn db_table_mutual_exclusion() {
        let lock = DbTableLock::new(db()).with_config(fast());
        assert_eq!(mutual_exclusion_trial(&lock, "checkout", 4, 30), 4 * 30);
    }

    #[test]
    fn db_table_lock_persists_across_crash_and_reboot_reclaims() {
        let lock = DbTableLock::new(db()).with_config(AcquireConfig {
            retry_interval: Duration::from_micros(200),
            timeout: Duration::from_millis(50),
        });
        lock.lock("session-1").unwrap().leak(); // app crashes mid-section
                                                // Same boot: the lock row still says locked -> timeout.
        assert!(matches!(
            lock.lock("session-1"),
            Err(LockError::Timeout { .. })
        ));
        // Reboot: new boot UUID, stale lock is reclaimed (§3.4.2).
        lock.reboot();
        lock.lock("session-1").unwrap().unlock().unwrap();
    }

    #[test]
    fn db_table_lock_without_uuid_check_deadlocks_after_reboot() {
        let lock = DbTableLock::new(db())
            .with_config(AcquireConfig {
                retry_interval: Duration::from_micros(200),
                timeout: Duration::from_millis(50),
            })
            .ignore_boot_uuid();
        lock.lock("session-1").unwrap().leak();
        lock.reboot();
        assert!(
            matches!(lock.lock("session-1"), Err(LockError::Timeout { .. })),
            "without the boot UUID the pre-crash lock blocks forever"
        );
    }

    #[test]
    fn db_table_unlock_frees_for_other_boots_too() {
        let lock = DbTableLock::new(db()).with_config(fast());
        let g = lock.lock("k").unwrap();
        g.unlock().unwrap();
        lock.reboot();
        lock.lock("k").unwrap().unlock().unwrap();
    }
}
