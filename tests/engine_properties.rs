//! Property tests for engine features the model-check suite doesn't reach:
//! savepoint/rollback semantics observed through in-transaction reads, and
//! phantom-freedom of Serializable range scans under concurrent inserts.

use adhoc_transactions::storage::{
    Column, ColumnType, Database, EngineProfile, IsolationLevel, Predicate, Schema,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn seeded_db(profile: EngineProfile) -> Database {
    let db = Database::in_memory(profile);
    db.create_table(
        Schema::new(
            "t",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("grp", ColumnType::Int),
                Column::new("val", ColumnType::Int),
            ],
            "id",
        )
        .unwrap()
        .with_index("grp")
        .unwrap(),
    )
    .unwrap();
    for id in 1..=4i64 {
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.insert(
                "t",
                &[
                    ("id", id.into()),
                    ("grp", 0.into()),
                    ("val", (id * 10).into()),
                ],
            )
        })
        .unwrap();
    }
    db
}

#[derive(Debug, Clone)]
enum SpOp {
    Write { id: i64, val: i64 },
    Delete { id: i64 },
    Savepoint { name: u8 },
    RollbackTo { name: u8 },
}

fn sp_op() -> impl Strategy<Value = SpOp> {
    prop_oneof![
        (1i64..=4, 0i64..100).prop_map(|(id, val)| SpOp::Write { id, val }),
        (1i64..=4).prop_map(|id| SpOp::Delete { id }),
        (0u8..3).prop_map(|name| SpOp::Savepoint { name }),
        (0u8..3).prop_map(|name| SpOp::RollbackTo { name }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Savepoints against a snapshot-stack model: after any sequence of
    /// writes, deletes, savepoints and partial rollbacks, the transaction's
    /// own reads and the committed state both equal the model. Checks the
    /// SQL semantics the engine documents: `ROLLBACK TO` discards writes
    /// made after the savepoint, keeps the savepoint itself, and repeated
    /// names resolve to the most recent.
    #[test]
    fn savepoints_agree_with_a_snapshot_stack_model(
        ops in proptest::collection::vec(sp_op(), 1..40),
        profile_pg in any::<bool>(),
    ) {
        let profile = if profile_pg { EngineProfile::PostgresLike } else { EngineProfile::MySqlLike };
        let db = seeded_db(profile);
        let schema = db.schema("t").unwrap();
        let mut current: HashMap<i64, i64> = (1..=4).map(|id| (id, id * 10)).collect();
        let mut stack: Vec<(u8, HashMap<i64, i64>)> = Vec::new();

        let mut txn = db.begin_with(IsolationLevel::ReadCommitted);
        for op in &ops {
            match *op {
                SpOp::Write { id, val } => {
                    if current.contains_key(&id) {
                        txn.update("t", id, &[("val", val.into())]).unwrap();
                        current.insert(id, val);
                    }
                }
                SpOp::Delete { id } => {
                    let existed = txn.delete("t", id).unwrap();
                    prop_assert_eq!(existed, current.remove(&id).is_some());
                }
                SpOp::Savepoint { name } => {
                    txn.savepoint(&name.to_string());
                    stack.push((name, current.clone()));
                }
                SpOp::RollbackTo { name } => {
                    let found = stack.iter().rposition(|(n, _)| *n == name);
                    match found {
                        Some(pos) => {
                            txn.rollback_to(&name.to_string()).unwrap();
                            current = stack[pos].1.clone();
                            stack.truncate(pos + 1);
                        }
                        None => {
                            prop_assert!(txn.rollback_to(&name.to_string()).is_err());
                        }
                    }
                }
            }
            // The transaction's own reads see the model state at every step.
            for id in 1..=4i64 {
                let got = txn.get("t", id).unwrap().map(|row| row.get_int(&schema, "val").unwrap());
                prop_assert_eq!(got, current.get(&id).copied(), "mid-txn read of {}", id);
            }
        }
        txn.commit().unwrap();
        for id in 1..=4i64 {
            let got = db
                .latest_committed("t", id)
                .unwrap()
                .map(|row| row.get_int(&schema, "val").unwrap());
            prop_assert_eq!(got, current.get(&id).copied(), "committed read of {}", id);
        }
    }

    /// Phantom freedom under MySQL-like Serializable: a range scan takes
    /// next-key locks, so a concurrent insert into the scanned group cannot
    /// appear between two scans of the same transaction — it lands after
    /// commit instead.
    #[test]
    fn serializable_range_scans_admit_no_phantoms(
        grp in 0i64..4,
        pre_seeded in 0usize..3,
    ) {
        let db = Arc::new(seeded_db(EngineProfile::MySqlLike));
        for i in 0..pre_seeded {
            db.run(IsolationLevel::ReadCommitted, |t| {
                t.insert("t", &[("grp", grp.into()), ("val", (100 + i as i64).into())])
            })
            .unwrap();
        }
        let mut reader = db.begin_with(IsolationLevel::Serializable);
        let first = reader.scan("t", &Predicate::eq("grp", grp)).unwrap();
        let writer = {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                db.run_with_retries(IsolationLevel::ReadCommitted, 100, |t| {
                    t.insert("t", &[("grp", grp.into()), ("val", 999.into())])
                })
                .unwrap();
            })
        };
        // Give the writer a chance to race; it must block on the gap lock.
        std::thread::yield_now();
        let second = reader.scan("t", &Predicate::eq("grp", grp)).unwrap();
        let firsts: Vec<i64> = first.iter().map(|(id, _)| *id).collect();
        let seconds: Vec<i64> = second.iter().map(|(id, _)| *id).collect();
        prop_assert_eq!(&firsts, &seconds, "phantom appeared mid-transaction");
        reader.commit().unwrap();
        writer.join().unwrap();
        // After commit the insert lands: exactly one more row in the group.
        let after = db
            .run(IsolationLevel::ReadCommitted, |t| t.scan("t", &Predicate::eq("grp", grp)))
            .unwrap();
        prop_assert_eq!(after.len(), firsts.len() + 1);
    }
}
