//! Transactions and the statement API.
//!
//! Statement semantics vary by engine profile and isolation level exactly
//! where the paper's arguments need them to (the matrix is spelled out on
//! each method). Writes buffer in a per-transaction write set; record locks
//! are taken at statement time (strict 2PL) and released at commit/abort.
//!
//! Commit runs the sharded validation protocol: the transaction locks the
//! row-state shards its [`footprint`](Transaction::footprint) touches (in
//! ascending shard order — deadlock-free), certifies against those shards'
//! commit logs, installs its versions per shard, and retires its commit
//! timestamp into the snapshot watermark. Commits with disjoint footprints
//! never share a lock.

use crate::db::{CommittedTxn, Database, Shard};
use crate::engine::{AccessEvent, EngineProfile, IsolationLevel};
use crate::error::{DbError, TxnId};
use crate::lock::LockMode;
use crate::predicate::{Predicate, ValueInterval};
use crate::schema::{row_from_pairs, Row};
use crate::shard::{shard_of, Footprint, ShardSet};
use crate::table::{CommitTs, RowVersion, Table};
use crate::value::{ColumnType, Value};
use crate::wal::WalEncoder;
use crate::Result;
use parking_lot::MutexGuard;
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// How this commit's write-ahead record reaches (or fails to reach) the
/// durable medium — the fault-injected shapes of the fsync boundary. Only
/// meaningful when the database has a WAL configured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WalOutcome {
    /// Normal commit: append, then sync per the configured policy.
    Policy,
    /// [`FaultKind::CrashAfterDurable`](adhoc_sim::FaultKind): the record
    /// is unconditionally fsynced (the commit *is* durable) before the
    /// acknowledgement is lost.
    Forced,
    /// [`FaultKind::CrashBeforeDurable`](adhoc_sim::FaultKind): the record
    /// reaches the page cache only; the fsync never happens.
    NoSync,
    /// [`FaultKind::TornWrite`](adhoc_sim::FaultKind): the crash lands
    /// mid-flush, leaving a partial frame on the durable medium.
    Torn,
}

/// One buffered write: `row = None` is a deletion.
#[derive(Debug, Clone)]
struct Pending {
    table: usize,
    id: i64,
    row: Option<Row>,
}

/// One buffered commutative delta ([`Transaction::add_delta`]): an
/// increment of an integer column that carries no read footprint and
/// takes no record lock. Materialized into a full-row image at commit,
/// under the row's shard guard, against whatever version is latest
/// *then* — which is exactly why two concurrent bumps of the same row
/// both commit instead of one aborting the other.
#[derive(Debug, Clone)]
struct PendingDelta {
    table: usize,
    id: i64,
    column: usize,
    delta: i64,
}

/// How a scan found its candidates, and the interval gap/SSI tracking uses.
struct ScanPlan {
    ids: Vec<i64>,
    /// Column position the interval ranges over (primary key for full and
    /// pk scans) and the next-key-widened interval.
    gap_column: usize,
    gap: ValueInterval,
}

/// An open transaction. Single-threaded by design (`&mut self` statements);
/// share the [`Database`] handle across threads, not the transaction.
///
/// Dropping an active transaction aborts it.
pub struct Transaction {
    db: Database,
    id: TxnId,
    iso: IsolationLevel,
    snapshot: CommitTs,
    pending: Vec<Pending>,
    /// Commutative increments, kept separate from `pending` because they
    /// have no pre-image: they merge against the latest committed version
    /// at install time instead of overwriting it.
    deltas: Vec<PendingDelta>,
    read_rows: HashSet<(usize, i64)>,
    read_ranges: Vec<(usize, usize, ValueInterval)>,
    savepoints: Vec<(String, usize, usize)>,
    active: bool,
    /// Absolute deadline on the engine clock: statements past it fail
    /// fast with [`DbError::DeadlineExceeded`] before touching the wire,
    /// and lock waits are capped by the remaining time.
    deadline: Option<adhoc_sim::Deadline>,
}

impl Transaction {
    pub(crate) fn new(db: Database, id: TxnId, iso: IsolationLevel, snapshot: CommitTs) -> Self {
        Self {
            db,
            id,
            iso,
            snapshot,
            pending: Vec::new(),
            deltas: Vec::new(),
            read_rows: HashSet::new(),
            read_ranges: Vec::new(),
            savepoints: Vec::new(),
            active: true,
            deadline: None,
        }
    }

    /// Attach an absolute deadline: once the engine clock passes it, every
    /// subsequent statement fails fast with [`DbError::DeadlineExceeded`]
    /// (unambiguous — nothing was sent), and lock waits give up once the
    /// remaining time is spent. The in-flight work is not interrupted;
    /// this bounds how much *new* work an out-of-time request can queue.
    pub fn with_deadline(mut self, deadline: adhoc_sim::Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The commit timestamp this transaction's snapshot reads at. Exposed
    /// for visibility oracles: paired with
    /// [`Database::applied_watermark`], it lets a test assert that no
    /// begin ever observes a timestamp ahead of the applied frontier.
    pub fn snapshot_ts(&self) -> CommitTs {
        self.snapshot
    }

    /// One statement round trip: deadline fast-fail, then the database's
    /// breaker/fault gate (see `Database::statement_gate`).
    fn statement(&self) -> Result<()> {
        if let Some(deadline) = &self.deadline {
            if deadline.instant() <= self.db.now() {
                return Err(DbError::DeadlineExceeded { txn: self.id });
            }
        }
        self.db.statement_gate(self.id)
    }

    /// How long lock waits may still run under the transaction deadline
    /// (`None` = only the engine-wide lock-wait timeout applies).
    fn wait_cap(&self) -> Option<std::time::Duration> {
        self.deadline
            .map(|d| d.instant().saturating_sub(self.db.now()))
    }

    /// This transaction's id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The isolation level the transaction runs at.
    pub fn isolation(&self) -> IsolationLevel {
        self.iso
    }

    /// True while the transaction can still issue statements.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// True when the transaction has buffered writes (including
    /// commutative deltas).
    pub fn has_writes(&self) -> bool {
        !self.pending.is_empty() || !self.deltas.is_empty()
    }

    /// The transaction's current conflict footprint: the shards its
    /// buffered writes and certified reads map to. Reads are tracked only
    /// where the isolation level certifies them (PostgreSQL-like
    /// Serializable); a predicate scan cannot be localized — any insert
    /// anywhere could move into the range — so it widens reads to every
    /// shard. Two transactions whose footprints are
    /// [disjoint](Footprint::is_disjoint) share no commit-time lock.
    pub fn footprint(&self) -> Footprint {
        let writes: ShardSet = self
            .pending
            .iter()
            .map(|p| (p.table, p.id))
            .chain(self.deltas.iter().map(|d| (d.table, d.id)))
            .map(|(t, id)| shard_of(t, id))
            .collect();
        let reads = if self.read_ranges.is_empty() {
            self.read_rows
                .iter()
                .map(|(t, id)| shard_of(*t, *id))
                .collect()
        } else {
            ShardSet::all()
        };
        Footprint { reads, writes }
    }

    fn profile(&self) -> EngineProfile {
        self.db.profile()
    }

    fn observe_read(&self, table: &str, row: i64, locking: bool) {
        if !self.db.observing() {
            return;
        }
        self.db.observe(AccessEvent::Read {
            txn: self.id,
            table: table.to_string(),
            row,
            locking,
        });
    }

    fn observe_write(&self, table: &str, row: i64) {
        if !self.db.observing() {
            return;
        }
        self.db.observe(AccessEvent::Write {
            txn: self.id,
            table: table.to_string(),
            row,
        });
    }

    fn ensure_active(&self) -> Result<()> {
        if self.active {
            Ok(())
        } else {
            Err(DbError::TxnNotActive { txn: self.id })
        }
    }

    /// Snapshot a statement reads at: Read Committed refreshes per
    /// statement; higher levels pin the begin snapshot.
    fn stmt_snapshot(&self) -> CommitTs {
        if self.iso == IsolationLevel::ReadCommitted {
            self.db.current_snapshot()
        } else {
            self.snapshot
        }
    }

    /// Newest pending write for a row, if any. `Some(None)` = deleted.
    fn pending_row(&self, table: usize, id: i64) -> Option<Option<&Row>> {
        self.pending
            .iter()
            .rev()
            .find(|p| p.table == table && p.id == id)
            .map(|p| p.row.as_ref())
    }

    fn resolve(&self, table: &str) -> Result<Arc<Table>> {
        self.db.resolve_table(table)
    }

    /// Plan a scan against the latest committed index state.
    fn plan(&self, t: &Table, pred: &Predicate) -> Result<ScanPlan> {
        if let Some((col_name, interval)) = pred.index_column() {
            let col = t.schema.column_index(col_name)?;
            if col == t.schema.primary_key {
                let (ids, (prev, next)) = t.pk_scan(&interval);
                return Ok(ScanPlan {
                    ids,
                    gap_column: col,
                    gap: interval.widen_to_gap(prev, next),
                });
            }
            if t.index_on(col).is_some() {
                let (ids, (prev, next)) = t.index_scan(col, &interval)?;
                return Ok(ScanPlan {
                    ids,
                    gap_column: col,
                    gap: interval.widen_to_gap(prev, next),
                });
            }
        }
        // Full scan: ranges over the whole primary-key space.
        Ok(ScanPlan {
            ids: t.all_ids(),
            gap_column: t.schema.primary_key,
            gap: ValueInterval::all(),
        })
    }

    /// Latest committed row, from the row's shard.
    fn latest(&self, tid: usize, id: i64) -> Option<Row> {
        self.db
            .with_chain(tid, id, |c| c.and_then(|c| c.latest()).cloned())
    }

    /// Latest committed row plus its commit timestamp (for first-updater
    /// checks); `None` when the row has no committed history at all.
    fn latest_with_ts(&self, tid: usize, id: i64) -> Option<(Option<Row>, CommitTs)> {
        self.db
            .with_chain(tid, id, |c| c.map(|c| (c.latest().cloned(), c.latest_ts())))
    }

    /// Row visible at `snap`, from the row's shard.
    fn visible(&self, tid: usize, id: i64, snap: CommitTs) -> Option<Row> {
        self.db
            .with_chain(tid, id, |c| c.and_then(|c| c.visible(snap)).cloned())
    }

    /// `SELECT * FROM table WHERE pk = id` (plain read).
    ///
    /// * MySQL-like Serializable: shared-locking read of the latest
    ///   committed version (InnoDB turns plain reads into `LOCK IN SHARE
    ///   MODE` — the ingredient of the §3.3.1 RMW deadlock).
    /// * Anything else: non-locking snapshot read (statement snapshot under
    ///   Read Committed, transaction snapshot above).
    /// * PostgreSQL-like Serializable additionally records the row in the
    ///   SSI read set.
    pub fn get(&mut self, table: &str, id: i64) -> Result<Option<Row>> {
        let result = self.get_inner(table, id)?;
        if result.is_some() {
            self.observe_read(table, id, false);
        }
        Ok(result)
    }

    fn get_inner(&mut self, table: &str, id: i64) -> Result<Option<Row>> {
        self.ensure_active()?;
        self.statement()?;
        let t = self.resolve(table)?;
        let tid = t.id;
        if let Some(p) = self.pending_row(tid, id) {
            return Ok(p.cloned());
        }
        match (self.profile(), self.iso) {
            (EngineProfile::MySqlLike, IsolationLevel::Serializable) => {
                self.db.locks().lock_record_within(
                    self.id,
                    tid,
                    id,
                    LockMode::Shared,
                    self.wait_cap(),
                )?;
                Ok(self.latest(tid, id))
            }
            (profile, iso) => {
                if profile == EngineProfile::PostgresLike && iso == IsolationLevel::Serializable {
                    self.read_rows.insert((tid, id));
                }
                let snap = self.stmt_snapshot();
                Ok(self.visible(tid, id, snap))
            }
        }
    }

    /// `SELECT * FROM table WHERE pred` (plain scan). Same matrix as
    /// [`get`](Self::get); MySQL-like Serializable additionally takes a gap
    /// (next-key) lock over the scanned index interval, and
    /// PostgreSQL-like Serializable records the interval in the SSI read
    /// set — both at the gap granularity §3.3.2 describes.
    pub fn scan(&mut self, table: &str, pred: &Predicate) -> Result<Vec<(i64, Row)>> {
        self.ensure_active()?;
        self.statement()?;
        let t = self.resolve(table)?;
        let tid = t.id;
        let plan = self.plan(&t, pred)?;

        let mut matched: BTreeMap<i64, Row> = BTreeMap::new();
        if self.profile() == EngineProfile::MySqlLike && self.iso == IsolationLevel::Serializable {
            for id in &plan.ids {
                self.db.locks().lock_record_within(
                    self.id,
                    tid,
                    *id,
                    LockMode::Shared,
                    self.wait_cap(),
                )?;
            }
            self.db
                .locks()
                .lock_gap(self.id, tid, plan.gap_column, plan.gap.clone());
            for id in &plan.ids {
                if let Some(row) = self.latest(tid, *id) {
                    if pred.matches(&t.schema, &row)? {
                        matched.insert(*id, row);
                    }
                }
            }
        } else {
            if self.profile() == EngineProfile::PostgresLike
                && self.iso == IsolationLevel::Serializable
            {
                self.read_ranges
                    .push((tid, plan.gap_column, plan.gap.clone()));
            }
            let snap = self.stmt_snapshot();
            for id in &plan.ids {
                if let Some(row) = self.visible(tid, *id, snap) {
                    if pred.matches(&t.schema, &row)? {
                        if self.profile() == EngineProfile::PostgresLike
                            && self.iso == IsolationLevel::Serializable
                        {
                            self.read_rows.insert((tid, *id));
                        }
                        matched.insert(*id, row);
                    }
                }
            }
        }
        self.overlay(tid, &t, pred, &mut matched)?;
        for id in matched.keys() {
            self.observe_read(table, *id, false);
        }
        Ok(matched.into_iter().collect())
    }

    /// Apply this transaction's own pending writes on top of a scan result.
    fn overlay(
        &self,
        tid: usize,
        t: &Table,
        pred: &Predicate,
        matched: &mut BTreeMap<i64, Row>,
    ) -> Result<()> {
        for p in &self.pending {
            if p.table != tid {
                continue;
            }
            match &p.row {
                Some(row) if pred.matches(&t.schema, row)? => {
                    matched.insert(p.id, row.clone());
                }
                _ => {
                    matched.remove(&p.id);
                }
            }
        }
        Ok(())
    }

    /// Point read at Read Committed regardless of the transaction's own
    /// isolation level — the "per-operation isolation" hint of Table 7a
    /// (SQL Server's `READCOMMITTED` table hint inside a snapshot
    /// transaction). Reads the latest committed version without locking
    /// and without entering the SSI read set: the caller explicitly opts
    /// this access out of coordination (§3.1.1's partial coordination).
    pub fn get_read_committed(&mut self, table: &str, id: i64) -> Result<Option<Row>> {
        self.ensure_active()?;
        self.statement()?;
        let t = self.resolve(table)?;
        if let Some(p) = self.pending_row(t.id, id) {
            return Ok(p.cloned());
        }
        let result = self.latest(t.id, id);
        if result.is_some() {
            self.observe_read(table, id, false);
        }
        Ok(result)
    }

    /// `SELECT … FOR UPDATE`: exclusive-locking read of the latest
    /// committed versions.
    ///
    /// * MySQL-like at Repeatable Read and above: also takes the next-key
    ///   gap lock over the scanned interval.
    /// * PostgreSQL-like at Repeatable Read and above: fails with a
    ///   serialization error when a matched row was updated since the
    ///   transaction snapshot (first-updater-wins).
    pub fn select_for_update(&mut self, table: &str, pred: &Predicate) -> Result<Vec<(i64, Row)>> {
        self.ensure_active()?;
        self.statement()?;
        let t = self.resolve(table)?;
        let tid = t.id;
        let plan = self.plan(&t, pred)?;
        for id in &plan.ids {
            self.db.locks().lock_record_within(
                self.id,
                tid,
                *id,
                LockMode::Exclusive,
                self.wait_cap(),
            )?;
        }
        if self.profile() == EngineProfile::MySqlLike && self.iso >= IsolationLevel::RepeatableRead
        {
            self.db
                .locks()
                .lock_gap(self.id, tid, plan.gap_column, plan.gap.clone());
        }
        if self.profile() == EngineProfile::PostgresLike && self.iso == IsolationLevel::Serializable
        {
            self.read_ranges
                .push((tid, plan.gap_column, plan.gap.clone()));
        }
        let mut matched: BTreeMap<i64, Row> = BTreeMap::new();
        for id in &plan.ids {
            let Some((Some(row), latest_ts)) = self.latest_with_ts(tid, *id) else {
                continue;
            };
            if !pred.matches(&t.schema, &row)? {
                continue;
            }
            if self.profile() == EngineProfile::PostgresLike
                && self.iso >= IsolationLevel::RepeatableRead
                && latest_ts > self.snapshot
                && self.pending_row(tid, *id).is_none()
            {
                return Err(self.serialization_failure("row updated since snapshot"));
            }
            if self.profile() == EngineProfile::PostgresLike
                && self.iso == IsolationLevel::Serializable
            {
                self.read_rows.insert((tid, *id));
            }
            matched.insert(*id, row);
        }
        self.overlay(tid, &t, pred, &mut matched)?;
        for id in matched.keys() {
            self.observe_read(table, *id, true);
        }
        Ok(matched.into_iter().collect())
    }

    /// Point-read `FOR UPDATE` by primary key.
    pub fn get_for_update(&mut self, table: &str, id: i64) -> Result<Option<Row>> {
        let result = self.get_for_update_inner(table, id)?;
        if result.is_some() {
            self.observe_read(table, id, true);
        }
        Ok(result)
    }

    fn get_for_update_inner(&mut self, table: &str, id: i64) -> Result<Option<Row>> {
        self.ensure_active()?;
        self.statement()?;
        let t = self.resolve(table)?;
        let tid = t.id;
        self.db.locks().lock_record_within(
            self.id,
            tid,
            id,
            LockMode::Exclusive,
            self.wait_cap(),
        )?;
        if let Some(p) = self.pending_row(tid, id) {
            return Ok(p.cloned());
        }
        let Some((latest, latest_ts)) = self.latest_with_ts(tid, id) else {
            return Ok(None);
        };
        if self.profile() == EngineProfile::PostgresLike
            && self.iso >= IsolationLevel::RepeatableRead
            && latest_ts > self.snapshot
            && latest.is_some()
        {
            return Err(self.serialization_failure("row updated since snapshot"));
        }
        if self.profile() == EngineProfile::PostgresLike && self.iso == IsolationLevel::Serializable
        {
            self.read_rows.insert((tid, id));
        }
        Ok(latest)
    }

    fn serialization_failure(&self, reason: &str) -> DbError {
        self.db
            .inner
            .serialization_failures
            .fetch_add(1, Ordering::Relaxed);
        DbError::SerializationFailure {
            txn: self.id,
            reason: reason.to_string(),
        }
    }

    /// `INSERT INTO table (…) VALUES (…)`. Auto-assigns the primary key
    /// when omitted or NULL; returns the key.
    ///
    /// MySQL-like profile: the insert waits on other transactions' gap
    /// locks covering any of the new row's indexed keys (insert-intention
    /// semantics, the blocking side of §3.3.2's false conflicts).
    pub fn insert(&mut self, table: &str, pairs: &[(&str, Value)]) -> Result<i64> {
        self.ensure_active()?;
        self.statement()?;
        let t = self.resolve(table)?;
        let tid = t.id;
        let pk_name = t.schema.columns[t.schema.primary_key].name.clone();

        // Assign the primary key.
        let explicit_pk = pairs
            .iter()
            .find(|(n, _)| *n == pk_name)
            .map(|(_, v)| v.clone())
            .filter(|v| !v.is_null());
        let id = match explicit_pk {
            Some(Value::Int(v)) => v,
            Some(other) => {
                return Err(DbError::TypeMismatch {
                    table: table.to_string(),
                    column: pk_name,
                    expected: crate::value::ColumnType::Int,
                    found: other.column_type(),
                })
            }
            None => t.alloc_id(),
        };
        let mut full_pairs: Vec<(&str, Value)> = pairs
            .iter()
            .filter(|(n, _)| *n != pk_name)
            .map(|(n, v)| (*n, v.clone()))
            .collect();
        full_pairs.push((pk_name.as_str(), Value::Int(id)));
        let row = row_from_pairs(&t.schema, &full_pairs)?;

        // Gap-lock (insert intention) checks, MySQL-like only.
        let indexed = t.indexed_columns();
        if self.profile() == EngineProfile::MySqlLike {
            self.db.locks().check_insert_within(
                self.id,
                tid,
                t.schema.primary_key,
                &Value::Int(id),
                self.wait_cap(),
            )?;
            for col in &indexed {
                self.db.locks().check_insert_within(
                    self.id,
                    tid,
                    *col,
                    row.at(*col),
                    self.wait_cap(),
                )?;
            }
        }

        // Lock the record and any unique keys, then check uniqueness.
        self.db.locks().lock_record_within(
            self.id,
            tid,
            id,
            LockMode::Exclusive,
            self.wait_cap(),
        )?;
        for col in indexed.iter().filter(|c| t.index_on(**c) == Some(true)) {
            let key = row.at(*col).clone();
            if !key.is_null() {
                self.db
                    .locks()
                    .lock_unique_key_within(self.id, tid, *col, key, self.wait_cap())?;
            }
        }
        t.check_unique(&row, None)?;
        if self.latest(tid, id).is_some() {
            return Err(DbError::UniqueViolation {
                table: table.to_string(),
                column: pk_name,
                value: id.to_string(),
            });
        }
        if matches!(self.pending_row(tid, id), Some(Some(_))) {
            return Err(DbError::UniqueViolation {
                table: table.to_string(),
                column: pk_name,
                value: id.to_string(),
            });
        }

        self.pending.push(Pending {
            table: tid,
            id,
            row: Some(row),
        });
        self.observe_write(table, id);
        Ok(id)
    }

    /// `UPDATE table SET … WHERE pk = id`.
    ///
    /// The update is applied to the latest committed version (plus this
    /// transaction's own writes) — *not* the snapshot. An application that
    /// computed its assignment from a stale snapshot read therefore loses
    /// updates, exactly the §3.1.1 footnote's MySQL Repeatable Read
    /// behaviour. PostgreSQL-like Repeatable Read and above instead abort
    /// with a serialization failure when the row changed since the
    /// snapshot (first-committer/updater-wins).
    pub fn update(&mut self, table: &str, id: i64, pairs: &[(&str, Value)]) -> Result<()> {
        self.ensure_active()?;
        self.statement()?;
        let t = self.resolve(table)?;
        let tid = t.id;
        self.db.locks().lock_record_within(
            self.id,
            tid,
            id,
            LockMode::Exclusive,
            self.wait_cap(),
        )?;

        let base: Row = match self.pending_row(tid, id) {
            Some(Some(row)) => row.clone(),
            Some(None) => {
                return Err(DbError::NoSuchRow {
                    table: table.to_string(),
                    id,
                })
            }
            None => {
                let Some((latest, latest_ts)) = self.latest_with_ts(tid, id) else {
                    return Err(DbError::NoSuchRow {
                        table: table.to_string(),
                        id,
                    });
                };
                let Some(latest) = latest else {
                    return Err(DbError::NoSuchRow {
                        table: table.to_string(),
                        id,
                    });
                };
                if self.profile() == EngineProfile::PostgresLike
                    && self.iso >= IsolationLevel::RepeatableRead
                    && latest_ts > self.snapshot
                {
                    return Err(self.serialization_failure("concurrent update"));
                }
                latest
            }
        };

        // Only tables with a unique secondary index need the pre-image for
        // the changed-key check; everywhere else the base row can be
        // mutated in place without another copy.
        let base_for_unique = if t.schema.indexes.iter().any(|(_, unique)| *unique) {
            Some(base.clone())
        } else {
            None
        };
        let mut new_row = base;
        for (col, value) in pairs {
            new_row.values[t.schema.column_index(col)?] = value.clone();
        }
        t.schema.validate_row(&new_row)?;
        if let Some(base) = &base_for_unique {
            self.lock_and_check_unique_changes(&t, id, base, &new_row)?;
        }

        self.pending.push(Pending {
            table: tid,
            id,
            row: Some(new_row),
        });
        self.observe_write(table, id);
        Ok(())
    }

    /// `UPDATE table SET col = col + delta WHERE pk = id`, executed as a
    /// *commutative delta*: no record lock, no read footprint, no
    /// first-updater check. The increment is merged against whatever row
    /// version is latest at install time, under the row's shard guard —
    /// so two concurrent bumps of the same row both commit (neither
    /// aborts, neither is lost), which is the coordination-free execution
    /// invariant-confluent operations admit.
    ///
    /// Restrictions keep the operation genuinely confluent: the column
    /// must be a non-primary-key integer, and the row must exist at
    /// commit time (a missing row aborts the commit with
    /// [`DbError::NoSuchRow`]). Mixing `add_delta` with a plain
    /// read-modify-write of the *same column* in concurrent transactions
    /// forfeits the guarantee — the RMW overwrites, it does not merge.
    pub fn add_delta(&mut self, table: &str, id: i64, column: &str, delta: i64) -> Result<()> {
        self.ensure_active()?;
        self.statement()?;
        let t = self.resolve(table)?;
        let col = t.schema.column_index(column)?;
        assert_ne!(
            col, t.schema.primary_key,
            "add_delta on the primary key would rekey the row, not merge it"
        );
        if t.schema.columns[col].ty != ColumnType::Int {
            return Err(DbError::TypeMismatch {
                table: table.to_string(),
                column: column.to_string(),
                expected: ColumnType::Int,
                found: Some(t.schema.columns[col].ty),
            });
        }
        self.deltas.push(PendingDelta {
            table: t.id,
            id,
            column: col,
            delta,
        });
        self.observe_write(table, id);
        Ok(())
    }

    /// Lock and re-check unique keys whose value this write actually
    /// changes. Unchanged keys need no lock: the row's record lock already
    /// serializes writers, and taking the key lock anyway would needlessly
    /// serialize unrelated updates of rows sharing the value.
    fn lock_and_check_unique_changes(
        &mut self,
        t: &Table,
        id: i64,
        base: &Row,
        new_row: &Row,
    ) -> Result<()> {
        for col in t
            .indexed_columns()
            .into_iter()
            .filter(|c| t.index_on(*c) == Some(true))
        {
            let key = new_row.at(col).clone();
            if key.is_null() || base.at(col) == &key {
                continue;
            }
            self.db
                .locks()
                .lock_unique_key_within(self.id, t.id, col, key, self.wait_cap())?;
            t.check_unique(new_row, Some(id))?;
        }
        Ok(())
    }

    /// `UPDATE table SET … WHERE pred`, returning the number of affected
    /// rows. The predicate is re-evaluated against the latest committed
    /// version after the row lock is acquired (PostgreSQL's EvalPlanQual
    /// behaviour under Read Committed) — this is what makes the
    /// `UPDATE … WHERE id = ? AND ver = ?` validate-and-commit idiom of
    /// Figure 1c atomic: a concurrent bump of `ver` yields 0 affected rows.
    pub fn update_where(
        &mut self,
        table: &str,
        pred: &Predicate,
        pairs: &[(&str, Value)],
    ) -> Result<usize> {
        self.ensure_active()?;
        self.statement()?;
        let t = self.resolve(table)?;
        let tid = t.id;
        let plan = self.plan(&t, pred)?;
        for id in &plan.ids {
            self.db.locks().lock_record_within(
                self.id,
                tid,
                *id,
                LockMode::Exclusive,
                self.wait_cap(),
            )?;
        }
        if self.profile() == EngineProfile::MySqlLike && self.iso >= IsolationLevel::RepeatableRead
        {
            self.db
                .locks()
                .lock_gap(self.id, tid, plan.gap_column, plan.gap.clone());
        }

        // Collect matches against latest committed + own overlay.
        let mut targets: Vec<(i64, Row)> = Vec::new();
        for id in &plan.ids {
            let base = match self.pending_row(tid, *id) {
                Some(Some(row)) => Some(row.clone()),
                Some(None) => None,
                None => match self.latest_with_ts(tid, *id) {
                    Some((latest, latest_ts)) => {
                        if let Some(ref row) = latest {
                            if pred.matches(&t.schema, row)?
                                && self.profile() == EngineProfile::PostgresLike
                                && self.iso >= IsolationLevel::RepeatableRead
                                && latest_ts > self.snapshot
                            {
                                return Err(self.serialization_failure("concurrent update"));
                            }
                        }
                        latest
                    }
                    None => None,
                },
            };
            if let Some(row) = base {
                if pred.matches(&t.schema, &row)? {
                    targets.push((*id, row));
                }
            }
        }
        // Own pending inserts that match.
        let mut extra: Vec<(i64, Row)> = Vec::new();
        for p in &self.pending {
            if p.table == tid && !plan.ids.contains(&p.id) {
                if let Some(row) = &p.row {
                    if pred.matches(&t.schema, row)? {
                        extra.push((p.id, row.clone()));
                    }
                }
            }
        }
        targets.extend(extra);

        let count = targets.len();
        for (id, base) in targets {
            let mut new_row = base.clone();
            for (col, value) in pairs {
                new_row = new_row.with(&t.schema, col, value.clone())?;
            }
            t.schema.validate_row(&new_row)?;
            self.lock_and_check_unique_changes(&t, id, &base, &new_row)?;
            self.pending.push(Pending {
                table: tid,
                id,
                row: Some(new_row),
            });
            self.observe_write(table, id);
        }
        Ok(count)
    }

    /// `DELETE FROM table WHERE pk = id`. Returns whether a row existed.
    pub fn delete(&mut self, table: &str, id: i64) -> Result<bool> {
        self.ensure_active()?;
        self.statement()?;
        let t = self.resolve(table)?;
        let tid = t.id;
        self.db.locks().lock_record_within(
            self.id,
            tid,
            id,
            LockMode::Exclusive,
            self.wait_cap(),
        )?;
        let existed = match self.pending_row(tid, id) {
            Some(Some(_)) => true,
            Some(None) => false,
            None => match self.latest_with_ts(tid, id) {
                Some((latest, latest_ts)) => {
                    let live = latest.is_some();
                    if live
                        && self.profile() == EngineProfile::PostgresLike
                        && self.iso >= IsolationLevel::RepeatableRead
                        && latest_ts > self.snapshot
                    {
                        return Err(self.serialization_failure("concurrent update"));
                    }
                    live
                }
                None => false,
            },
        };
        if existed {
            self.pending.push(Pending {
                table: tid,
                id,
                row: None,
            });
            self.observe_write(table, id);
        }
        Ok(existed)
    }

    /// Explicit table lock (the coordination hint of §6 / Table 7a).
    pub fn lock_table(&mut self, table: &str, mode: LockMode) -> Result<()> {
        self.ensure_active()?;
        self.statement()?;
        let t = self.resolve(table)?;
        self.db
            .locks()
            .lock_table_within(self.id, t.id, mode, self.wait_cap())
    }

    /// Transaction-scoped advisory lock (released at commit/abort), like
    /// PostgreSQL's `pg_advisory_xact_lock`.
    pub fn advisory_lock(&mut self, key: i64) -> Result<()> {
        self.ensure_active()?;
        self.statement()?;
        self.db
            .locks()
            .lock_advisory_within(self.id, key, self.wait_cap())
    }

    /// `SAVEPOINT name`.
    pub fn savepoint(&mut self, name: &str) {
        self.savepoints
            .push((name.to_string(), self.pending.len(), self.deltas.len()));
    }

    /// `ROLLBACK TO SAVEPOINT name`: discards writes made after the
    /// savepoint. Locks acquired since are retained, as in real engines.
    pub fn rollback_to(&mut self, name: &str) -> Result<()> {
        let Some(pos) = self.savepoints.iter().rposition(|(n, _, _)| n == name) else {
            return Err(DbError::NoSuchSavepoint {
                name: name.to_string(),
            });
        };
        let (_, mark, delta_mark) = &self.savepoints[pos];
        let (mark, delta_mark) = (*mark, *delta_mark);
        self.pending.truncate(mark);
        self.deltas.truncate(delta_mark);
        self.savepoints.truncate(pos + 1);
        Ok(())
    }

    /// Commit. Consumes the transaction; on a serialization failure the
    /// transaction is rolled back and the error returned.
    pub fn commit(mut self) -> Result<()> {
        self.commit_inner()
    }

    fn commit_inner(&mut self) -> Result<()> {
        // The window between a transaction's last statement and its commit
        // is where §3.3/§3.4 races live; make it a preemption point.
        adhoc_sim::sched::yield_point(adhoc_sim::sched::SchedPoint::DbCommit);
        self.ensure_active()?;
        match self.db.arm_commit_fault() {
            // The commit request never takes effect: the engine rolls the
            // transaction back and the client sees a dropped connection.
            Some(adhoc_sim::FaultKind::CommitFailed) => {
                self.finish(false);
                self.db.breaker_note_failure();
                return Err(DbError::ConnectionLost { txn: self.id });
            }
            // The commit goes through and becomes durable, but the
            // acknowledgement is lost: same client-visible error, opposite
            // server-side truth — the §3.4.2 ambiguity.
            Some(adhoc_sim::FaultKind::CrashAfterDurable) => {
                return self.crash_commit(WalOutcome::Forced);
            }
            // The process dies after the record enters the page cache but
            // before the fsync: the in-memory commit happened, the durable
            // record did not — recovery rolls the transaction back.
            Some(adhoc_sim::FaultKind::CrashBeforeDurable) => {
                return self.crash_commit(WalOutcome::NoSync);
            }
            // The process dies mid-flush: a torn (partial) frame reaches
            // the durable medium for recovery to detect and truncate.
            Some(adhoc_sim::FaultKind::TornWrite) => {
                return self.crash_commit(WalOutcome::Torn);
            }
            _ => {}
        }
        let result = self.try_commit(WalOutcome::Policy);
        match &result {
            Ok(()) => self.finish(true),
            Err(_) => self.finish(false),
        }
        result
    }

    /// The shared shape of every commit-adjacent crash fault: the commit
    /// applies server-side (its WAL record meeting the fate `outcome`
    /// describes), the process dies, and the client sees a dropped
    /// connection instead of an acknowledgement.
    fn crash_commit(&mut self, outcome: WalOutcome) -> Result<()> {
        match self.try_commit(outcome) {
            Ok(()) => {
                self.finish(true);
                self.db.breaker_note_failure();
                Err(DbError::ConnectionLost { txn: self.id })
            }
            Err(e) => {
                self.finish(false);
                Err(e)
            }
        }
    }

    /// Certify a PostgreSQL-like Serializable transaction against the
    /// locked shards' commit logs: abort when any transaction that
    /// committed after our snapshot wrote a row we read or touched an
    /// indexed key inside a range we scanned (rw-antidependency; backward
    /// validation). Each log is timestamp-ordered, so the walk stops at the
    /// snapshot; an entry shared by several locked shards is simply checked
    /// more than once, harmlessly.
    fn certify_locked(
        &self,
        guards: &[(usize, MutexGuard<'_, Shard>)],
        reads: &HashSet<(usize, i64)>,
    ) -> Result<()> {
        for (_, shard) in guards {
            for committed in shard.log.iter().rev() {
                if committed.commit_ts <= self.snapshot {
                    break;
                }
                if committed.rows.iter().any(|r| reads.contains(r)) {
                    return Err(DbError::SerializationFailure {
                        txn: self.id,
                        reason: "rw-antidependency on a read row".into(),
                    });
                }
                for (table, column, key) in &committed.keys {
                    if self
                        .read_ranges
                        .iter()
                        .any(|(t, c, iv)| t == table && c == column && iv.contains(key))
                    {
                        return Err(DbError::SerializationFailure {
                            txn: self.id,
                            reason: "rw-antidependency on a scanned range".into(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// The sharded commit protocol: lock the footprint's shards ascending,
    /// validate, install, release, then retire the commit timestamp into
    /// the snapshot watermark.
    fn try_commit(&mut self, wal_outcome: WalOutcome) -> Result<()> {
        let pg_ser = self.profile() == EngineProfile::PostgresLike
            && self.iso == IsolationLevel::Serializable;
        let writes: ShardSet = self
            .pending
            .iter()
            .map(|p| (p.table, p.id))
            .chain(self.deltas.iter().map(|d| (d.table, d.id)))
            .map(|(t, id)| shard_of(t, id))
            .collect();
        let mut lock_set = writes;
        let mut cert_reads: HashSet<(usize, i64)> = HashSet::new();
        if pg_ser {
            // Rows this transaction itself wrote are excluded from read
            // certification: any conflicting commit on them necessarily
            // happened before our update statement, which already failed
            // with a first-updater serialization error — re-checking here
            // would only produce false aborts.
            let written: HashSet<(usize, i64)> =
                self.pending.iter().map(|p| (p.table, p.id)).collect();
            cert_reads = self
                .read_rows
                .iter()
                .filter(|r| !written.contains(r))
                .copied()
                .collect();
            if self.read_ranges.is_empty() {
                // Read-shard locks are held through certification so a
                // racing writer of a read row either installs before our
                // walk (and is seen) or serializes after our whole commit.
                for (t, id) in &cert_reads {
                    lock_set.insert(shard_of(*t, *id));
                }
            } else {
                // A scanned range can conflict with an insert anywhere.
                lock_set = ShardSet::all();
            }
        }
        if lock_set.is_empty() {
            // Nothing to validate or install; just check the server still
            // knows us (it forgets everyone on a simulated crash).
            if !self.db.is_active(self.id) {
                return Err(DbError::TxnNotActive { txn: self.id });
            }
            return Ok(());
        }

        let mut guards = self.db.lock_shards(lock_set);
        if !self.db.is_active(self.id) {
            // The server forgot us (simulated crash): connection lost.
            return Err(DbError::TxnNotActive { txn: self.id });
        }
        if pg_ser {
            if let Err(e) = self.certify_locked(&guards, &cert_reads) {
                self.db
                    .inner
                    .serialization_failures
                    .fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        }
        // Materialize commutative deltas into full-row images *now*,
        // under the shard guards, against the version that is latest at
        // this instant. Deltas passed no certification and took no record
        // lock, yet no concurrent increment can be lost: all writers of
        // the row serialize on its shard mutex, so each commit merges on
        // top of the other's installed version. This happens before the
        // WAL is streamed so the log carries ordinary post-images and
        // recovery stays oblivious to deltas.
        if !self.deltas.is_empty() {
            for d in std::mem::take(&mut self.deltas) {
                // A delta on a row this transaction already wrote folds
                // into its own buffered image.
                if let Some(p) = self
                    .pending
                    .iter_mut()
                    .rev()
                    .find(|p| p.table == d.table && p.id == d.id)
                {
                    match &mut p.row {
                        Some(row) => {
                            let v = row.values[d.column].as_int();
                            row.values[d.column] = Value::Int(v + d.delta);
                            continue;
                        }
                        // Own deletion followed by a delta: the row is gone.
                        None => {
                            let t = self.db.table_by_id(d.table);
                            return Err(DbError::NoSuchRow {
                                table: t.schema.table.clone(),
                                id: d.id,
                            });
                        }
                    }
                }
                let gpos = guards
                    .binary_search_by_key(&shard_of(d.table, d.id), |(idx, _)| *idx)
                    .expect("delta shard is locked");
                let base = guards[gpos]
                    .1
                    .rows
                    .get(&(d.table, d.id))
                    .and_then(|c| c.latest())
                    .cloned();
                let Some(mut row) = base else {
                    let t = self.db.table_by_id(d.table);
                    return Err(DbError::NoSuchRow {
                        table: t.schema.table.clone(),
                        id: d.id,
                    });
                };
                let v = row.values[d.column].as_int();
                row.values[d.column] = Value::Int(v + d.delta);
                self.pending.push(Pending {
                    table: d.table,
                    id: d.id,
                    row: Some(row),
                });
            }
        }
        if self.pending.is_empty() {
            return Ok(());
        }

        // Drawing the timestamp *under* the write-shard locks keeps every
        // shard log timestamp-ordered (all writers of a shard serialize on
        // its mutex).
        let commit_ts = self.db.draw_commit_ts();
        // Until the first PG-Serializable transaction begins, nothing ever
        // reads the commit logs — skip building and appending the entry.
        let log_enabled = self.db.ssi_logging();
        let mut rows = if log_enabled {
            Vec::with_capacity(self.pending.len())
        } else {
            Vec::new()
        };
        let mut keys = Vec::new();
        // Stream the write-ahead record into the log *before* the rows are
        // moved into their chains, while the shard guards are already
        // held: writers of a row serialize on its shard mutex, so each
        // row's log order matches its version-chain order exactly, and the
        // streamed encoder needs no intermediate record, cloned table
        // name, or copied row. Under `GroupCommit` the frame's durability
        // is settled after the guards drop (see below).
        let wal = self.db.wal();
        let mut group_lsn = None;
        if let Some(wal) = wal {
            let mut wal_table: Option<Arc<Table>> = None;
            let db = &self.db;
            let pending = &self.pending;
            let encode = move |enc: &mut WalEncoder<'_>| {
                for p in pending {
                    let t = match &wal_table {
                        Some(t) if t.id == p.table => t,
                        _ => wal_table.insert(db.table_by_id(p.table)),
                    };
                    enc.write(
                        &t.schema.table,
                        p.id,
                        p.row.as_ref().map(|r| r.values.as_slice()),
                    );
                }
            };
            match wal_outcome {
                WalOutcome::Policy => {
                    let append = wal.append_streamed(commit_ts, encode);
                    if !append.durable && wal.policy() == crate::wal::WalSyncPolicy::GroupCommit {
                        group_lsn = Some(append.end);
                    }
                }
                WalOutcome::Forced => {
                    wal.append_streamed_no_sync(commit_ts, encode);
                    wal.sync();
                }
                WalOutcome::NoSync => {
                    wal.append_streamed_no_sync(commit_ts, encode);
                }
                WalOutcome::Torn => {
                    wal.append_streamed_no_sync(commit_ts, encode);
                    wal.sync_torn();
                }
            }
        }
        // Commits overwhelmingly touch one table; cache the last resolved
        // handle instead of building a map.
        let mut last_table: Option<Arc<Table>> = None;
        for p in std::mem::take(&mut self.pending) {
            let t = match &last_table {
                Some(t) if t.id == p.table => t,
                _ => last_table.insert(self.db.table_by_id(p.table)),
            };
            let gpos = guards
                .binary_search_by_key(&shard_of(p.table, p.id), |(idx, _)| *idx)
                .expect("write shard is locked");
            let chain = guards[gpos].1.rows.entry((p.table, p.id)).or_default();
            let old = chain.latest();
            // Log index keys only where membership changes (inserts,
            // deletes, key-changing updates). A key-preserving update
            // does not move the row in or out of any scanned interval;
            // its content change is covered by row-level certification.
            let pk = t.schema.primary_key;
            let indexed = t.schema.indexes.iter().map(|(col, _)| *col).chain([pk]);
            let mut index_keys_changed = false;
            match (old, &p.row) {
                (None, Some(new)) => {
                    index_keys_changed = true;
                    if log_enabled {
                        for col in indexed {
                            keys.push((p.table, col, new.at(col).clone()));
                        }
                    }
                }
                (Some(old), None) => {
                    index_keys_changed = true;
                    if log_enabled {
                        for col in indexed {
                            keys.push((p.table, col, old.at(col).clone()));
                        }
                    }
                }
                (Some(old), Some(new)) => {
                    for col in indexed {
                        if old.at(col) != new.at(col) {
                            index_keys_changed = true;
                            if log_enabled {
                                keys.push((p.table, col, old.at(col).clone()));
                                keys.push((p.table, col, new.at(col).clone()));
                            }
                        }
                    }
                }
                (None, None) => {}
            }
            if log_enabled {
                rows.push((p.table, p.id));
            }
            // An in-place update that moves no indexed key (the common
            // case) leaves pk membership and every index entry untouched —
            // skip the table's index lock entirely.
            if index_keys_changed {
                t.apply_index(p.id, old, p.row.as_ref());
            }
            chain.push(RowVersion {
                commit_ts,
                data: p.row,
            });
        }
        if log_enabled {
            self.db.log_commit(
                Arc::new(CommittedTxn {
                    commit_ts,
                    rows,
                    keys,
                }),
                writes,
                &mut guards,
            );
        }
        drop(guards);
        // Group-commit durability point, *after* the shard guards drop so
        // concurrent committers batch behind one leader fsync: free-ride
        // if a leader already flushed past our frame, else lead. Runs
        // before the completion/ack below, preserving acked ⇒ durable.
        if let (Some(wal), Some(lsn)) = (wal, group_lsn) {
            wal.ensure_durable(lsn);
        }
        // Make the commit visible to snapshots (in timestamp order) before
        // acknowledging it to the client.
        self.db.complete_commit(commit_ts);
        self.db.charge_flush();
        Ok(())
    }

    /// Roll back explicitly.
    pub fn abort(mut self) {
        self.finish(false);
    }

    fn finish(&mut self, committed: bool) {
        if !self.active {
            return;
        }
        self.active = false;
        self.pending.clear();
        self.deltas.clear();
        self.db.deregister(self.id);
        self.db.locks().release_all(self.id);
        if committed {
            self.db.inner.commits.fetch_add(1, Ordering::Relaxed);
            if self.db.observing() {
                self.db.observe(AccessEvent::Committed { txn: self.id });
            }
        } else {
            self.db.inner.aborts.fetch_add(1, Ordering::Relaxed);
            if self.db.observing() {
                self.db.observe(AccessEvent::Aborted { txn: self.id });
            }
        }
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        self.finish(false);
    }
}

impl std::fmt::Debug for Transaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("id", &self.id)
            .field("iso", &self.iso)
            .field("snapshot", &self.snapshot)
            .field("pending", &self.pending.len())
            .field("deltas", &self.deltas.len())
            .field("active", &self.active)
            .finish()
    }
}
