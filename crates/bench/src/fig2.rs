//! Figure 2: latencies of the seven lock implementations.
//!
//! A single client repeatedly invokes `lock()` and `unlock()` in a loop
//! (the paper's microbenchmark). Network round trips and durable flushes
//! are charged onto a virtual clock, so the measured latency is
//! `simulated physical cost + real compute cost`, and the run finishes in
//! milliseconds regardless of the model.

use adhoc_core::locks::{
    AdHocLock, DbTableLock, KvMultiLock, KvSetNxLock, MemLock, MemLruLock, SfuLock, SyncLock,
};
use adhoc_core::taxonomy::LockImpl;
use adhoc_kv::{Client, Store};
use adhoc_sim::{Clock, LatencyModel, VirtualClock};
use adhoc_storage::{Database, DbConfig, EngineProfile};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One Figure 2 bar pair.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// The measured lock implementation.
    pub implementation: LockImpl,
    /// Mean `lock()` latency.
    pub lock: Duration,
    /// Mean `unlock()` latency.
    pub unlock: Duration,
}

/// Build one lock implementation over fresh substrates sharing `clock`.
fn build(which: LockImpl, clock: &Arc<VirtualClock>, latency: LatencyModel) -> Box<dyn AdHocLock> {
    match which {
        LockImpl::Sync => Box::new(SyncLock::new()),
        LockImpl::Mem => Box::new(MemLock::new()),
        LockImpl::MemLru => Box::new(MemLruLock::new(1024)),
        LockImpl::KvSetNx => {
            let client = Client::new(Store::new(), clock.clone(), latency);
            Box::new(KvSetNxLock::new(client))
        }
        LockImpl::KvMulti => {
            let client = Client::new(Store::new(), clock.clone(), latency);
            Box::new(KvMultiLock::new(client))
        }
        LockImpl::Sfu => {
            let db = Database::new(DbConfig::networked(
                EngineProfile::PostgresLike,
                clock.clone(),
                latency,
            ));
            Box::new(SfuLock::new(db))
        }
        LockImpl::DbTable => {
            let db = Database::new(DbConfig::networked(
                EngineProfile::PostgresLike,
                clock.clone(),
                latency,
            ));
            Box::new(DbTableLock::new(db))
        }
    }
}

/// Run the Figure 2 microbenchmark: `iterations` lock/unlock cycles per
/// implementation, reporting mean latencies per operation.
pub fn lock_latencies(latency: LatencyModel, iterations: u32) -> Vec<Fig2Row> {
    assert!(iterations > 0);
    LockImpl::all()
        .into_iter()
        .map(|which| {
            let clock = Arc::new(VirtualClock::new());
            let lock = build(which, &clock, latency);
            // Warm up: first acquisition may create backing rows.
            lock.lock("bench")
                .expect("warmup lock")
                .unlock()
                .expect("warmup unlock");

            let mut lock_total = Duration::ZERO;
            let mut unlock_total = Duration::ZERO;
            for _ in 0..iterations {
                let v0 = clock.now();
                let r0 = Instant::now();
                let guard = lock.lock("bench").expect("lock");
                lock_total += (clock.now() - v0) + r0.elapsed();

                let v1 = clock.now();
                let r1 = Instant::now();
                guard.unlock().expect("unlock");
                unlock_total += (clock.now() - v1) + r1.elapsed();
            }
            Fig2Row {
                implementation: which,
                lock: lock_total / iterations,
                unlock: unlock_total / iterations,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 2 shape: in-memory locks ≪ KV locks ≤ SFU ≪ DB, and
    /// KV-MULTI pays more round trips than KV-SETNX.
    #[test]
    fn figure2_ordering_holds() {
        let _serial = crate::SERIAL_MEASUREMENTS.lock();
        let rows = lock_latencies(LatencyModel::paper(), 50);
        let get = |which: LockImpl| {
            let r = rows
                .iter()
                .find(|r| r.implementation == which)
                .expect("present");
            r.lock + r.unlock
        };
        let sync = get(LockImpl::Sync);
        let mem = get(LockImpl::Mem);
        let mem_lru = get(LockImpl::MemLru);
        let kv_setnx = get(LockImpl::KvSetNx);
        let kv_multi = get(LockImpl::KvMulti);
        let sfu = get(LockImpl::Sfu);
        let db = get(LockImpl::DbTable);

        let ms = Duration::from_millis(1);
        // In-memory locks are sub-RTT.
        for (label, v) in [("SYNC", sync), ("MEM", mem), ("MEM-LRU", mem_lru)] {
            assert!(v < Duration::from_micros(100), "{label} took {v:?}");
        }
        // KV and SFU are round-trip bound: hundreds of µs to a few ms.
        assert!(kv_setnx > Duration::from_micros(200), "{kv_setnx:?}");
        assert!(
            kv_setnx < kv_multi,
            "SETNX ({kv_setnx:?}) < MULTI ({kv_multi:?})"
        );
        assert!(kv_multi >= 2 * kv_setnx, "MULTI pays several extra RTTs");
        assert!(sfu < 5 * ms);
        // The DB lock's durable flushes put it an order of magnitude above.
        assert!(db > 5 * kv_multi, "DB ({db:?}) must dominate (flushes)");
        assert!(db >= Duration::from_millis(10));
    }

    #[test]
    fn zero_latency_model_measures_compute_only() {
        let rows = lock_latencies(LatencyModel::zero(), 20);
        for r in rows {
            assert!(
                r.lock + r.unlock < Duration::from_millis(5),
                "{:?} too slow for a zero model",
                r.implementation
            );
        }
    }
}
