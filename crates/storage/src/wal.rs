//! Write-ahead log: a simulated durable medium for the in-memory engine.
//!
//! Every committed transaction appends one CRC-framed record holding its
//! footprint-ordered write set (the exact rows `try_commit` installed,
//! in install order). The log models a real disk with two regions:
//!
//! * the **durable prefix** (`..durable_len`) — bytes that survived an
//!   `fsync`; this is all a restarted process gets back, and
//! * the **volatile tail** (`durable_len..`) — bytes sitting in the OS
//!   page cache, gone the instant the process dies.
//!
//! The fsync boundary is driven by the engine's deterministic clock
//! through [`WalSyncPolicy`]: `OnCommit` syncs inside every commit (the
//! safe default the crash oracle assumes), `Interval` batches commits into
//! group flushes and only syncs when the clock crosses the next deadline —
//! acknowledged-but-undurable commits are exactly the window that policy
//! opens, and the recovery tests measure it. `GroupCommit` keeps the
//! acked-⇒-durable contract *and* amortizes the fsync: appends never sync
//! inline, and each committer calls [`Wal::ensure_durable`] after
//! releasing its shard locks — either free-riding on a leader's fsync
//! that already covered its record, or becoming the leader and syncing
//! the whole accumulated tail in one flush.
//!
//! Commit records are framed **streamed**: [`Wal::append_streamed`] hands
//! the committer a [`WalEncoder`] that serializes the write set directly
//! into the log buffer (length and CRC backpatched), so the hot commit
//! path allocates no intermediate record, clones no table name, and
//! copies each row exactly once.
//!
//! A torn write ([`Wal::sync_torn`], driven by
//! [`FaultKind::TornWrite`](adhoc_sim::FaultKind)) advances the fsync
//! watermark into the *middle* of the tail record, modelling a crash
//! mid-flush; [`crate::recovery`] detects the partial frame (short or
//! CRC-mismatched) and truncates the tail, never replaying half a
//! transaction — the atomicity half of the §3.4 failure-handling story.

use crate::value::Value;
use adhoc_sim::SharedClock;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// When the log syncs its tail to the durable medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalSyncPolicy {
    /// Fsync inside every commit, before the client is acknowledged: an
    /// acked commit is always durable (PostgreSQL `synchronous_commit=on`).
    OnCommit,
    /// Time-window batching: the tail only syncs when the deterministic
    /// clock has advanced past the previous sync by at least this much.
    /// Commits acknowledged between boundaries are lost by a crash —
    /// deliberately unsafe, kept to measure what the boundary costs.
    Interval(Duration),
    /// Group commit: appends never sync inline. Each committer calls
    /// [`Wal::ensure_durable`] *after* dropping its shard locks and before
    /// acknowledging the client; one leader fsync covers every record
    /// appended since the last boundary, so concurrent commits share a
    /// flush while an acked commit is still always durable.
    GroupCommit,
}

/// One write inside a commit record: `row = None` is a deletion tombstone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalWrite {
    /// Table name (schemas are re-created by app setup before replay, so
    /// names — not positional ids — are the stable identity).
    pub table: String,
    /// Primary key.
    pub id: i64,
    /// Positional row values, `None` for a delete.
    pub row: Option<Vec<Value>>,
}

/// One committed transaction's write set, as framed in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The commit timestamp the engine assigned.
    pub commit_ts: u64,
    /// The write set, in install (footprint) order.
    pub writes: Vec<WalWrite>,
}

/// Counters describing the log (diagnostics / bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Records appended since creation.
    pub records: u64,
    /// Fsyncs performed (including torn ones).
    pub syncs: u64,
    /// Total bytes in the log, volatile tail included.
    pub len: usize,
    /// Bytes below the fsync watermark.
    pub durable_len: usize,
}

#[derive(Debug)]
struct WalInner {
    buf: Vec<u8>,
    durable_len: usize,
    records: u64,
    syncs: u64,
    last_sync_at: Duration,
    /// A flush is in flight on the (single) simulated device. Held only
    /// across a nonzero-latency flush, during which the buffer mutex is
    /// RELEASED — appends and new commits proceed while the device is
    /// busy, which is what lets one group-commit flush cover them.
    flushing: bool,
}

#[derive(Debug)]
struct WalShared {
    state: Mutex<WalInner>,
    /// Mirror of `durable_len`, readable without the mutex: the
    /// group-commit free-ride check ([`Wal::ensure_durable`]) must not
    /// serialize followers behind the leader's flush.
    durable: AtomicUsize,
    /// Signalled when an in-flight flush completes (`flushing` cleared).
    flushed: Condvar,
}

/// The shared log handle. Cheap to clone (`Arc` inside).
#[derive(Clone)]
pub struct Wal {
    shared: Arc<WalShared>,
    policy: WalSyncPolicy,
    clock: SharedClock,
    /// Simulated cost of one fsync, charged on the engine clock inside
    /// every sync. Zero (the default) charges nothing — the PR-4/PR-7
    /// behaviour. Nonzero models a real storage device, which is where
    /// group commit's one-flush-per-batch amortization shows its win.
    fsync_latency: Duration,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("policy", &self.policy)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Wal {
    /// An empty log with the given sync policy, on the engine's clock.
    pub fn new(policy: WalSyncPolicy, clock: SharedClock) -> Self {
        let start = clock.now();
        Self {
            shared: Arc::new(WalShared {
                state: Mutex::new(WalInner {
                    buf: Vec::new(),
                    durable_len: 0,
                    records: 0,
                    syncs: 0,
                    last_sync_at: start,
                    flushing: false,
                }),
                durable: AtomicUsize::new(0),
                flushed: Condvar::new(),
            }),
            policy,
            clock,
            fsync_latency: Duration::ZERO,
        }
    }

    /// Charge `latency` on the engine clock for every fsync. The sleep
    /// happens with the log mutex *released* (a busy device does not
    /// block writes into the OS buffer), so under `GroupCommit` one
    /// leader pays it while followers keep appending and then free-ride —
    /// exactly the amortization the policy exists for.
    pub fn with_fsync_latency(mut self, latency: Duration) -> Self {
        self.fsync_latency = latency;
        self
    }

    /// The configured per-fsync latency charge.
    pub fn fsync_latency(&self) -> Duration {
        self.fsync_latency
    }

    /// The configured sync policy.
    pub fn policy(&self) -> WalSyncPolicy {
        self.policy
    }

    /// Append one commit record to the volatile tail, then sync according
    /// to the policy. Returns whether the record is durable on return —
    /// under `OnCommit` always true, under `Interval` only when this
    /// append crossed the group-commit boundary, under `GroupCommit`
    /// never (the committer follows up with [`ensure_durable`]).
    ///
    /// [`ensure_durable`]: Self::ensure_durable
    pub fn append(&self, record: &WalRecord) -> bool {
        self.append_streamed(record.commit_ts, |enc| {
            for w in &record.writes {
                enc.write(&w.table, w.id, w.row.as_deref());
            }
        })
        .durable
    }

    /// Append one commit record *without* syncing, regardless of policy —
    /// the `CrashBeforeDurable` shape: the record made it into the page
    /// cache, the fsync never happened.
    pub fn append_no_sync(&self, record: &WalRecord) {
        self.append_streamed_no_sync(record.commit_ts, |enc| {
            for w in &record.writes {
                enc.write(&w.table, w.id, w.row.as_deref());
            }
        });
    }

    /// Append one commit record by streaming its writes straight into the
    /// log buffer — no intermediate payload allocation — then sync
    /// according to the policy. `f` receives a [`WalEncoder`] and must
    /// write the record's rows in install order. Returns whether the
    /// record is durable and the end offset (LSN) of the appended frame,
    /// for [`ensure_durable`](Self::ensure_durable).
    pub fn append_streamed(
        &self,
        commit_ts: u64,
        f: impl FnOnce(&mut WalEncoder<'_>),
    ) -> WalAppend {
        let mut inner = self.shared.state.lock();
        Self::encode_streamed(&mut inner, commit_ts, f);
        let end = inner.buf.len();
        let durable = match self.policy {
            WalSyncPolicy::OnCommit => {
                // The naive discipline: this commit issues (and pays for)
                // its own fsync, serialized on the device.
                self.flush_locked(inner, end, false);
                true
            }
            WalSyncPolicy::Interval(every) => {
                let now = self.clock.now();
                if now >= inner.last_sync_at + every {
                    self.flush_locked(inner, end, true);
                    true
                } else {
                    false
                }
            }
            WalSyncPolicy::GroupCommit => false,
        };
        WalAppend { durable, end }
    }

    /// Append one streamed record *without* syncing, regardless of policy
    /// (the crash-shaped commit paths). Returns the frame's end offset.
    pub fn append_streamed_no_sync(
        &self,
        commit_ts: u64,
        f: impl FnOnce(&mut WalEncoder<'_>),
    ) -> usize {
        let mut inner = self.shared.state.lock();
        Self::encode_streamed(&mut inner, commit_ts, f);
        inner.buf.len()
    }

    fn encode_streamed(inner: &mut WalInner, commit_ts: u64, f: impl FnOnce(&mut WalEncoder<'_>)) {
        let frame_at = inner.buf.len();
        // Reserve the frame header ([len][crc]) and write the payload in
        // place; both header fields are backpatched once the payload is
        // complete.
        inner.buf.extend_from_slice(&[0u8; 8]);
        let payload_at = inner.buf.len();
        put_u64(&mut inner.buf, commit_ts);
        put_u32(&mut inner.buf, 0); // write count, backpatched
        let mut enc = WalEncoder {
            buf: &mut inner.buf,
            count: 0,
        };
        f(&mut enc);
        let count = enc.count;
        let payload_len = inner.buf.len() - payload_at;
        inner.buf[payload_at + 8..payload_at + 12].copy_from_slice(&count.to_le_bytes());
        let crc = crc32(&inner.buf[payload_at..]);
        inner.buf[frame_at..frame_at + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
        inner.buf[frame_at + 4..frame_at + 8].copy_from_slice(&crc.to_le_bytes());
        inner.records += 1;
    }

    /// Group-commit durability point: return once every byte up to `lsn`
    /// is durable. The free-ride fast path is one atomic load — when a
    /// concurrent leader's fsync already covered our frame, we are done.
    /// Otherwise become the leader and sync the whole accumulated tail:
    /// one flush covers every commit that appended since the last
    /// boundary.
    pub fn ensure_durable(&self, lsn: usize) {
        if self.shared.durable.load(Ordering::Acquire) >= lsn {
            return;
        }
        let inner = self.shared.state.lock();
        self.flush_locked(inner, lsn, true);
    }

    /// Force the whole tail durable.
    pub fn sync(&self) {
        let inner = self.shared.state.lock();
        let target = inner.buf.len();
        self.flush_locked(inner, target, true);
    }

    /// Make every byte up to `target` durable. One flush is in flight at
    /// a time (the simulated device is serial); a nonzero device latency
    /// is slept with the buffer mutex RELEASED, so appends — and whole
    /// commits — land while the device is busy.
    ///
    /// `share` distinguishes the two §7 durability disciplines: a shared
    /// flush (group commit, interval, explicit `sync`) lets late arrivals
    /// free-ride on a flush that already covered their bytes, while an
    /// unshared one (the naive per-commit fsync) makes every caller pay
    /// the device in turn — the serialization tax group commit exists to
    /// amortize. Returns with `target` durable.
    fn flush_locked<'a>(&'a self, mut inner: MutexGuard<'a, WalInner>, target: usize, share: bool) {
        loop {
            if share && inner.durable_len >= target {
                return; // covered — free-ride on a completed flush
            }
            if !inner.flushing {
                break; // device idle: become the leader
            }
            // Device busy: wait out the in-flight flush, then re-check.
            self.shared.flushed.wait(&mut inner);
        }
        // A real fsync covers what reached the OS buffer when it started.
        let covered = inner.buf.len();
        if self.fsync_latency.is_zero() {
            inner.durable_len = covered;
        } else {
            inner.flushing = true;
            drop(inner);
            self.clock.sleep(self.fsync_latency);
            inner = self.shared.state.lock();
            inner.flushing = false;
            inner.durable_len = inner.durable_len.max(covered);
        }
        inner.syncs += 1;
        inner.last_sync_at = self.clock.now();
        self.shared
            .durable
            .store(inner.durable_len, Ordering::Release);
        self.shared.flushed.notify_all();
    }

    /// A torn flush: advance the fsync watermark into the *middle* of the
    /// volatile tail (deterministically: half its bytes, at least one byte
    /// short of complete). A subsequent crash leaves a partial frame on
    /// the durable medium for recovery to truncate. No-op on an empty
    /// tail.
    pub fn sync_torn(&self) {
        let mut inner = self.shared.state.lock();
        let tail = inner.buf.len() - inner.durable_len;
        if tail == 0 {
            return;
        }
        // Half the tail makes it down; at least one byte is always lost.
        let kept = if tail <= 1 { 0 } else { (tail / 2).max(1) };
        inner.durable_len += kept;
        inner.syncs += 1;
        let now = self.clock.now();
        inner.last_sync_at = now;
        self.shared
            .durable
            .store(inner.durable_len, Ordering::Release);
    }

    /// What a restarted process reads back: the durable prefix only. The
    /// volatile tail died with the page cache.
    pub fn durable_bytes(&self) -> Vec<u8> {
        let inner = self.shared.state.lock();
        inner.buf[..inner.durable_len].to_vec()
    }

    /// The full log image, volatile tail included (diagnostics only — a
    /// crashed process never sees this).
    pub fn all_bytes(&self) -> Vec<u8> {
        self.shared.state.lock().buf.clone()
    }

    /// Truncate the log to empty (both tail and durable prefix). Paired
    /// with [`Database::reset`](crate::Database::reset): a reset database
    /// must not replay its old history.
    pub fn clear(&self) {
        let mut inner = self.shared.state.lock();
        inner.buf.clear();
        inner.durable_len = 0;
        self.shared.durable.store(0, Ordering::Release);
    }

    /// Counters snapshot.
    pub fn stats(&self) -> WalStats {
        let inner = self.shared.state.lock();
        WalStats {
            records: inner.records,
            syncs: inner.syncs,
            len: inner.buf.len(),
            durable_len: inner.durable_len,
        }
    }
}

/// Result of [`Wal::append_streamed`]: whether the frame is already
/// durable, and its end offset for [`Wal::ensure_durable`].
#[derive(Debug, Clone, Copy)]
pub struct WalAppend {
    /// The appended frame is below the fsync watermark already.
    pub durable: bool,
    /// End offset (LSN) of the appended frame in the log.
    pub end: usize,
}

/// Streaming record serializer handed out by [`Wal::append_streamed`]:
/// writes row frames directly into the log buffer, in install order,
/// producing byte-for-byte the same encoding as [`encode_payload`].
pub struct WalEncoder<'a> {
    buf: &'a mut Vec<u8>,
    count: u32,
}

impl WalEncoder<'_> {
    /// Append one write: `row = None` is a deletion tombstone.
    pub fn write(&mut self, table: &str, id: i64, row: Option<&[Value]>) {
        put_str(self.buf, table);
        put_i64(self.buf, id);
        match row {
            None => self.buf.push(0),
            Some(values) => {
                self.buf.push(1);
                put_u16(self.buf, values.len() as u16);
                for v in values {
                    put_value(self.buf, v);
                }
            }
        }
        self.count += 1;
    }
}

// ---------------------------------------------------------------------------
// Record framing: [payload_len: u32 LE][crc32(payload): u32 LE][payload].
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    // CRC-32 (IEEE 802.3), reflected, polynomial 0xEDB88320.
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for b in bytes {
        c = CRC_TABLE[((c ^ *b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "identifier too long for WAL");
    put_u16(buf, s.len() as u16);
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Int(n) => {
            buf.push(1);
            put_i64(buf, *n);
        }
        Value::Str(s) => {
            buf.push(2);
            put_u32(buf, s.len() as u32);
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            buf.push(3);
            buf.push(*b as u8);
        }
    }
}

/// Serialize a record's payload (everything inside the frame).
pub fn encode_payload(record: &WalRecord) -> Vec<u8> {
    let mut p = Vec::with_capacity(32 + record.writes.len() * 32);
    put_u64(&mut p, record.commit_ts);
    put_u32(&mut p, record.writes.len() as u32);
    for w in &record.writes {
        put_str(&mut p, &w.table);
        put_i64(&mut p, w.id);
        match &w.row {
            None => p.push(0),
            Some(values) => {
                p.push(1);
                put_u16(&mut p, values.len() as u16);
                for v in values {
                    put_value(&mut p, v);
                }
            }
        }
    }
    p
}

/// Why decoding stopped before the end of the byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalTail {
    /// The stream ended exactly on a frame boundary.
    Clean,
    /// A frame header or body extended past the end of the stream — a torn
    /// write. `at` is the offset of the bad frame; everything from there
    /// is truncated.
    Torn {
        /// Offset of the first incomplete frame.
        at: usize,
    },
    /// A complete frame whose payload fails its CRC — bit rot or a torn
    /// write that happened to leave a full-length garbage frame. Truncated
    /// the same way.
    Corrupt {
        /// Offset of the bad frame.
        at: usize,
    },
}

/// A decoded log: every intact record plus how the stream ended.
#[derive(Debug, Clone)]
pub struct WalImage {
    /// Records with verified checksums, in append order.
    pub records: Vec<WalRecord>,
    /// How the byte stream terminated.
    pub tail: WalTail,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn i64(&mut self) -> Option<i64> {
        self.u64().map(|v| v as i64)
    }

    fn str(&mut self, len: usize) -> Option<String> {
        self.take(len)
            .and_then(|b| std::str::from_utf8(b).ok())
            .map(str::to_string)
    }
}

fn decode_value(c: &mut Cursor<'_>) -> Option<Value> {
    match c.take(1)?[0] {
        0 => Some(Value::Null),
        1 => c.i64().map(Value::Int),
        2 => {
            let len = c.u32()? as usize;
            c.str(len).map(Value::Str)
        }
        3 => c.take(1).and_then(|b| match b[0] {
            0 => Some(Value::Bool(false)),
            1 => Some(Value::Bool(true)),
            _ => None,
        }),
        _ => None,
    }
}

/// Decode one verified payload. `None` on any malformed structure (the
/// caller treats it like a CRC failure — belt and braces; a verified CRC
/// makes this unreachable for frames this module wrote).
pub fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let commit_ts = c.u64()?;
    let n_writes = c.u32()? as usize;
    let mut writes = Vec::with_capacity(n_writes.min(1024));
    for _ in 0..n_writes {
        let table_len = c.u16()? as usize;
        let table = c.str(table_len)?;
        let id = c.i64()?;
        let row = match c.take(1)?[0] {
            0 => None,
            1 => {
                let n_values = c.u16()? as usize;
                let mut values = Vec::with_capacity(n_values.min(1024));
                for _ in 0..n_values {
                    values.push(decode_value(&mut c)?);
                }
                Some(values)
            }
            _ => return None,
        };
        writes.push(WalWrite { table, id, row });
    }
    if c.pos != payload.len() {
        return None; // trailing garbage inside a framed payload
    }
    Some(WalRecord { commit_ts, writes })
}

/// Decode a byte stream as recovery would: accept every intact CRC-framed
/// record, stop (and truncate) at the first torn or corrupt frame.
pub fn decode_stream(bytes: &[u8]) -> WalImage {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos == bytes.len() {
            return WalImage {
                records,
                tail: WalTail::Clean,
            };
        }
        if bytes.len() - pos < 8 {
            return WalImage {
                records,
                tail: WalTail::Torn { at: pos },
            };
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let body_start = pos + 8;
        let Some(body_end) = body_start.checked_add(len) else {
            return WalImage {
                records,
                tail: WalTail::Corrupt { at: pos },
            };
        };
        if body_end > bytes.len() {
            return WalImage {
                records,
                tail: WalTail::Torn { at: pos },
            };
        }
        let payload = &bytes[body_start..body_end];
        if crc32(payload) != crc {
            return WalImage {
                records,
                tail: WalTail::Corrupt { at: pos },
            };
        }
        match decode_payload(payload) {
            Some(record) => records.push(record),
            None => {
                return WalImage {
                    records,
                    tail: WalTail::Corrupt { at: pos },
                };
            }
        }
        pos = body_end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_sim::VirtualClock;

    fn test_wal(policy: WalSyncPolicy) -> (Wal, Arc<VirtualClock>) {
        let clock = Arc::new(VirtualClock::new());
        (Wal::new(policy, clock.clone()), clock)
    }

    fn sample(ts: u64) -> WalRecord {
        WalRecord {
            commit_ts: ts,
            writes: vec![
                WalWrite {
                    table: "payments".into(),
                    id: 7,
                    row: Some(vec![
                        Value::Int(7),
                        Value::Str("processing".into()),
                        Value::Null,
                        Value::Bool(true),
                    ]),
                },
                WalWrite {
                    table: "orders".into(),
                    id: -3,
                    row: None,
                },
            ],
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_roundtrip_is_exact() {
        let r = sample(42);
        let payload = encode_payload(&r);
        assert_eq!(decode_payload(&payload).unwrap(), r);
    }

    #[test]
    fn stream_roundtrip_and_clean_tail() {
        let (wal, _) = test_wal(WalSyncPolicy::OnCommit);
        for ts in 1..=5u64 {
            assert!(wal.append(&sample(ts)));
        }
        let image = decode_stream(&wal.durable_bytes());
        assert_eq!(image.tail, WalTail::Clean);
        assert_eq!(image.records.len(), 5);
        assert_eq!(image.records[4].commit_ts, 5);
        assert_eq!(wal.stats().records, 5);
        assert_eq!(wal.stats().durable_len, wal.stats().len);
    }

    #[test]
    fn unsynced_tail_is_invisible_after_a_crash() {
        let (wal, _) = test_wal(WalSyncPolicy::OnCommit);
        wal.append(&sample(1));
        wal.append_no_sync(&sample(2));
        let image = decode_stream(&wal.durable_bytes());
        assert_eq!(image.records.len(), 1, "the unsynced record is lost");
        assert_eq!(image.tail, WalTail::Clean);
        wal.sync();
        assert_eq!(decode_stream(&wal.durable_bytes()).records.len(), 2);
    }

    #[test]
    fn torn_sync_leaves_a_truncatable_partial_frame() {
        let (wal, _) = test_wal(WalSyncPolicy::OnCommit);
        wal.append(&sample(1));
        wal.append_no_sync(&sample(2));
        wal.sync_torn();
        let bytes = wal.durable_bytes();
        let image = decode_stream(&bytes);
        assert_eq!(image.records.len(), 1, "only the intact record replays");
        assert!(
            matches!(image.tail, WalTail::Torn { .. } | WalTail::Corrupt { .. }),
            "{:?}",
            image.tail
        );
    }

    #[test]
    fn corrupt_frame_truncates_at_crc() {
        let (wal, _) = test_wal(WalSyncPolicy::OnCommit);
        wal.append(&sample(1));
        wal.append(&sample(2));
        let mut bytes = wal.durable_bytes();
        // Flip one bit inside the second record's payload.
        let n = bytes.len();
        bytes[n - 1] ^= 0x40;
        let image = decode_stream(&bytes);
        assert_eq!(image.records.len(), 1);
        assert!(matches!(image.tail, WalTail::Corrupt { .. }));
    }

    #[test]
    fn streamed_append_matches_reference_encoding() {
        let (streamed, _) = test_wal(WalSyncPolicy::OnCommit);
        let (reference, _) = test_wal(WalSyncPolicy::OnCommit);
        let r = sample(42);
        streamed.append_streamed(r.commit_ts, |enc| {
            for w in &r.writes {
                enc.write(&w.table, w.id, w.row.as_deref());
            }
        });
        let mut buf = Vec::new();
        let payload = encode_payload(&r);
        put_u32(&mut buf, payload.len() as u32);
        put_u32(&mut buf, crc32(&payload));
        buf.extend_from_slice(&payload);
        reference.sync();
        assert_eq!(streamed.all_bytes(), buf);
        assert_eq!(decode_stream(&streamed.durable_bytes()).records, vec![r]);
    }

    #[test]
    fn group_commit_leader_syncs_for_followers() {
        let (wal, _) = test_wal(WalSyncPolicy::GroupCommit);
        let a = wal.append_streamed(1, |enc| enc.write("t", 1, None));
        let b = wal.append_streamed(2, |enc| enc.write("t", 2, None));
        assert!(!a.durable && !b.durable, "group commit never syncs inline");
        assert_eq!(wal.stats().durable_len, 0);
        // The first committer to reach the durability point is the leader:
        // its one fsync covers both frames.
        wal.ensure_durable(a.end);
        assert_eq!(wal.stats().syncs, 1);
        assert_eq!(wal.stats().durable_len, b.end);
        // The second committer free-rides.
        wal.ensure_durable(b.end);
        assert_eq!(wal.stats().syncs, 1, "follower must not sync again");
        assert_eq!(decode_stream(&wal.durable_bytes()).records.len(), 2);
    }

    #[test]
    fn interval_policy_batches_syncs_on_the_clock() {
        let (wal, clock) = test_wal(WalSyncPolicy::Interval(Duration::from_millis(10)));
        assert!(!wal.append(&sample(1)), "before the boundary: not durable");
        assert_eq!(wal.stats().durable_len, 0);
        clock.advance(Duration::from_millis(10));
        assert!(wal.append(&sample(2)), "boundary crossed: group flush");
        let stats = wal.stats();
        assert_eq!(stats.durable_len, stats.len);
        assert_eq!(decode_stream(&wal.durable_bytes()).records.len(), 2);
    }
}
